"""Command-line interface.

::

    python -m repro list                      # every reproducible artifact
    python -m repro run fig1 --quick          # regenerate one table/figure
    python -m repro run fig1 --jobs 4         # seeded repetitions in parallel
    python -m repro demo nav --grc            # misbehavior demo + sparkline
    python -m repro campaign run examples/campaigns/fig1_nav_udp.toml --jobs 4
    python -m repro campaign status results/campaigns/fig1_nav_udp
    python -m repro campaign report results/campaigns/fig1_nav_udp
    python -m repro fleet run examples/campaigns/fig1_nav_udp.toml --shards 4
    python -m repro fleet serve --root results/fleet
    python -m repro chaos --profile quick     # fault-injection self-test

The demos build a small hotspot, run the chosen misbehavior, and print
per-flow goodput plus a goodput-over-time sparkline so the takeover (and the
GRC recovery) is visible at a glance.  Campaigns run declarative TOML sweep
specs (see examples/campaigns/) with a resumable manifest.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments import entries, get_entry

US = 1_000_000.0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.stats.summary import format_table

    selected = entries(tag=args.tag or None)
    rows = [
        [
            e.id,
            e.artifact,
            e.title,
            ",".join(e.tags),
            e.builder or "-",
        ]
        for e in selected
    ]
    print(format_table(["id", "artifact", "title", "tags", "builder"], rows), end="")
    if not selected:
        print(f"no experiments tagged {args.tag!r}", file=sys.stderr)
        return 1
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.common import RunSettings
    from repro.runtime import ResultCache, execution

    try:
        entry = get_entry(args.experiment)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    settings = RunSettings.for_mode(args.quick).replace(
        telemetry=args.telemetry, channel=args.channel
    )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    with execution(jobs=args.jobs, cache=cache):
        result = entry.runner(settings)
    if cache is not None:
        stats = cache.stats()
        print(
            f"cache: {stats['hits']} hits, {stats['misses']} misses",
            file=sys.stderr,
        )
    text = result.to_json(indent=2) if args.format == "json" else result.to_text()
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    if args.telemetry and args.format != "json" and result.telemetry is not None:
        snap = result.telemetry
        print(
            f"telemetry: {len(snap.counters)} counters, {len(snap.gauges)} gauges, "
            f"{len(snap.histograms)} histograms over stations "
            f"{','.join(snap.stations())} (schema v{snap.schema_version})"
        )
    return 0


def _build_demo(kind: str, grc: bool, seed: int):
    from repro.core.greedy import GreedyConfig
    from repro.mac.frames import FrameKind
    from repro.net.scenario import Scenario
    from repro.phy.error import set_ber_all_pairs

    if kind == "nav":
        s = Scenario(seed=seed)
        s.add_wireless_node("NS")
        s.add_wireless_node("GS")
        s.add_wireless_node("NR")
        s.add_wireless_node(
            "GR", greedy=GreedyConfig.nav_inflator(10_000.0, {FrameKind.CTS})
        )
        if grc:
            s.enable_nav_validation()
        f1, victim = s.udp_flow("NS", "NR")
        f2, attacker = s.udp_flow("GS", "GR")
        f1.start()
        f2.start()
        return s, victim, attacker, "udp"
    if kind == "spoof":
        s = Scenario(seed=seed)
        s.add_wireless_node("NS", position=(0, 0))
        s.add_wireless_node("GS", position=(60, 60))
        s.add_wireless_node("NR", position=(10, 0))
        s.add_wireless_node(
            "GR", position=(48, 20), greedy=GreedyConfig.ack_spoofer(victims={"NR"})
        )
        set_ber_all_pairs(s.error_model, ["NS", "GS", "NR", "GR"], 2e-4)
        if grc:
            s.enable_spoof_detection(["NS"])
        snd1, victim = s.tcp_flow("NS", "NR")
        snd2, attacker = s.tcp_flow("GS", "GR")
        snd1.start()
        snd2.start()
        return s, victim, attacker, "tcp"
    if kind == "fake":
        s = Scenario(seed=seed, rts_enabled=False)
        s.add_wireless_node("S1")
        s.add_wireless_node("S2")
        s.add_wireless_node("R1")
        s.add_wireless_node("R2", greedy=GreedyConfig.ack_faker())
        s.error_model.set_data_fer("S1", "R1", 0.5)
        s.error_model.set_data_fer("S2", "R2", 0.5)
        f1, victim = s.udp_flow("S1", "R1")
        f2, attacker = s.udp_flow("S2", "R2")
        f1.start()
        f2.start()
        return s, victim, attacker, "udp"
    raise ValueError(f"unknown demo {kind!r}")


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.stats.trace import attach_goodput_series, sparkline

    try:
        s, victim, attacker, _transport = _build_demo(args.kind, args.grc, args.seed)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    victim_series = attach_goodput_series(s.sim, victim)
    attacker_series = attach_goodput_series(s.sim, attacker)
    duration = args.duration
    s.run(duration)
    v = victim.goodput_mbps(duration * US)
    a = attacker.goodput_mbps(duration * US)
    grc_note = " (GRC on)" if args.grc else ""
    print(f"demo={args.kind}{grc_note}  seed={args.seed}  {duration:.0f}s simulated")
    print(f"  victim   {v:5.2f} Mbps |{sparkline([m for _t, m in victim_series.series()])}|")
    print(f"  attacker {a:5.2f} Mbps |{sparkline([m for _t, m in attacker_series.series()])}|")
    if s.report:
        offenders = dict(s.report.offenders())
        print(f"  detections: {offenders}")
    return 0


# -------------------------------------------------------------- metrics -----


def _capture_target(args: argparse.Namespace):
    """Run ``args.target`` (perf scenario or experiment id) with telemetry on.

    Perf scenario names (``repro perf --list``) run one seeded simulation;
    experiment ids run the whole artifact under an ambient capture, exactly
    like ``repro run <id> --telemetry``.
    """
    from repro.obs import MetricsRegistry, capture
    from repro.perf.scenarios import SCENARIOS, get_scenario

    if args.target in SCENARIOS:
        spec = get_scenario(args.target)
        duration = args.duration if args.duration is not None else spec.duration_s
        registry = MetricsRegistry()
        with capture(registry):
            built = spec.build(args.seed)
            built.scenario.run(duration)
        return registry.snapshot(
            scenario=args.target, seed=args.seed, duration_s=duration
        )
    from repro.experiments.common import RunSettings

    entry = get_entry(args.target)  # KeyError lists the known experiment ids
    settings = RunSettings.for_mode(args.quick).replace(telemetry=True)
    return entry.runner(settings).telemetry


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import validate_snapshot
    from repro.stats.summary import format_table

    try:
        snapshot = _capture_target(args)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        print(
            "target must be a perf scenario (repro perf --list) or an "
            "experiment id (repro list)",
            file=sys.stderr,
        )
        return 2
    problems = validate_snapshot(snapshot)
    if problems:
        for problem in problems:
            print(f"invalid snapshot: {problem}", file=sys.stderr)
        return 2
    if args.format == "json":
        text = snapshot.to_json(indent=2)
    else:
        header = (
            f"== telemetry {args.target} ==\n"
            f"schema v{snapshot.schema_version}; layers "
            f"{','.join(snapshot.layers())}; stations {','.join(snapshot.stations())}\n"
        )
        text = header + format_table(
            ["layer", "station", "metric", "kind", "value"],
            [list(row) for row in snapshot.rows()],
        ).rstrip("\n")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.perf.scenarios import get_scenario
    from repro.stats.trace import FrameTracer

    try:
        spec = get_scenario(args.target)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    built = spec.build(args.seed)
    tracer = FrameTracer(built.scenario.medium)
    duration = args.duration if args.duration is not None else spec.duration_s
    built.scenario.run(duration)
    if args.output:
        written = tracer.to_jsonl(args.output, limit=args.limit)
        suffix = f" (dropped {tracer.dropped})" if tracer.dropped else ""
        print(f"wrote {written} records to {args.output}{suffix}")
    else:
        print(tracer.to_text(limit=args.limit))
    return 0


# ----------------------------------------------------------------- perf -----


def _cmd_perf(args: argparse.Namespace) -> int:
    import contextlib
    import json as _json

    from repro.phy.channel import use_channel
    from repro.sim.backend import BackendUnavailableError
    from repro.perf import (
        REGRESSION_FACTOR,
        attach_speedup,
        check_regression,
        load_bench,
        run_benchmark,
        scenario_names,
        validate_bench,
        write_bench,
    )

    if args.list:
        for name in scenario_names():
            print(name)
        return 0
    baseline = None
    baseline_path = args.check_regression or args.compare
    if baseline_path:
        try:
            baseline = load_bench(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline: {exc}", file=sys.stderr)
            return 2
    channel_ctx = (
        use_channel(args.channel) if args.channel else contextlib.nullcontext()
    )
    try:
        with channel_ctx:
            bench = run_benchmark(
                names=args.scenarios or None,
                seed=args.seed,
                repeats=args.repeats,
                duration_s=args.duration,
                progress=lambda message: print(message, file=sys.stderr),
                telemetry=args.telemetry,
                backend=args.backend,
            )
    except (KeyError, ValueError, BackendUnavailableError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    if baseline is not None:
        bench = attach_speedup(bench, baseline)
    problems = validate_bench(bench)
    if problems:
        for problem in problems:
            print(f"invalid benchmark: {problem}", file=sys.stderr)
        return 2
    if args.output:
        write_bench(args.output, bench)
        print(f"wrote {args.output}")
    else:
        print(_json.dumps(bench, indent=2, sort_keys=True))
    if args.check_regression:
        factor = args.factor if args.factor is not None else REGRESSION_FACTOR
        failures = check_regression(bench, baseline, factor=factor)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.check_regression}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------- diff -----


def _cmd_diff(args: argparse.Namespace) -> int:
    import contextlib

    from repro.perf.diff import diff_targets
    from repro.phy.channel import use_channel
    from repro.sim.backend import BackendUnavailableError, backend_names

    if args.list_backends:
        available = set(backend_names(available_only=True))
        for name in backend_names():
            note = "" if name in available else "  (unavailable: needs numpy)"
            print(f"{name}{note}")
        return 0
    backends = tuple(args.backends)
    if len(set(backends)) < 2:
        print(
            f"need two distinct backends to diff, got {list(backends)}",
            file=sys.stderr,
        )
        return 2
    channel_ctx = (
        use_channel(args.channel) if args.channel else contextlib.nullcontext()
    )
    try:
        with channel_ctx:
            reports = diff_targets(
                targets=args.targets or None,
                backends=backends,
                seed=args.seed,
                duration_s=args.duration,
                quick=not args.full,
                progress=lambda message: print(message, file=sys.stderr),
            )
    except (KeyError, ValueError, BackendUnavailableError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    failures = [report for report in reports if not report.ok]
    for report in failures:
        print(f"DIVERGED {report.summary_line()}")
        for problem in report.problems:
            print(f"  {problem}")
    if failures:
        return 1
    pair = " vs ".join(backends)
    print(f"{len(reports)} target(s) identical across {pair}")
    return 0


# --------------------------------------------------------------- detect -----


def _cmd_detect_diff(args: argparse.Namespace) -> int:
    from repro.detect.diff import QUICK_FUZZ_CASES, diff_detection

    fuzz_cases = (
        tuple(range(args.fuzz_cases))
        if args.fuzz_cases is not None
        else QUICK_FUZZ_CASES
    )
    try:
        reports = diff_detection(
            targets=args.targets or None,
            golden_dir=args.golden_dir,
            fuzz_cases=fuzz_cases,
            fuzz_duration_s=args.fuzz_duration,
            progress=lambda message: print(message, file=sys.stderr),
        )
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    failures = [report for report in reports if not report.ok]
    for report in failures:
        print(f"DIVERGED {report.summary_line()}")
        for problem in report.problems:
            print(f"  {problem}")
    if failures:
        return 1
    print(f"{len(reports)} target(s): streaming detection matches offline")
    return 0


# ----------------------------------------------------------- campaigns -----


def _campaign_out_dir(target: str, quick: bool):
    """Resolve a run/status/report target: a spec .toml or an output dir."""
    from pathlib import Path

    from repro.campaign import default_out_dir, load_spec

    path = Path(target)
    if path.is_dir():
        return path
    return default_out_dir(load_spec(path, quick=quick))


def _retry_policy(args: argparse.Namespace):
    """RetryPolicy from the --retries/--job-timeout/--backoff flags, if any."""
    if args.retries is None and args.job_timeout is None and args.backoff is None:
        return None
    from repro.runtime import RetryPolicy

    kwargs = {}
    if args.retries is not None:
        kwargs["max_attempts"] = max(1, args.retries)
    if args.job_timeout is not None:
        kwargs["timeout_s"] = args.job_timeout
    if args.backoff is not None:
        kwargs["backoff_base_s"] = args.backoff
    return RetryPolicy(**kwargs)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import (
        FAILED,
        CampaignError,
        ManifestError,
        SpecError,
        load_spec,
        run_campaign,
    )

    try:
        spec = load_spec(args.spec, quick=args.quick)
        summary = run_campaign(
            spec,
            out_dir=args.out,
            jobs=args.jobs,
            resume=args.resume,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            progress=print if args.verbose else None,
            telemetry=args.telemetry,
            retry=_retry_policy(args),
        )
    except (SpecError, CampaignError, ManifestError) as exc:
        print(exc, file=sys.stderr)
        return 2
    manifest = summary.manifest
    mode = " (quick)" if args.quick else ""
    print(
        f"campaign {spec.name}{mode}: {manifest.total} points x "
        f"{len(spec.seeds)} seeds, builder {spec.builder}"
    )
    print(
        f"  executed {summary.executed}, skipped {summary.skipped}, "
        f"failed {summary.failed}"
    )
    if summary.cache_stats is not None:
        stats = summary.cache_stats
        print(f"  cache: {stats['hits']} hits, {stats['misses']} misses")
    retries = sum(point.retries for point in manifest.points)
    faults = manifest.faults or {}
    if retries or any(faults.values()):
        print(
            f"  fault tolerance: {retries} job retries, "
            f"{faults.get('pool_rebuilds', 0)} pool rebuilds, "
            f"{faults.get('worker_kills', 0)} watchdog kills"
            + (" (degraded to serial)" if faults.get("degraded_to_serial") else "")
        )
    print(f"  out: {summary.out_dir} (manifest.json, results.csv, results.json)")
    # Nonzero whenever any point *ends* failed — also on --resume runs that
    # executed nothing but inherit failed points from the manifest.
    return 1 if manifest.count(FAILED) else 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    import json as _json

    from repro.campaign import DONE, Manifest, ManifestError, SpecError, manifest_path
    from repro.stats.summary import format_table

    try:
        out = _campaign_out_dir(args.target, args.quick)
        manifest = Manifest.load(manifest_path(out))
    except (SpecError, ManifestError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(manifest.status_document(), indent=2, sort_keys=True))
        if args.expect_complete and not manifest.complete:
            print("campaign is not complete", file=sys.stderr)
            return 1
        return 0
    print(
        f"campaign {manifest.name}: {manifest.count(DONE)}/{manifest.total} points "
        f"done, {manifest.count('failed')} failed, "
        f"{manifest.count('pending')} pending (spec {manifest.spec_hash})"
    )
    rows = [
        [
            str(point.index),
            point.id,
            point.status,
            f"{len(point.seeds_done)}/{len(manifest.seeds)}",
            str(point.retries),
            point.last_failure or point.error or "",
        ]
        for point in manifest.points
    ]
    print(
        format_table(
            ["index", "point", "status", "seeds", "retries", "last failure"], rows
        ),
        end="",
    )
    faults = manifest.faults or {}
    if any(faults.values()):
        print(
            f"pool incidents: {faults.get('pool_rebuilds', 0)} rebuilds, "
            f"{faults.get('worker_kills', 0)} watchdog kills"
            + (" (degraded to serial)" if faults.get("degraded_to_serial") else "")
        )
    if args.expect_complete and not manifest.complete:
        print("campaign is not complete", file=sys.stderr)
        return 1
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    import json as _json

    from repro.campaign import (
        CampaignError,
        Manifest,
        ManifestError,
        SpecError,
        aggregate,
        load_point_results,
        manifest_path,
    )
    from repro.stats.summary import format_table

    try:
        out = _campaign_out_dir(args.target, args.quick)
        manifest = Manifest.load(manifest_path(out))
        results = load_point_results(out, manifest)
    except (SpecError, CampaignError, ManifestError) as exc:
        print(exc, file=sys.stderr)
        return 2
    columns, rows = aggregate(manifest, results)
    if args.format == "json":
        text = _json.dumps(
            {"name": manifest.name, "columns": columns, "rows": rows},
            indent=2,
            sort_keys=True,
        )
    elif args.format == "csv":
        lines = [",".join(columns)]
        lines += [",".join(str(row.get(c, "")) for c in columns) for row in rows]
        text = "\n".join(lines)
    else:
        header = (
            f"== campaign {manifest.name} ==\n"
            f"{len(rows)}/{manifest.total} points done; metric medians over "
            f"seeds {manifest.seeds}\n"
        )
        cells = [[_fmt_cell(row.get(c, "")) for c in columns] for row in rows]
        text = header + format_table(columns, cells).rstrip("\n")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _fmt_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


# -------------------------------------------------------------------- fleet --


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    from repro.campaign import SpecError, default_out_dir, load_spec
    from repro.fleet import FleetError, run_fleet

    try:
        spec = load_spec(args.spec, quick=args.quick)
        out = args.out if args.out else default_out_dir(spec)
        run = run_fleet(
            spec,
            out,
            n_shards=args.shards,
            executor=args.executor,
            jobs=args.jobs,
            max_shard_attempts=args.max_shard_attempts,
            max_parallel=args.max_parallel_shards,
            progress=print if args.verbose else None,
        )
    except (SpecError, FleetError) as exc:
        print(exc, file=sys.stderr)
        return 2
    mode = " (quick)" if args.quick else ""
    state = run.state
    healed = sum(max(0, entry.attempts - 1) for entry in state.shards)
    print(
        f"fleet {spec.name}{mode}: {args.shards} shards via {state.executor}, "
        f"{sum(len(entry.point_ids) for entry in state.shards)} points"
    )
    if healed:
        print(f"  healing: {healed} shard re-dispatch(es)")
    if not run.ok:
        print(f"  FAILED: {run.error}", file=sys.stderr)
        return 1
    manifest = run.manifest
    print(
        f"  merged: {manifest.count('done')}/{manifest.total} points done"
        + ("" if manifest.complete else " (INCOMPLETE)")
    )
    print(f"  out: {run.out_dir} (manifest.json, results.csv, results.json)")
    return 0 if manifest.complete else 1


def _cmd_fleet_worker(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.campaign import CampaignError, SpecError
    from repro.fleet import FleetError, ShardTask, run_shard_inprocess

    task = ShardTask(
        spec_path=Path(args.spec),
        out_dir=Path(args.out),
        shard=args.shard,
        n_shards=args.n_shards,
        jobs=args.jobs,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
    )
    try:
        return run_shard_inprocess(task)
    except (SpecError, CampaignError, FleetError) as exc:
        print(exc, file=sys.stderr)
        return 2


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    import json as _json

    from repro.fleet import FleetClientError, FleetError, fleet_status_document, get_json

    if not args.url and not args.target:
        print("fleet status needs an output directory or --url", file=sys.stderr)
        return 2
    if args.url:
        # Service-level status: queue depth, job-state counts, journal lag.
        try:
            doc = get_json(args.url, "/status")
        except FleetClientError as exc:
            print(exc, file=sys.stderr)
            return 2
        if args.json:
            print(_json.dumps(doc, indent=2, sort_keys=True))
        else:
            jobs = doc["jobs"]
            states = ", ".join(
                f"{key} {value}" for key, value in sorted(jobs.items()) if key != "total"
            )
            print(
                f"fleet service at {args.url}: {jobs['total']} job(s)"
                + (f" ({states})" if states else "")
            )
            print(
                f"  queue: {doc['queue_depth']}/{doc['max_queue']} waiting, "
                f"{doc['running']}/{doc['max_running']} running"
                + ("  [draining]" if doc["draining"] else "")
            )
            print(
                f"  journal: seq {doc['journal']['seq']}, "
                f"lag {doc['journal']['lag']} line(s) since last snapshot"
            )
        return 0

    try:
        doc = fleet_status_document(args.target)
    except FleetError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(
            f"fleet {doc['name']}: {doc['done']}/{doc['total']} points done over "
            f"{doc['n_shards']} shards via {doc['executor']}"
            f" (spec {doc['spec_hash']})"
        )
        for shard in doc["shards"]:
            error = f"  [{shard['error']}]" if shard["error"] else ""
            print(
                f"  shard {shard['shard']:2d}: {shard['status']:8s} "
                f"{shard['done']}/{shard['points']} points, "
                f"attempts {shard['attempts']}, retries {shard['retries']}{error}"
            )
        print(f"  merged: {doc['merged']}, complete: {doc['complete']}")
    if args.expect_complete and not doc["complete"]:
        print("fleet run is not complete", file=sys.stderr)
        return 1
    return 0


def _cmd_fleet_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.fleet import FleetService

    service = FleetService(
        args.root,
        executor=args.executor,
        jobs=args.jobs,
        max_parallel_shards=args.max_parallel_shards,
        max_running=args.max_running,
        max_queue=args.max_queue,
    )

    async def _serve() -> None:
        await service.start(host=args.host, port=args.port)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-POSIX loop; Ctrl-C still lands as KeyboardInterrupt
        recovered = service.status_document()["recovered"]
        print(f"fleet service listening on http://{args.host}:{service.port}")
        print(f"  jobs root: {service.root}  executor: {args.executor}")
        print(
            f"  queue: max {args.max_queue} waiting, {args.max_running} running; "
            f"journal recovery: {recovered.get('restored', 0)} restored, "
            f"{recovered.get('requeued', 0)} requeued, "
            f"{recovered.get('failed', 0)} fence-failed"
        )
        serve_task = asyncio.ensure_future(service.serve_forever())
        stop_task = asyncio.ensure_future(stop.wait())
        done, _ = await asyncio.wait(
            (serve_task, stop_task), return_when=asyncio.FIRST_COMPLETED
        )
        stop_task.cancel()
        if serve_task in done and serve_task.exception() is not None:
            raise serve_task.exception()  # e.g. the listening socket died
        serve_task.cancel()
        # Graceful drain: refuse new submits, journal `interrupted` for
        # in-flight jobs, kill their shard workers, snapshot the journal.
        print("fleet service shutting down (draining; jobs journaled)")
        await service.shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_fleet_submit(args: argparse.Namespace) -> int:
    from repro.campaign import SpecError
    from repro.campaign.spec import load_spec, spec_to_dict
    from repro.fleet import FleetClientError, fetch_results, submit_job, wait_for_job

    try:
        spec = load_spec(args.spec, quick=args.quick)
    except SpecError as exc:
        print(exc, file=sys.stderr)
        return 2
    document = {
        "spec": spec_to_dict(spec),
        "n_shards": args.shards,
        "jobs": args.jobs,
        "priority": args.priority,
        # The spec is already resolved locally, so quick is not re-applied
        # server-side; the document carries the quick-resolved grid itself.
    }
    try:
        job_id = submit_job(args.url, document)
        print(f"submitted job {job_id} to {args.url}")
        if not args.wait:
            return 0
        status = wait_for_job(args.url, job_id, timeout_s=args.timeout)
        print(f"job {job_id}: {status['status']}")
        if status["status"] != "done":
            print(f"  error: {status.get('error')}", file=sys.stderr)
            return 1
        csv_text = fetch_results(args.url, job_id)
    except FleetClientError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(csv_text)
        print(f"wrote {args.output}")
    else:
        print(csv_text, end="")
    return 0


def _cmd_fleet_cancel(args: argparse.Namespace) -> int:
    from repro.fleet import FleetClientError, cancel_job

    try:
        reply = cancel_job(args.url, args.job)
    except FleetClientError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(f"job {reply['job']}: {reply['status']}")
    return 0


# -------------------------------------------------------------------- chaos --


def _cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile
    import warnings

    from repro.faults.chaos import PROFILES, run_chaos

    if args.list:
        for name, profile in PROFILES.items():
            campaign = profile.spec["campaign"]
            print(
                f"{name}: builder {campaign['builder']}, "
                f"{profile.worker_kills} worker kill(s), "
                f"{profile.cache_truncations} cache truncation(s)"
                + (", hang-once jobs" if profile.hang else "")
            )
        return 0
    progress = print if args.verbose else None
    with warnings.catch_warnings():
        # Quarantine warnings are the harness working as intended.
        warnings.simplefilter("ignore", RuntimeWarning)
        try:
            if args.keep:
                report = run_chaos(args.profile, args.keep, progress=progress)
            else:
                with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
                    report = run_chaos(args.profile, tmp, progress=progress)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    print("\n".join(report.summary_lines()))
    if args.keep:
        print(f"  artifacts kept under: {args.keep}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Greedy receivers in IEEE 802.11 hotspots: reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list reproducible tables/figures")
    p_list.add_argument(
        "--tag", help="only experiments carrying this tag (e.g. nav, spoof, tcp)"
    )
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="regenerate one table/figure")
    p_run.add_argument("experiment", help="e.g. fig4, table2, ext_autorate")
    p_run.add_argument("--quick", action="store_true", help="reduced sweep")
    p_run.add_argument(
        "--telemetry",
        action="store_true",
        help="capture a per-station metrics snapshot alongside the result",
    )
    p_run.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="json emits the schema-versioned ExperimentResult document",
    )
    p_run.add_argument("-o", "--output", help="write the table to a file")
    p_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fan seeded repetitions out over N worker processes",
    )
    p_run.add_argument(
        "--cache-dir",
        help="reuse/store per-seed results under this directory "
        "(e.g. results/.cache)",
    )
    p_run.add_argument(
        "--channel",
        default=None,
        help="ambient channel model for every scenario the experiment builds "
        "(pairwise or sinr; default: pairwise)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_campaign = sub.add_parser(
        "campaign", help="declarative sweep campaigns (TOML specs + manifests)"
    )
    csub = p_campaign.add_subparsers(dest="campaign_command", required=True)

    p_crun = csub.add_parser("run", help="run (or resume) a campaign spec")
    p_crun.add_argument("spec", help="path to a campaign .toml spec")
    p_crun.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fan each point's seeded runs out over N worker processes",
    )
    p_crun.add_argument(
        "--quick", action="store_true", help="apply the spec's [quick] overrides"
    )
    p_crun.add_argument(
        "--resume",
        action="store_true",
        help="skip points the manifest already marks done",
    )
    p_crun.add_argument(
        "--out", help="output directory (default results/campaigns/<name>)"
    )
    p_crun.add_argument(
        "--cache-dir", help="per-seed result cache directory (default <out>/cache)"
    )
    p_crun.add_argument(
        "--no-cache", action="store_true", help="disable the per-seed result cache"
    )
    p_crun.add_argument(
        "--telemetry",
        action="store_true",
        help="store a representative-run metrics snapshot in each point payload",
    )
    p_crun.add_argument(
        "-v", "--verbose", action="store_true", help="print per-point progress"
    )
    p_crun.add_argument(
        "--retries",
        type=int,
        default=None,
        help="attempts per seeded job before its point fails (default 3)",
    )
    p_crun.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per seeded job; a watchdog kills overrunning "
        "workers and retries (default: no timeout)",
    )
    p_crun.add_argument(
        "--backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help="base delay of the exponential retry backoff (default 0.25)",
    )
    p_crun.set_defaults(func=_cmd_campaign_run)

    p_cstatus = csub.add_parser("status", help="show a campaign's manifest status")
    p_cstatus.add_argument("target", help="campaign output directory or spec .toml")
    p_cstatus.add_argument(
        "--quick",
        action="store_true",
        help="resolve a spec target the way a --quick run would",
    )
    p_cstatus.add_argument(
        "--expect-complete",
        action="store_true",
        help="exit 1 unless every point is done (CI gate)",
    )
    p_cstatus.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable status document instead of a table",
    )
    p_cstatus.set_defaults(func=_cmd_campaign_status)

    p_creport = csub.add_parser("report", help="print the aggregated results table")
    p_creport.add_argument("target", help="campaign output directory or spec .toml")
    p_creport.add_argument(
        "--quick",
        action="store_true",
        help="resolve a spec target the way a --quick run would",
    )
    p_creport.add_argument(
        "--format", choices=["text", "csv", "json"], default="text"
    )
    p_creport.add_argument("-o", "--output", help="write the report to a file")
    p_creport.set_defaults(func=_cmd_campaign_report)

    p_fleet = sub.add_parser(
        "fleet",
        help="sharded campaign execution: split a spec over N worker "
        "processes, heal dead shards, merge byte-identical results",
    )
    fsub = p_fleet.add_subparsers(dest="fleet_command", required=True)

    p_frun = fsub.add_parser("run", help="run a campaign spec as N shards")
    p_frun.add_argument("spec", help="path to a campaign .toml spec")
    p_frun.add_argument(
        "--shards", type=int, default=2, help="number of shards (default 2)"
    )
    p_frun.add_argument(
        "--executor",
        default="subprocess",
        help="how shards run: subprocess (one OS process per shard, default) "
        "or local (in-process)",
    )
    p_frun.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per shard (passed through to the campaign)",
    )
    p_frun.add_argument(
        "--quick", action="store_true", help="apply the spec's [quick] overrides"
    )
    p_frun.add_argument(
        "--out", help="fleet output directory (default results/campaigns/<name>)"
    )
    p_frun.add_argument(
        "--max-shard-attempts",
        type=int,
        default=3,
        help="dispatch attempts per shard before the fleet run fails (default 3)",
    )
    p_frun.add_argument(
        "--max-parallel-shards",
        type=int,
        default=None,
        help="cap concurrently running shards (default: all at once)",
    )
    p_frun.add_argument(
        "-v", "--verbose", action="store_true", help="print per-shard progress"
    )
    p_frun.set_defaults(func=_cmd_fleet_run)

    p_fworker = fsub.add_parser(
        "worker",
        help="run one shard of a fleet (internal; launched by the "
        "subprocess executor)",
    )
    p_fworker.add_argument("--spec", required=True, help="path to the fleet spec.json")
    p_fworker.add_argument("--out", required=True, help="this shard's output directory")
    p_fworker.add_argument("--shard", type=int, required=True)
    p_fworker.add_argument("--n-shards", type=int, required=True)
    p_fworker.add_argument("--jobs", type=int, default=1)
    p_fworker.add_argument(
        "--cache-dir", default=None, help="shared per-seed result cache directory"
    )
    p_fworker.set_defaults(func=_cmd_fleet_worker)

    p_fstatus = fsub.add_parser("status", help="show a fleet run's shard status")
    p_fstatus.add_argument(
        "target", nargs="?", default=None, help="fleet output directory"
    )
    p_fstatus.add_argument(
        "--url",
        help="query a running fleet service instead of an output directory "
        "(queue depth, per-state job counts, journal lag)",
    )
    p_fstatus.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable status document instead of a table",
    )
    p_fstatus.add_argument(
        "--expect-complete",
        action="store_true",
        help="exit 1 unless the merged run covers every point (CI gate)",
    )
    p_fstatus.set_defaults(func=_cmd_fleet_status)

    p_fserve = fsub.add_parser(
        "serve", help="HTTP service: POST specs, poll shard status, fetch results"
    )
    p_fserve.add_argument(
        "--root",
        default="results/fleet",
        help="directory for job artifacts (default results/fleet)",
    )
    p_fserve.add_argument("--host", default="127.0.0.1")
    p_fserve.add_argument(
        "--port", type=int, default=8642, help="0 picks a free port (default 8642)"
    )
    p_fserve.add_argument(
        "--executor", default="subprocess", help="executor for submitted jobs"
    )
    p_fserve.add_argument(
        "--jobs", type=int, default=1, help="default worker processes per shard"
    )
    p_fserve.add_argument(
        "--max-parallel-shards",
        type=int,
        default=None,
        help="cap concurrently running shards across each job",
    )
    p_fserve.add_argument(
        "--max-running",
        type=int,
        default=2,
        help="jobs orchestrated concurrently; the rest queue (default 2)",
    )
    p_fserve.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="admission queue bound; a full queue answers 429 + Retry-After "
        "(default 16)",
    )
    p_fserve.set_defaults(func=_cmd_fleet_serve)

    p_fsubmit = fsub.add_parser(
        "submit", help="submit a spec to a running fleet service"
    )
    p_fsubmit.add_argument("spec", help="path to a campaign .toml spec")
    p_fsubmit.add_argument(
        "--url", required=True, help="service base URL, e.g. http://127.0.0.1:8642"
    )
    p_fsubmit.add_argument("--shards", type=int, default=2)
    p_fsubmit.add_argument(
        "--jobs", type=int, default=1, help="worker processes per shard"
    )
    p_fsubmit.add_argument(
        "--quick",
        action="store_true",
        help="resolve the spec's [quick] overrides before submitting",
    )
    p_fsubmit.add_argument(
        "--priority",
        type=int,
        default=0,
        help="admission priority: higher dispatches first (default 0)",
    )
    p_fsubmit.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job finishes and print/fetch results.csv "
        "(survives a service restart window)",
    )
    p_fsubmit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="--wait polling budget in seconds (default 600)",
    )
    p_fsubmit.add_argument(
        "-o", "--output", help="with --wait: write results.csv here"
    )
    p_fsubmit.set_defaults(func=_cmd_fleet_submit)

    p_fcancel = fsub.add_parser(
        "cancel", help="cancel a queued or running job on a fleet service"
    )
    p_fcancel.add_argument("job", help="job id as returned by submit")
    p_fcancel.add_argument(
        "--url", required=True, help="service base URL, e.g. http://127.0.0.1:8642"
    )
    p_fcancel.set_defaults(func=_cmd_fleet_cancel)

    p_chaos = sub.add_parser(
        "chaos",
        help="self-test the fault-tolerant campaign engine under injected "
        "failures (worker kills, cache/manifest corruption, hung jobs)",
    )
    p_chaos.add_argument(
        "--profile",
        default="quick",
        help="chaos profile to run (see --list; default: quick)",
    )
    p_chaos.add_argument(
        "--list", action="store_true", help="list chaos profiles and exit"
    )
    p_chaos.add_argument(
        "--keep",
        metavar="DIR",
        help="run under this directory and keep the artifacts "
        "(default: a temp dir, deleted afterwards)",
    )
    p_chaos.add_argument(
        "-v", "--verbose", action="store_true", help="print per-phase progress"
    )
    p_chaos.set_defaults(func=_cmd_chaos)

    p_perf = sub.add_parser(
        "perf", help="microbenchmark the simulation core (BENCH_core.json)"
    )
    p_perf.add_argument(
        "scenarios", nargs="*", help="scenario names to time (default: all)"
    )
    p_perf.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    p_perf.add_argument("--seed", type=int, default=1)
    p_perf.add_argument(
        "--repeats", type=int, default=3, help="timing repeats; wall_s is the minimum"
    )
    p_perf.add_argument(
        "--duration",
        type=float,
        default=None,
        help="override simulated seconds per scenario (smoke tests use e.g. 0.05)",
    )
    p_perf.add_argument(
        "-o", "--output", help="write the BENCH_core document here (default: stdout)"
    )
    p_perf.add_argument(
        "--compare",
        metavar="BASELINE",
        help="attach a speedup section versus this reference document",
    )
    p_perf.add_argument(
        "--check-regression",
        metavar="BASELINE",
        help="exit 1 when any scenario is more than FACTOR x slower than BASELINE",
    )
    p_perf.add_argument(
        "--factor",
        type=float,
        default=None,
        help="regression threshold for --check-regression (default 2.0)",
    )
    p_perf.add_argument(
        "--telemetry",
        action="store_true",
        help="time the instrumented path (live metrics registry attached)",
    )
    p_perf.add_argument(
        "--backend",
        default=None,
        help="simulation backend to time (repro diff --list-backends; "
        "default: ambient, i.e. scalar)",
    )
    p_perf.add_argument(
        "--channel",
        default=None,
        help="ambient channel model for scenarios that do not pin one "
        "(pairwise or sinr; default: pairwise)",
    )
    p_perf.set_defaults(func=_cmd_perf)

    p_diff = sub.add_parser(
        "diff",
        help="differential-test two simulation backends (byte-identical "
        "traces, exact metrics, equal event counts)",
    )
    p_diff.add_argument(
        "targets",
        nargs="*",
        help="perf scenarios and/or experiment ids (default: every perf scenario)",
    )
    p_diff.add_argument(
        "--backends",
        nargs=2,
        metavar=("REF", "CANDIDATE"),
        default=["scalar", "vectorized"],
        help="backend pair to compare (default: scalar vectorized)",
    )
    p_diff.add_argument(
        "--list-backends",
        action="store_true",
        help="list registered backends (and availability) and exit",
    )
    p_diff.add_argument(
        "--seed", type=int, default=None,
        help="scenario seed (default: the golden-trace seed)",
    )
    p_diff.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds per scenario (default: the golden-trace length)",
    )
    p_diff.add_argument(
        "--full",
        action="store_true",
        help="run experiment targets at paper scale instead of quick mode",
    )
    p_diff.add_argument(
        "--channel",
        default=None,
        help="ambient channel model for targets that do not pin one "
        "(pairwise or sinr; default: pairwise)",
    )
    p_diff.set_defaults(func=_cmd_diff)

    p_detect = sub.add_parser(
        "detect",
        help="streaming misbehavior detection tooling (equivalence gate)",
    )
    detect_sub = p_detect.add_subparsers(dest="detect_command", required=True)
    p_detect_diff = detect_sub.add_parser(
        "diff",
        help="differential-test streaming vs offline detection (event-"
        "identical on golden traces, live scenarios and fuzzed workloads, "
        "bounded-memory high-water check)",
    )
    p_detect_diff.add_argument(
        "targets",
        nargs="*",
        help="golden trace names and/or perf scenarios (default: every "
        "golden trace, every perf scenario live, plus the fuzz subset)",
    )
    p_detect_diff.add_argument(
        "--golden-dir",
        default=None,
        help="directory holding the committed golden traces "
        "(default: tests/golden of the source checkout)",
    )
    p_detect_diff.add_argument(
        "--fuzz-cases",
        type=int,
        default=None,
        help="number of fuzzed scenarios when running without targets "
        "(default: the quick subset of 10)",
    )
    p_detect_diff.add_argument(
        "--fuzz-duration",
        type=float,
        default=0.05,
        help="simulated seconds per fuzzed scenario (default: 0.05)",
    )
    p_detect_diff.set_defaults(func=_cmd_detect_diff)

    p_metrics = sub.add_parser(
        "metrics", help="run a scenario/experiment with telemetry and dump metrics"
    )
    p_metrics.add_argument(
        "target", help="perf scenario (repro perf --list) or experiment id"
    )
    p_metrics.add_argument(
        "--seed", type=int, default=1, help="seed for perf-scenario targets"
    )
    p_metrics.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds for perf-scenario targets (default: scenario's)",
    )
    p_metrics.add_argument(
        "--quick", action="store_true", help="quick mode for experiment targets"
    )
    p_metrics.add_argument("--format", choices=["table", "json"], default="table")
    p_metrics.add_argument("-o", "--output", help="write the dump to a file")
    p_metrics.set_defaults(func=_cmd_metrics)

    p_trace = sub.add_parser(
        "trace", help="run a perf scenario with a frame tracer and dump frames"
    )
    p_trace.add_argument("target", help="perf scenario name (repro perf --list)")
    p_trace.add_argument("--seed", type=int, default=1)
    p_trace.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds (default: scenario's)",
    )
    p_trace.add_argument(
        "--limit", type=int, default=None, help="cap the number of frame records"
    )
    p_trace.add_argument(
        "-o", "--output", help="write JSONL here instead of printing text"
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_demo = sub.add_parser("demo", help="run a misbehavior demo")
    p_demo.add_argument("kind", choices=["nav", "spoof", "fake"])
    p_demo.add_argument("--grc", action="store_true", help="enable the countermeasure")
    p_demo.add_argument("--seed", type=int, default=7)
    p_demo.add_argument("--duration", type=float, default=2.0, help="simulated seconds")
    p_demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
