"""Command-line interface.

::

    python -m repro list                      # every reproducible artifact
    python -m repro run fig1 --quick          # regenerate one table/figure
    python -m repro run fig1 --jobs 4         # seeded repetitions in parallel
    python -m repro demo nav --grc            # misbehavior demo + sparkline

The demos build a small hotspot, run the chosen misbehavior, and print
per-flow goodput plus a goodput-over-time sparkline so the takeover (and the
GRC recovery) is visible at a glance.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments import ALL_EXPERIMENTS, EXTENSIONS, get

US = 1_000_000.0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("Paper artifacts:")
    for experiment_id in sorted(ALL_EXPERIMENTS):
        print(f"  {experiment_id}")
    print("Extensions:")
    for experiment_id in sorted(EXTENSIONS):
        print(f"  {experiment_id}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.runtime import ResultCache, execution

    try:
        run = get(args.experiment)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    with execution(jobs=args.jobs, cache=cache):
        result = run(quick=args.quick)
    if cache is not None:
        stats = cache.stats()
        print(
            f"cache: {stats['hits']} hits, {stats['misses']} misses",
            file=sys.stderr,
        )
    text = result.to_text()
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _build_demo(kind: str, grc: bool, seed: int):
    from repro.core.greedy import GreedyConfig
    from repro.mac.frames import FrameKind
    from repro.net.scenario import Scenario
    from repro.phy.error import set_ber_all_pairs

    if kind == "nav":
        s = Scenario(seed=seed)
        s.add_wireless_node("NS")
        s.add_wireless_node("GS")
        s.add_wireless_node("NR")
        s.add_wireless_node(
            "GR", greedy=GreedyConfig.nav_inflator(10_000.0, {FrameKind.CTS})
        )
        if grc:
            s.enable_nav_validation()
        f1, victim = s.udp_flow("NS", "NR")
        f2, attacker = s.udp_flow("GS", "GR")
        f1.start()
        f2.start()
        return s, victim, attacker, "udp"
    if kind == "spoof":
        s = Scenario(seed=seed)
        s.add_wireless_node("NS", position=(0, 0))
        s.add_wireless_node("GS", position=(60, 60))
        s.add_wireless_node("NR", position=(10, 0))
        s.add_wireless_node(
            "GR", position=(48, 20), greedy=GreedyConfig.ack_spoofer(victims={"NR"})
        )
        set_ber_all_pairs(s.error_model, ["NS", "GS", "NR", "GR"], 2e-4)
        if grc:
            s.enable_spoof_detection(["NS"])
        snd1, victim = s.tcp_flow("NS", "NR")
        snd2, attacker = s.tcp_flow("GS", "GR")
        snd1.start()
        snd2.start()
        return s, victim, attacker, "tcp"
    if kind == "fake":
        s = Scenario(seed=seed, rts_enabled=False)
        s.add_wireless_node("S1")
        s.add_wireless_node("S2")
        s.add_wireless_node("R1")
        s.add_wireless_node("R2", greedy=GreedyConfig.ack_faker())
        s.error_model.set_data_fer("S1", "R1", 0.5)
        s.error_model.set_data_fer("S2", "R2", 0.5)
        f1, victim = s.udp_flow("S1", "R1")
        f2, attacker = s.udp_flow("S2", "R2")
        f1.start()
        f2.start()
        return s, victim, attacker, "udp"
    raise ValueError(f"unknown demo {kind!r}")


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.stats.trace import attach_goodput_series, sparkline

    try:
        s, victim, attacker, _transport = _build_demo(args.kind, args.grc, args.seed)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    victim_series = attach_goodput_series(s.sim, victim)
    attacker_series = attach_goodput_series(s.sim, attacker)
    duration = args.duration
    s.run(duration)
    v = victim.goodput_mbps(duration * US)
    a = attacker.goodput_mbps(duration * US)
    grc_note = " (GRC on)" if args.grc else ""
    print(f"demo={args.kind}{grc_note}  seed={args.seed}  {duration:.0f}s simulated")
    print(f"  victim   {v:5.2f} Mbps |{sparkline([m for _t, m in victim_series.series()])}|")
    print(f"  attacker {a:5.2f} Mbps |{sparkline([m for _t, m in attacker_series.series()])}|")
    if s.report:
        offenders = dict(s.report.offenders())
        print(f"  detections: {offenders}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Greedy receivers in IEEE 802.11 hotspots: reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list reproducible tables/figures")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="regenerate one table/figure")
    p_run.add_argument("experiment", help="e.g. fig4, table2, ext_autorate")
    p_run.add_argument("--quick", action="store_true", help="reduced sweep")
    p_run.add_argument("-o", "--output", help="write the table to a file")
    p_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fan seeded repetitions out over N worker processes",
    )
    p_run.add_argument(
        "--cache-dir",
        help="reuse/store per-seed results under this directory "
        "(e.g. results/.cache)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_demo = sub.add_parser("demo", help="run a misbehavior demo")
    p_demo.add_argument("kind", choices=["nav", "spoof", "fake"])
    p_demo.add_argument("--grc", action="store_true", help="enable the countermeasure")
    p_demo.add_argument("--seed", type=int, default=7)
    p_demo.add_argument("--duration", type=float, default=2.0, help="simulated seconds")
    p_demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
