"""Metrics registry: counters, gauges and histograms keyed by name.

Keys follow the ``layer.station.metric`` scheme documented in DESIGN.md §10:
the first dot-separated segment names the layer (``phy``, ``mac``,
``transport``, ``sim``, ``detect``), the second the station (or pseudo-station
like ``engine``/``medium``), and the remainder the metric.  The registry is a
plain accumulator — it never touches RNG streams or the event loop, so
attaching one cannot perturb a simulation.

Zero-cost-when-disabled contract: every instrumented component holds an
``obs`` attribute that is either ``None`` or an *enabled* registry, and guards
each write with ``if self.obs is not None``.  A disabled registry is never
attached (``Scenario`` refuses to wire it), so a telemetry-off run executes
the exact pre-instrumentation code path; ``MetricsRegistry.writes`` counts
every mutation so tests can assert the zero-write property directly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.snapshot import TelemetrySnapshot


class MetricsRegistry:
    """Accumulates counters, gauges and histograms for one capture scope."""

    __slots__ = ("enabled", "counters", "gauges", "histograms", "scenarios", "_writes")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        #: histogram key -> {observed value -> occurrence count}
        self.histograms: dict[str, dict[float, int]] = {}
        #: how many :class:`repro.net.scenario.Scenario` instances attached
        self.scenarios = 0
        self._writes = 0

    # ------------------------------------------------------------- writes ----

    def inc(self, key: str, value: float = 1.0) -> None:
        """Add ``value`` to the counter ``key`` (creating it at 0)."""
        self._writes += 1
        counters = self.counters
        counters[key] = counters.get(key, 0.0) + value

    def gauge(self, key: str, value: float) -> None:
        """Set the gauge ``key`` (last write wins)."""
        self._writes += 1
        self.gauges[key] = value

    def observe(self, key: str, value: float) -> None:
        """Record one observation of ``value`` into the histogram ``key``."""
        self._writes += 1
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = {}
        hist[value] = hist.get(value, 0) + 1

    @property
    def writes(self) -> int:
        """Total mutations since construction (zero-write property tests)."""
        return self._writes

    # ------------------------------------------------------------ queries ----

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def snapshot(self, **meta: Any) -> TelemetrySnapshot:
        """Freeze the current state into a schema-versioned snapshot."""
        merged_meta: dict[str, Any] = {"scenarios": self.scenarios}
        merged_meta.update(meta)
        return TelemetrySnapshot(
            counters=dict(sorted(self.counters.items())),
            gauges=dict(sorted(self.gauges.items())),
            histograms={
                key: {str(bucket): count for bucket, count in sorted(hist.items())}
                for key, hist in sorted(self.histograms.items())
            },
            meta=merged_meta,
        )


# --------------------------------------------------------- ambient capture --

#: Stack of active registries; :class:`Scenario` auto-attaches the innermost.
_ACTIVE: list[MetricsRegistry] = []


def current_registry() -> MetricsRegistry | None:
    """The innermost ambient registry, or None outside any ``capture()``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def capture(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Make ``registry`` (default: a fresh enabled one) ambient.

    Every :class:`~repro.net.scenario.Scenario` constructed inside the block
    attaches to it, so existing experiment code collects telemetry without
    signature changes.  Captures nest; the innermost wins.
    """
    reg = registry if registry is not None else MetricsRegistry()
    _ACTIVE.append(reg)
    try:
        yield reg
    finally:
        _ACTIVE.remove(reg)
