"""Schema-versioned telemetry snapshots and the end-of-run scenario sweep.

A :class:`TelemetrySnapshot` is the serializable view of one
:class:`repro.obs.MetricsRegistry`: plain dicts of floats, stable key order,
an explicit ``schema_version``, and a JSON round-trip.  Snapshots ride on
:class:`repro.stats.ExperimentResult` and in campaign point payloads.

Key naming (DESIGN.md §10): ``layer.station.metric`` with at least three
dot-separated segments.  Live counters accumulate during the run; the gauge
sweep (:func:`sweep_scenario`) runs once per ``Scenario.run`` and copies
set-semantics values (MacStats totals, engine counters, detection counts) so
calling ``run`` twice never double-counts them.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.scenario import Scenario
    from repro.obs.registry import MetricsRegistry

#: Version of the snapshot schema.  Bump when keys or structure change shape.
SCHEMA_VERSION = 1

_SECTIONS = ("counters", "gauges", "histograms")


@dataclass
class TelemetrySnapshot:
    """Frozen registry state: counters/gauges/histograms plus run metadata."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    #: histogram key -> {str(bucket) -> occurrence count}
    histograms: dict[str, dict[str, int]] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # -------------------------------------------------------- serialization --

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "meta": self.meta,
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "TelemetrySnapshot":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported telemetry schema_version {version!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        return TelemetrySnapshot(
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            histograms={k: dict(v) for k, v in data.get("histograms", {}).items()},
            meta=dict(data.get("meta", {})),
            schema_version=version,
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "TelemetrySnapshot":
        return TelemetrySnapshot.from_dict(json.loads(text))

    # --------------------------------------------------------------- views ---

    def stations(self) -> list[str]:
        """Sorted station segment of every key (second dot segment)."""
        seen = set()
        for section in _SECTIONS:
            for key in getattr(self, section):
                parts = key.split(".")
                if len(parts) >= 3:
                    seen.add(parts[1])
        return sorted(seen)

    def layers(self) -> list[str]:
        """Sorted layer segment of every key (first dot segment)."""
        seen = set()
        for section in _SECTIONS:
            for key in getattr(self, section):
                seen.add(key.split(".", 1)[0])
        return sorted(seen)

    def rows(self) -> list[tuple[str, str, str, str, str]]:
        """Flatten to (layer, station, metric, kind, value) rows for tables."""
        out: list[tuple[str, str, str, str, str]] = []
        for kind, section in (("counter", self.counters), ("gauge", self.gauges)):
            for key, value in section.items():
                layer, station, metric = _split_key(key)
                out.append((layer, station, metric, kind, _fmt_value(value)))
        for key, hist in self.histograms.items():
            layer, station, metric = _split_key(key)
            total = sum(hist.values())
            compact = ", ".join(f"{b}:{n}" for b, n in list(hist.items())[:8])
            if len(hist) > 8:
                compact += ", ..."
            out.append((layer, station, metric, "histogram", f"n={total} [{compact}]"))
        out.sort(key=lambda row: (row[0], row[1], row[2]))
        return out

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)


def _split_key(key: str) -> tuple[str, str, str]:
    parts = key.split(".", 2)
    while len(parts) < 3:
        parts.append("")
    return parts[0], parts[1], parts[2]


def _fmt_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"


# ------------------------------------------------------------- validation ---


def validate_snapshot(snapshot: TelemetrySnapshot) -> list[str]:
    """Return a list of schema problems (empty = valid).

    Checks: version match, ``layer.station.metric`` key shape, numeric
    values, non-negative integer histogram bucket counts.
    """
    problems: list[str] = []
    if snapshot.schema_version != SCHEMA_VERSION:
        problems.append(
            f"schema_version {snapshot.schema_version!r} != {SCHEMA_VERSION}"
        )
    for section in ("counters", "gauges"):
        for key, value in getattr(snapshot, section).items():
            if key.count(".") < 2:
                problems.append(f"{section} key {key!r} is not layer.station.metric")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{section}[{key!r}] is not numeric: {value!r}")
    for key, hist in snapshot.histograms.items():
        if key.count(".") < 2:
            problems.append(f"histograms key {key!r} is not layer.station.metric")
        if not isinstance(hist, dict):
            problems.append(f"histograms[{key!r}] is not a dict: {hist!r}")
            continue
        for bucket, count in hist.items():
            if not isinstance(bucket, str):
                problems.append(f"histograms[{key!r}] bucket {bucket!r} is not str")
            if not isinstance(count, int) or isinstance(count, bool) or count < 0:
                problems.append(
                    f"histograms[{key!r}][{bucket!r}] is not a non-negative int"
                )
    return problems


# ---------------------------------------------------------- scenario sweep --


def sweep_scenario(registry: "MetricsRegistry", scenario: "Scenario") -> None:
    """Copy end-of-run state into gauges (set semantics: idempotent).

    Live hooks count events as they happen; everything that is already
    accumulated elsewhere (MacStats, engine counters, the detection report)
    is swept here as gauges so re-running ``Scenario.run`` cannot double
    count it.
    """
    gauge = registry.gauge
    sim = scenario.sim
    gauge("sim.engine.events_processed", float(sim.events_processed))
    gauge("sim.engine.events_cancelled", float(sim.events_cancelled))
    gauge("sim.engine.compactions", float(sim.compactions))
    gauge("sim.engine.heap_high_water", float(sim.heap_high_water))
    gauge("sim.engine.pending_at_end", float(sim.pending_events))
    gauge("phy.medium.frames_sent", float(scenario.medium.frames_sent))
    for name, mac in scenario.macs.items():
        for metric, value in mac.stats.as_metrics().items():
            gauge(f"mac.{name}.{metric}", value)
    detections: Counter = Counter()
    for event in scenario.report.events:
        detections[(event.observer, event.detector)] += 1
    for (observer, detector), count in sorted(detections.items()):
        gauge(f"detect.{observer}.{detector}", float(count))
