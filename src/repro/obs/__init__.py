"""repro.obs: zero-cost-when-disabled telemetry for every layer.

The paper's GRC detectors are observability arguments — overheard-NAV
validation, RSSI deviation and MAC-vs-application loss consistency all
presume trustworthy per-station, per-layer counters.  This package provides
that as a first-class subsystem:

* :class:`MetricsRegistry` — counters / gauges / histograms keyed
  ``layer.station.metric``.
* :func:`capture` / :func:`current_registry` — ambient scope;
  :class:`repro.net.scenario.Scenario` auto-attaches the active registry.
* :class:`TelemetrySnapshot` — schema-versioned frozen view with a JSON
  round-trip, attached to :class:`repro.stats.ExperimentResult` and campaign
  point payloads; :func:`validate_snapshot` checks the schema.

With no registry attached every instrumentation hook is a single
``if self.obs is not None`` test on a plain attribute: golden traces stay
byte-identical (tests/test_obs.py, tests/test_golden_traces.py) and the
fast-path perf gate holds.
"""

from repro.obs.fleet import merge_snapshots
from repro.obs.registry import MetricsRegistry, capture, current_registry
from repro.obs.snapshot import (
    SCHEMA_VERSION,
    TelemetrySnapshot,
    sweep_scenario,
    validate_snapshot,
)

__all__ = [
    "MetricsRegistry",
    "TelemetrySnapshot",
    "SCHEMA_VERSION",
    "capture",
    "current_registry",
    "merge_snapshots",
    "sweep_scenario",
    "validate_snapshot",
]
