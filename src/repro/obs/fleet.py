"""Telemetry aggregation across runs: fold many snapshots into one.

The fleet tier captures one :class:`TelemetrySnapshot` per campaign point
(the representative-run snapshot stored in each point payload);
:func:`merge_snapshots` folds any number of them into a single fleet-wide
view.  Semantics follow the metric kinds:

* counters   — summed (event counts accumulate across runs);
* gauges     — summed too: every gauge the sweep writes is a set-semantics
  *total* of one run (events processed, frames sent, MacStats totals), and
  the sum over disjoint runs is the fleet total.  Last-write or averaging
  would silently misreport whichever runs came first;
* histograms — per-bucket occurrence counts summed.

Snapshots with mismatched ``schema_version`` refuse to merge — aggregating
across schema changes would produce silently wrong keys.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.snapshot import SCHEMA_VERSION, TelemetrySnapshot


def merge_snapshots(snapshots: Iterable[TelemetrySnapshot]) -> TelemetrySnapshot:
    """Fold snapshots into one (see module docstring for the semantics).

    Raises ``ValueError`` on an empty iterable or on a ``schema_version``
    mismatch.  The input order never matters: every fold is a commutative
    sum, so a merged fleet snapshot is independent of shard completion order.
    """
    merged = TelemetrySnapshot()
    count = 0
    for snapshot in snapshots:
        if snapshot.schema_version != SCHEMA_VERSION:
            raise ValueError(
                f"cannot merge telemetry schema_version {snapshot.schema_version!r} "
                f"(this code merges version {SCHEMA_VERSION})"
            )
        count += 1
        for key, value in snapshot.counters.items():
            merged.counters[key] = merged.counters.get(key, 0.0) + value
        for key, value in snapshot.gauges.items():
            merged.gauges[key] = merged.gauges.get(key, 0.0) + value
        for key, hist in snapshot.histograms.items():
            target = merged.histograms.setdefault(key, {})
            for bucket, occurrences in hist.items():
                target[bucket] = target.get(bucket, 0) + occurrences
    if count == 0:
        raise ValueError("cannot merge zero telemetry snapshots")
    merged.meta = {"merged_from": count}
    return merged
