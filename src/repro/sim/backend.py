"""Simulation backend registry and ambient selection.

A *backend* is a named bundle of implementation strategies for the hot
simulation paths — which medium class a :class:`repro.net.scenario.Scenario`
builds, whether the MAC uses precomputed slot/CW transition tables, and how
the corruption-roll uniforms are drawn.  Two backends ship today:

* ``scalar`` — the reference implementation: pure-python per-frame PHY math,
  draw-on-demand/256-batched RNG, arithmetic CW doubling.  This is the code
  path every golden trace was captured on.
* ``vectorized`` — numpy-accelerated: per-sender reach and FER tables are
  batched as arrays (:mod:`repro.phy.vectorized`), corruption uniforms come
  from :class:`repro.sim.rng.NumpyBlockUniform` (Mersenne-Twister state
  transplanted into numpy so block draws replay the scalar stream exactly),
  and the DCF uses precomputed slot-delay / CW-doubling tables.

**The equivalence contract.**  Every backend must either (a) replay the
committed golden traces and campaign metrics *byte for byte* — the
``vectorized`` backend does, which is what the cross-backend differential
harness (:mod:`repro.perf.diff`, ``tests/test_backend_diff.py``) enforces —
or (b) register ``trace_suffix`` so it gets its own ``backend=``-keyed
golden set under ``tests/golden/`` and a distinct result-cache version
(:func:`repro.runtime.cache.code_version_token` folds the active backend's
``cache_key`` in).  A backend may never silently serve results captured
under different semantics.

Selection is *ambient*: experiments, campaign builders and the perf harness
construct scenarios deep inside helper functions, so the active backend
travels in a :class:`~contextvars.ContextVar` (:func:`use_backend`) instead
of threading a parameter through thirty call sites.  ``Scenario(backend=...)``
still accepts an explicit override.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator


class BackendUnavailableError(RuntimeError):
    """Raised when a backend's runtime requirements (numpy) are missing."""


@dataclass(frozen=True)
class SimBackend:
    """One registered simulation backend (plain frozen data)."""

    name: str
    description: str
    #: Draw corruption/address-survival uniforms in numpy blocks
    #: (:class:`repro.sim.rng.NumpyBlockUniform`) instead of python batches.
    vector_rng: bool = False
    #: Build :class:`repro.phy.medium.VectorizedMedium` (batched reach,
    #: threshold-prefiltered hearer lists, flat FER cache).
    vector_phy: bool = False
    #: Precompute DCF slot-delay and CW-doubling tables (:mod:`repro.mac.dcf`).
    dcf_tables: bool = False
    #: Uniform block size for ``vector_rng`` backends.
    rng_block: int = 4096
    #: True when the backend needs numpy importable at scenario-build time.
    requires_numpy: bool = False
    #: Golden-trace filename suffix.  Empty means the backend promises
    #: byte-identical replay of the ``scalar`` golden set; a non-empty
    #: suffix (e.g. ``"mybackend"``) gives it its own committed files via
    #: :func:`repro.perf.golden.trace_filename`.
    trace_suffix: str = ""

    @property
    def is_reference(self) -> bool:
        """True for the backend the golden traces were captured on."""
        return self.name == "scalar"

    @property
    def cache_key(self) -> str:
        """Token folded into the result-cache version for this backend.

        Backends that are bit-exact against the reference share its cache
        (equal seeds produce equal floats, so entries are interchangeable);
        a backend with its own golden set gets its own cache namespace.
        """
        return "" if not self.trace_suffix else f"backend={self.name}"


BACKENDS: dict[str, SimBackend] = {
    "scalar": SimBackend(
        "scalar",
        "reference pure-python hot paths (golden traces captured here)",
    ),
    "vectorized": SimBackend(
        "vectorized",
        "numpy-batched reach/FER tables, block RNG, DCF transition tables "
        "(bit-exact against scalar)",
        vector_rng=True,
        vector_phy=True,
        dcf_tables=True,
        requires_numpy=True,
    ),
}


def numpy_available() -> bool:
    """True when numpy imports cleanly (the vectorized backend's only dep)."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy ships in CI images
        return False
    return True


def backend_names(available_only: bool = False) -> list[str]:
    """Registered backend names, registration order.

    ``available_only=True`` drops backends whose runtime requirements are
    missing (a numpy-less interpreter still lists and runs ``scalar``).
    """
    names = list(BACKENDS)
    if available_only and not numpy_available():
        names = [n for n in names if not BACKENDS[n].requires_numpy]
    return names


def resolve_backend(backend: "SimBackend | str | None") -> SimBackend:
    """Accept a :class:`SimBackend`, a name, or None (the ambient backend).

    Raises a readable ``KeyError`` for unknown names and
    :class:`BackendUnavailableError` when the backend needs numpy and the
    interpreter has none — callers on numpy-less machines keep working as
    long as they stick to ``scalar``.
    """
    if backend is None:
        return current_backend()
    if isinstance(backend, SimBackend):
        resolved = backend
    elif isinstance(backend, str):
        resolved = BACKENDS.get(backend)
        if resolved is None:
            raise KeyError(
                f"unknown simulation backend {backend!r}; "
                f"known backends: {backend_names()}"
            )
    else:
        raise TypeError(
            f"backend must be SimBackend, name or None, got {type(backend).__name__}"
        )
    if resolved.requires_numpy and not numpy_available():
        raise BackendUnavailableError(
            f"backend {resolved.name!r} requires numpy, which is not "
            "installed; use backend='scalar'"
        )
    return resolved


#: The ambient backend: what :class:`~repro.net.scenario.Scenario` builds
#: when no explicit ``backend=`` is given.  Defaults to the reference
#: implementation so existing callers are untouched.
_ACTIVE: ContextVar[SimBackend] = ContextVar("sim_backend", default=BACKENDS["scalar"])


def current_backend() -> SimBackend:
    """The ambient backend (``scalar`` unless inside :func:`use_backend`)."""
    return _ACTIVE.get()


@contextmanager
def use_backend(backend: "SimBackend | str | None") -> Iterator[SimBackend]:
    """Select the ambient backend for the duration of the ``with`` block.

    >>> from repro.sim.backend import use_backend, current_backend
    >>> with use_backend("vectorized"):
    ...     current_backend().name
    'vectorized'
    >>> current_backend().name
    'scalar'
    """
    resolved = resolve_backend(backend)
    token = _ACTIVE.set(resolved)
    try:
        yield resolved
    finally:
        _ACTIVE.reset(token)


__all__ = [
    "BACKENDS",
    "BackendUnavailableError",
    "SimBackend",
    "backend_names",
    "current_backend",
    "numpy_available",
    "resolve_backend",
    "use_backend",
]
