"""Discrete-event simulation substrate.

The engine is a classic event-heap scheduler with a microsecond float clock,
cancellable events, and deterministic tie-breaking (events scheduled earlier
fire earlier at equal timestamps).  Randomness is drawn from named substreams
derived from a single root seed so experiments are reproducible and individual
subsystems can be re-seeded independently.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngStreams

__all__ = ["Event", "Simulator", "RngStreams"]
