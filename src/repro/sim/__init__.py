"""Discrete-event simulation substrate.

The engine is a classic event-heap scheduler with a microsecond float clock,
cancellable events, and deterministic tie-breaking (events scheduled earlier
fire earlier at equal timestamps).  Randomness is drawn from named substreams
derived from a single root seed so experiments are reproducible and individual
subsystems can be re-seeded independently.
"""

from repro.sim.backend import (
    BACKENDS,
    BackendUnavailableError,
    SimBackend,
    backend_names,
    current_backend,
    resolve_backend,
    use_backend,
)
from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngStreams

__all__ = [
    "BACKENDS",
    "BackendUnavailableError",
    "Event",
    "RngStreams",
    "SimBackend",
    "Simulator",
    "backend_names",
    "current_backend",
    "resolve_backend",
    "use_backend",
]
