"""Named, reproducible random-number substreams.

Every stochastic subsystem draws from its own :class:`random.Random` stream
derived from a root seed and a stream name.  This keeps experiments
reproducible and makes results insensitive to the order in which unrelated
subsystems consume randomness.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """Factory of named :class:`random.Random` substreams.

    >>> streams = RngStreams(seed=7)
    >>> a = streams.stream("mac.backoff.node1")
    >>> b = streams.stream("mac.backoff.node2")
    >>> a is streams.stream("mac.backoff.node1")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (cached) substream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def spawn(self, salt: int) -> "RngStreams":
        """Derive an independent stream family (e.g. one per repetition)."""
        digest = hashlib.sha256(f"{self.seed}/spawn/{salt}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))


class NumpyBlockUniform:
    """Block uniform draws that replay a :class:`random.Random` stream exactly.

    Drop-in for :class:`BatchedUniform` on the vectorized backend: instead of
    calling ``rng.random()`` in a python loop, the wrapped stream's Mersenne
    Twister state is transplanted into ``numpy.random.RandomState`` once, and
    refills come from ``random_sample(block)``.  CPython and numpy share the
    MT19937 generator *and* the 53-bit double recipe
    (``((a >> 5) * 2**26 + (b >> 6)) / 2**53``), so the block is bit-identical
    to the values ``rng.random()`` would have produced — the golden traces and
    the cross-backend differential harness hold this down.

    Like :class:`BatchedUniform`, the wrapper must be the stream's **only**
    consumer: the python ``Random`` object is left untouched after the state
    transplant, so interleaving direct draws would fork the stream.  Callers
    that share the stream (the RSSI-jitter path) must keep using
    ``BatchedUniform(rng, batch=1)``.

    The buffer is converted with ``.tolist()`` at refill so consumers receive
    plain python floats — ``numpy.float64`` must never leak into frame flags
    or trace serialization.
    """

    __slots__ = ("block", "_state", "_buf", "_idx")

    def __init__(self, rng: random.Random, block: int = 4096) -> None:
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        import numpy as np

        self.block = block
        version, internal, _gauss = rng.getstate()
        if version != 3:  # pragma: no cover - CPython has used v3 since 2.3
            raise RuntimeError(f"unsupported Random state version: {version}")
        key, pos = internal[:624], internal[624]
        state = np.random.RandomState()
        state.set_state(("MT19937", np.array(key, dtype=np.uint32), pos))
        self._state = state
        self._buf: list[float] = []
        self._idx = 0

    def random(self) -> float:
        """Next uniform in [0, 1), bit-identical to the scalar stream."""
        idx = self._idx
        buf = self._buf
        if idx >= len(buf):
            self._buf = buf = self._state.random_sample(self.block).tolist()
            idx = 0
        self._idx = idx + 1
        return buf[idx]


class BatchedUniform:
    """Amortized uniform draws from one :class:`random.Random` stream.

    The hot simulation loops (frame corruption rolls, address-survival rolls)
    consume uniforms one at a time; this wrapper refills an internal buffer
    of ``batch`` draws at once and hands them out in order.  Because the
    buffer is filled *from the same underlying stream, in the same order*
    the values any consumer observes are bit-identical to calling
    ``rng.random()`` directly — provided the wrapper is the stream's only
    consumer (``tests/test_rng.py`` pins this equivalence down).

    With ``batch=1`` the wrapper degenerates to draw-on-demand: each call
    pulls exactly one value at call time, preserving interleaving with other
    consumers of the same stream (used when an RSSI-jitter callable shares
    the medium's stream).
    """

    __slots__ = ("batch", "_draw", "_buf", "_idx")

    def __init__(self, rng: random.Random, batch: int = 256) -> None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.batch = batch
        self._draw = rng.random
        self._buf: list[float] = []
        self._idx = 0

    def random(self) -> float:
        """Next uniform in [0, 1) from the wrapped stream."""
        idx = self._idx
        buf = self._buf
        if idx >= len(buf):
            draw = self._draw
            self._buf = buf = [draw() for _ in range(self.batch)]
            idx = 0
        self._idx = idx + 1
        return buf[idx]
