"""Named, reproducible random-number substreams.

Every stochastic subsystem draws from its own :class:`random.Random` stream
derived from a root seed and a stream name.  This keeps experiments
reproducible and makes results insensitive to the order in which unrelated
subsystems consume randomness.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """Factory of named :class:`random.Random` substreams.

    >>> streams = RngStreams(seed=7)
    >>> a = streams.stream("mac.backoff.node1")
    >>> b = streams.stream("mac.backoff.node2")
    >>> a is streams.stream("mac.backoff.node1")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (cached) substream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def spawn(self, salt: int) -> "RngStreams":
        """Derive an independent stream family (e.g. one per repetition)."""
        digest = hashlib.sha256(f"{self.seed}/spawn/{salt}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))
