"""Event-heap discrete-event simulator.

Time is a float number of microseconds.  All subsystems (PHY, MAC, transport)
schedule callbacks on one shared :class:`Simulator` instance.

Fast-path design (bit-identical to the original implementation — the golden
trace suite in ``tests/test_golden_traces.py`` holds this down):

* The heap stores plain ``(time, seq, payload)`` tuples, never objects with
  a Python-level ``__lt__``.  ``seq`` is a unique monotonically increasing
  integer, so tuple comparison is decided entirely inside C on the first two
  elements — the ``payload`` is never compared.  Event ordering is therefore
  the exact total order ``(time, seq)`` the original ``Event.__lt__`` used.
* Cancellation is O(1) via **generation counters**: every :class:`Event`
  handle carries a generation, the heap entry records the generation it was
  scheduled with, and a popped entry fires only when the two still match.
  Cancelling (or firing) bumps the handle's generation, so stale entries —
  including a timer cancelled and re-armed within the same tick — are
  skipped without ever scanning the heap.
* :attr:`Simulator.pending_events` is a maintained counter, not an O(n)
  sweep over the heap (the old sweep was hot in cancel-heavy ``testbed/``
  emulation runs, where NAV timers are re-armed on nearly every overheard
  frame).
* Dead entries left behind by cancellations are compacted away once they
  outnumber live ones (amortized O(1) per cancellation), so cancel/re-arm
  storms cannot degrade ``heappush``/``heappop`` to log of garbage.
* Fire-and-forget callbacks — the overwhelming majority: frame arrivals,
  transmit-end notifications, SIFS responses — can skip the handle
  allocation entirely via :meth:`Simulator.call_after` / :meth:`call_at`;
  their payload is a bare ``(fn, args)`` tuple.
"""

from __future__ import annotations

import heapq
from heapq import heappush
from typing import Any, Callable

_INF = float("inf")


class Event:
    """A cancellable handle for a scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and may be cancelled with
    :meth:`Simulator.cancel` (or :meth:`cancel` on the event itself).
    Cancellation is O(1): it bumps :attr:`gen`, orphaning the heap entry that
    was scheduled under the previous generation.
    """

    __slots__ = ("time", "seq", "fn", "args", "gen", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Simulator",
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.gen = 0  # generation the live heap entry was scheduled with
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark this event so that it never fires."""
        if self.fn is not None and not self.cancelled:
            sim = self._sim
            sim._live -= 1
            sim.events_cancelled += 1
            sim._maybe_compact()
        self.cancelled = True
        self.gen += 1

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled and self.fn is not None

    def _fire(self) -> None:
        fn, args = self.fn, self.args
        self.fn = None  # break reference cycles and mark as fired
        self.args = ()
        self.gen += 1
        fn(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending" if self.fn else "fired"
        return f"Event(t={self.time:.3f}us, seq={self.seq}, {state})"


class Simulator:
    """Discrete-event scheduler with a microsecond clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        # Heap entries: (time, seq, payload) where payload is either an
        # (fn, args) tuple scheduled at generation 0 — the fire-and-forget
        # fast path — or (gen, Event) for cancellable handles.
        self._heap: list[tuple] = []
        self._seq: int = 0
        self._running = False
        self._live: int = 0  # entries that will still fire
        self.events_processed: int = 0
        self.events_cancelled: int = 0
        self.compactions: int = 0
        #: Largest heap size observed while :attr:`track_heap` is True.
        #: Tracking is opt-in (telemetry attaches it): the counter itself
        #: never affects event ordering, only the four schedule paths pay
        #: one predictable branch.
        self.track_heap: bool = False
        self.heap_high_water: int = 0

    # ------------------------------------------------------------ schedule --

    def _reject_time(self, time: float) -> None:
        """Raise the right ValueError for a time outside ``[now, inf)``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        raise ValueError(f"invalid event time: {time}")

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        if not (time < _INF):  # catches +inf and NaN in one comparison
            self._reject_time(time)
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        heappush(self._heap, (time, seq, (0, event)))
        self._live += 1
        if self.track_heap and len(self._heap) > self.heap_high_water:
            self.heap_high_water = len(self._heap)
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if not (self.now <= time < _INF):  # also catches NaN (compares False)
            self._reject_time(time)
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        heappush(self._heap, (time, seq, (0, event)))
        self._live += 1
        if self.track_heap and len(self._heap) > self.heap_high_water:
            self.heap_high_water = len(self._heap)
        return event

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no cancellable handle.

        Identical firing semantics and ordering (same ``(time, seq)`` key),
        but skips the :class:`Event` allocation — the fast path for the
        per-frame callbacks that are never cancelled (frame arrival and
        departure notifications, SIFS-deferred responses).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        if not (time < _INF):
            self._reject_time(time)
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (time, seq, (fn, args)))
        self._live += 1
        if self.track_heap and len(self._heap) > self.heap_high_water:
            self.heap_high_water = len(self._heap)

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`: no cancellable handle."""
        if not (self.now <= time < _INF):
            self._reject_time(time)
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (time, seq, (fn, args)))
        self._live += 1
        if self.track_heap and len(self._heap) > self.heap_high_water:
            self.heap_high_water = len(self._heap)

    # -------------------------------------------------------------- cancel --

    def cancel(self, event: Event | None) -> None:
        """Cancel a previously scheduled event.  ``None`` is ignored."""
        if event is not None:
            event.cancel()

    def _maybe_compact(self) -> None:
        """Drop orphaned heap entries once they outnumber live ones.

        Amortized O(1) per cancellation: a compaction costs O(n) but at
        least halves the heap, and only runs after n/2 cancellations.
        """
        heap = self._heap
        dead = len(heap) - self._live
        if dead <= 64 or dead <= self._live:
            return
        self.compactions += 1
        self._heap = [
            entry
            for entry in heap
            if not (
                entry[2].__class__ is tuple
                and entry[2][1].__class__ is Event
                and entry[2][0] != entry[2][1].gen
            )
        ]
        heapq.heapify(self._heap)

    # ----------------------------------------------------------------- run --

    def run(self, until: float | None = None) -> None:
        """Run events in timestamp order.

        Stops when the heap is empty, or — if ``until`` is given — once the
        next event would fire strictly after ``until`` (the clock is then
        advanced to ``until``).
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        # Event times are always finite (schedule rejects inf/NaN), so an
        # unbounded run is just a bound no event can exceed.
        bound = _INF if until is None else until
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                if heap is not self._heap:  # compaction swapped the list
                    heap = self._heap
                    continue
                entry = pop(heap)
                payload = entry[2]
                tag = payload[0]
                if tag.__class__ is int:  # cancellable handle: check its gen
                    event = payload[1]
                    if event.gen != tag:
                        continue  # cancelled: drop the stale entry
                    time = entry[0]
                    if time > bound:
                        heappush(heap, entry)  # once per run(): restore & stop
                        break
                    self.now = time
                    self.events_processed += 1
                    self._live -= 1
                    event._fire()
                else:  # fire-and-forget (fn, args) payload
                    time = entry[0]
                    if time > bound:
                        heappush(heap, entry)
                        break
                    self.now = time
                    self.events_processed += 1
                    self._live -= 1
                    tag(*payload[1])
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def run_until_idle(self) -> None:
        """Drain every pending event (no time bound)."""
        self.run(until=None)

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still scheduled (O(1))."""
        return self._live
