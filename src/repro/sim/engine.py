"""Event-heap discrete-event simulator.

Time is a float number of microseconds.  All subsystems (PHY, MAC, transport)
schedule callbacks on one shared :class:`Simulator` instance.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and may be cancelled with
    :meth:`Simulator.cancel` (or :meth:`cancel` on the event itself).
    Cancelled events stay in the heap but are skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so that it never fires."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled and self.fn is not None

    def _fire(self) -> None:
        fn, args = self.fn, self.args
        self.fn = None  # break reference cycles and mark as fired
        self.args = ()
        fn(*args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending" if self.fn else "fired"
        return f"Event(t={self.time:.3f}us, seq={self.seq}, {state})"


class Simulator:
    """Discrete-event scheduler with a microsecond clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._running = False
        self.events_processed: int = 0

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        if math.isnan(time) or math.isinf(time):
            raise ValueError(f"invalid event time: {time}")
        event = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event | None) -> None:
        """Cancel a previously scheduled event.  ``None`` is ignored."""
        if event is not None:
            event.cancel()

    def run(self, until: float | None = None) -> None:
        """Run events in timestamp order.

        Stops when the heap is empty, or — if ``until`` is given — once the
        next event would fire strictly after ``until`` (the clock is then
        advanced to ``until``).
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled or event.fn is None:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self.now = event.time
                self.events_processed += 1
                event._fire()
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def run_until_idle(self) -> None:
        """Drain every pending event (no time bound)."""
        self.run(until=None)

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still in the heap."""
        return sum(1 for e in self._heap if e.pending)
