"""Per-frame tracing and time-series telemetry.

:class:`FrameTracer` records every frame put on the air (like an ns-2 trace
file) without touching MAC internals — it wraps ``Medium.transmit``.  Traces
are what you reach for when a scenario behaves unexpectedly: who transmitted
when, at what rate, with what NAV.

:func:`attach_goodput_series` wraps a sink's ``receive`` to build a windowed
goodput time series, and :func:`sparkline` renders one inline — handy for
eyeballing when a greedy receiver takes the channel over.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.sim.engine import Simulator

US_PER_S = 1_000_000.0


@dataclass(frozen=True)
class TraceRecord:
    """One transmitted frame."""

    time_us: float
    sender: str  # radio that actually transmitted (spoofers show up here)
    kind: str
    src: str  # claimed source address in the frame
    dst: str
    nav_us: float
    size_bytes: int
    rate_mbps: float | None
    airtime_us: float

    def to_dict(self) -> dict[str, Any]:
        """Field dict, JSON-ready (what :meth:`FrameTracer.to_jsonl` writes)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceRecord":
        """Inverse of :meth:`to_dict` — rebuilds a record from one JSONL row.

        Round-trip is exact: ``TraceRecord.from_dict(r.to_dict()) == r`` for
        every record, which is what lets the committed golden traces replay
        through the streaming detection pipeline byte-for-byte.
        """
        return cls(
            time_us=data["time_us"],
            sender=data["sender"],
            kind=data["kind"],
            src=data["src"],
            dst=data["dst"],
            nav_us=data["nav_us"],
            size_bytes=data["size_bytes"],
            rate_mbps=data["rate_mbps"],
            airtime_us=data["airtime_us"],
        )

    def to_line(self) -> str:
        """One-line ns-2-style rendering of this record."""
        rate = f"{self.rate_mbps:g}M" if self.rate_mbps is not None else "-"
        return (
            f"{self.time_us / US_PER_S:.6f} {self.sender:>8} {self.kind:<4} "
            f"{self.src}->{self.dst} nav={self.nav_us:.0f} "
            f"len={self.size_bytes} rate={rate} air={self.airtime_us:.0f}"
        )


class FrameTracer:
    """Records every transmission on a medium.

    >>> tracer = FrameTracer(scenario.medium)            # doctest: +SKIP
    >>> scenario.run(1.0)                                # doctest: +SKIP
    >>> suspicious = tracer.filter(kind="CTS", min_nav=5000)  # doctest: +SKIP
    """

    def __init__(self, medium: Any, max_records: int = 1_000_000) -> None:
        self.records: list[TraceRecord] = []
        self.max_records = max_records
        self.dropped = 0
        self._medium = medium
        self._original_transmit = medium.transmit
        medium.transmit = self._traced_transmit

    def _traced_transmit(self, sender: Any, frame: Any, duration: float) -> None:
        if len(self.records) < self.max_records:
            self.records.append(
                TraceRecord(
                    time_us=self._medium.sim.now,
                    sender=sender.name,
                    kind=frame.kind.value,
                    src=frame.src,
                    dst=frame.dst,
                    nav_us=frame.duration,
                    size_bytes=frame.size_bytes,
                    rate_mbps=getattr(frame, "rate", None),
                    airtime_us=duration,
                )
            )
        else:
            self.dropped += 1
        self._original_transmit(sender, frame, duration)

    def detach(self) -> None:
        """Stop tracing and restore the medium's transmit method."""
        self._medium.transmit = self._original_transmit

    # ---------------------------------------------------------- queries -----

    def filter(
        self,
        kind: str | None = None,
        sender: str | None = None,
        dst: str | None = None,
        min_nav: float | None = None,
        since_us: float | None = None,
    ) -> list[TraceRecord]:
        """Records matching every given criterion."""
        out = []
        for r in self.records:
            if kind is not None and r.kind != kind:
                continue
            if sender is not None and r.sender != sender:
                continue
            if dst is not None and r.dst != dst:
                continue
            if min_nav is not None and r.nav_us < min_nav:
                continue
            if since_us is not None and r.time_us < since_us:
                continue
            out.append(r)
        return out

    def impersonations(self) -> list[TraceRecord]:
        """Frames whose claimed source differs from the transmitting radio —
        exactly the spoofed ACKs of misbehavior 2 (visible only to an
        omniscient tracer, which is why real detection needs RSSI)."""
        return [r for r in self.records if r.src != r.sender]

    def airtime_by_sender(self) -> dict[str, float]:
        """Total microseconds of airtime each radio consumed."""
        totals: dict[str, float] = {}
        for r in self.records:
            totals[r.sender] = totals.get(r.sender, 0.0) + r.airtime_us
        return totals

    def to_text(self, limit: int | None = None) -> str:
        """Render the (optionally truncated) trace as text lines."""
        rows = self.records if limit is None else self.records[:limit]
        return "\n".join(r.to_line() for r in rows)

    def to_jsonl(self, path: str | Path, limit: int | None = None) -> int:
        """Write the trace as JSON Lines (one record per line); returns the
        record count written.  This is the persistence format campaign runs
        use for offline inspection — each line is self-describing, so traces
        from different points can be concatenated and grepped/loaded with any
        JSONL tooling."""
        rows = self.records if limit is None else self.records[:limit]
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            for record in rows:
                handle.write(json.dumps(record.to_dict(), sort_keys=True))
                handle.write("\n")
        return len(rows)


def load_trace_jsonl(path: str | Path) -> list[TraceRecord]:
    """Load a JSONL trace written by :meth:`FrameTracer.to_jsonl`.

    This is how the committed ``tests/golden/*.jsonl`` traces re-enter the
    analysis layer: detection diffing replays them through the offline and
    streaming detectors without re-running the simulations that produced
    them.  Blank lines are skipped so concatenated trace files load too.
    """
    records = []
    with open(Path(path)) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(TraceRecord.from_dict(json.loads(line)))
    return records


class GoodputSeries:
    """Windowed goodput counter: bytes per fixed window, as Mbps samples."""

    def __init__(self, sim: Simulator, window_us: float = 100_000.0) -> None:
        if window_us <= 0:
            raise ValueError("window must be positive")
        self.sim = sim
        self.window_us = window_us
        self._buckets: dict[int, int] = {}

    def record(self, nbytes: int) -> None:
        """Add ``nbytes`` of goodput to the current window."""
        bucket = int(self.sim.now // self.window_us)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + nbytes

    def series(self, until_us: float | None = None) -> list[tuple[float, float]]:
        """Return (window start seconds, Mbps) samples, gaps filled with 0."""
        if not self._buckets:
            return []
        end = until_us if until_us is not None else self.sim.now
        last_bucket = int(end // self.window_us)
        out = []
        for bucket in range(0, last_bucket + 1):
            nbytes = self._buckets.get(bucket, 0)
            mbps = nbytes * 8 / self.window_us
            out.append((bucket * self.window_us / US_PER_S, mbps))
        return out


def attach_goodput_series(
    sim: Simulator, sink: Any, window_us: float = 100_000.0
) -> GoodputSeries:
    """Wrap ``sink.receive`` to feed a :class:`GoodputSeries`."""
    series = GoodputSeries(sim, window_us)
    original = sink.receive

    def wrapped(packet: Any) -> None:
        before = getattr(sink, "bytes_received", 0)
        original(packet)
        after = getattr(sink, "bytes_received", 0)
        if after > before:  # only goodput (new, non-duplicate) bytes count
            series.record(after - before)

    sink.receive = wrapped
    return series


_SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: Iterable[float], width: int = 60) -> str:
    """Render a sequence of non-negative samples as a one-line ASCII chart."""
    samples = list(values)
    if not samples:
        return ""
    if len(samples) > width:  # downsample by averaging runs
        chunk = len(samples) / width
        samples = [
            sum(samples[int(i * chunk) : max(int((i + 1) * chunk), int(i * chunk) + 1)])
            / max(1, len(samples[int(i * chunk) : max(int((i + 1) * chunk), int(i * chunk) + 1)]))
            for i in range(width)
        ]
    top = max(samples)
    if top <= 0:
        return _SPARK_CHARS[0] * len(samples)
    scale = len(_SPARK_CHARS) - 1
    return "".join(_SPARK_CHARS[round(v / top * scale)] for v in samples)
