"""Result collection, tracing, and presentation helpers."""

from repro.stats.summary import (
    ExperimentResult,
    format_table,
    median,
    median_over_seeds,
)
from repro.stats.trace import (
    FrameTracer,
    GoodputSeries,
    TraceRecord,
    attach_goodput_series,
    sparkline,
)

__all__ = [
    "ExperimentResult",
    "format_table",
    "median",
    "median_over_seeds",
    "FrameTracer",
    "GoodputSeries",
    "TraceRecord",
    "attach_goodput_series",
    "sparkline",
]
