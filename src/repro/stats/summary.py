"""Experiment result containers, medians over seeds, and ASCII tables.

The paper runs each scenario 5 times and reports the median goodput; the
helpers here encode that methodology once for all experiments.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.snapshot import TelemetrySnapshot

#: Version of the ExperimentResult JSON schema.  Version 1 predates the
#: ``telemetry`` field; both are accepted by :meth:`ExperimentResult.from_json`.
RESULT_SCHEMA_VERSION = 2


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence."""
    if not values:
        raise ValueError("median of empty sequence")
    return statistics.median(values)


def median_over_seeds(
    run: Callable[[int], Mapping[str, float]] | "JobSpec",
    seeds: Sequence[int],
    *,
    jobs: int | None = None,
    cache: Any | None = None,
    executor: Any | None = None,
) -> dict[str, float]:
    """Run one job per seed; return the per-key median.

    ``run`` is a plain ``run(seed)`` callable or a pickle-safe
    :class:`repro.runtime.JobSpec`; execution is delegated to
    :func:`repro.runtime.map_over_seeds`, so JobSpecs fan out across
    processes (and hit the result cache) when the ambient execution context
    or the explicit ``jobs``/``cache``/``executor`` arguments say so.
    Results are keyed by seed internally, so the median is independent of
    completion order.  Every invocation must return the same keys (e.g.
    per-flow goodput).
    """
    from repro.runtime import map_over_seeds

    per_seed = map_over_seeds(run, seeds, jobs=jobs, cache=cache, executor=executor)
    outcomes = [per_seed[seed] for seed in per_seed]
    keys = outcomes[0].keys()
    for outcome in outcomes[1:]:
        if outcome.keys() != keys:
            raise ValueError("runs returned inconsistent keys")
    return {key: median([outcome[key] for outcome in outcomes]) for key in keys}


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure, with formatting helpers."""

    name: str
    description: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    #: JSON schema version of this container (see RESULT_SCHEMA_VERSION).
    schema_version: int = RESULT_SCHEMA_VERSION
    #: Telemetry captured while the experiment ran (``RunSettings.telemetry``),
    #: or None.  Counters aggregate over every simulation the experiment ran.
    telemetry: "TelemetrySnapshot | None" = None

    def add_row(self, **values: Any) -> None:
        """Append one row; every declared column must be present."""
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row missing columns: {missing}")
        self.rows.append(values)

    def series(self, x: str, y: str) -> list[tuple[Any, Any]]:
        """Extract one (x, y) series, e.g. for shape assertions in benches."""
        return [(row[x], row[y]) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row[name] for row in self.rows]

    def to_text(self) -> str:
        """Render name, description and rows as an ASCII table."""
        header = f"== {self.name} ==\n{self.description}\n"
        cells = [[_fmt(row[c]) for c in self.columns] for row in self.rows]
        return header + format_table(self.columns, cells)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()

    # -------------------------------------------------------- serialization --

    def to_json(self, indent: int | None = None) -> str:
        """Stable JSON encoding (sorted keys, explicit schema version)."""
        doc: dict[str, Any] = {
            "schema_version": self.schema_version,
            "name": self.name,
            "description": self.description,
            "columns": self.columns,
            "rows": self.rows,
            "telemetry": self.telemetry.to_dict() if self.telemetry else None,
        }
        return json.dumps(doc, indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`; accepts schema versions 1 and 2."""
        from repro.obs.snapshot import TelemetrySnapshot

        doc = json.loads(text)
        version = doc.get("schema_version", 1)
        if version not in (1, RESULT_SCHEMA_VERSION):
            raise ValueError(
                f"unsupported ExperimentResult schema_version {version!r}"
            )
        telemetry_doc = doc.get("telemetry")
        result = ExperimentResult(
            name=doc["name"],
            description=doc["description"],
            columns=list(doc["columns"]),
            schema_version=RESULT_SCHEMA_VERSION,
            telemetry=(
                TelemetrySnapshot.from_dict(telemetry_doc) if telemetry_doc else None
            ),
        )
        for row in doc.get("rows", []):
            result.add_row(**row)
        return result


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a fixed-width ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"
