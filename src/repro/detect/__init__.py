"""repro.detect — the streaming-detection equivalence gate.

:mod:`repro.detect.diff` holds the differential harness that licenses the
streaming pipeline (:mod:`repro.core.detection.streaming`): event-identity
with the offline analyzers on every golden trace, live scenario and fuzzed
workload, chunked replay through snapshot/restore, and the bounded-memory
high-water assertion.  ``repro detect diff`` is the CLI entry point;
DESIGN.md §14 documents the contract.
"""

from repro.detect.diff import (
    DetectDiffReport,
    DetectRun,
    canonical_event_lines,
    diff_detection,
    diff_fuzz_case,
    diff_golden_trace,
    diff_scenario_live,
    diff_trace_records,
    run_offline,
    run_streaming,
    run_streaming_chunked,
)

__all__ = [
    "DetectDiffReport",
    "DetectRun",
    "canonical_event_lines",
    "diff_detection",
    "diff_fuzz_case",
    "diff_golden_trace",
    "diff_scenario_live",
    "diff_trace_records",
    "run_offline",
    "run_streaming",
    "run_streaming_chunked",
]
