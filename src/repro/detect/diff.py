"""Streaming-vs-offline differential harness for misbehavior detection.

The streaming pipeline's license to exist is **event-identity with the
offline analyzers** (the :mod:`repro.core.detection.offline` batch
implementations) on every trace, plus the constant-memory promise that
makes it deployable at production rates.  This module is the enforcement
machinery, mirroring the PR-6 backend gate (:mod:`repro.perf.diff`) one
layer up:

* **Canonical event lines** — every
  :class:`~repro.core.detection.report.DetectionEvent` serialized as sorted
  JSON and the whole set canonically ordered, so the offline analyzers'
  per-detector grouping and the stream's time interleaving compare
  byte-for-byte.  The first diverging line is reported with both
  renderings.
* **Chunked replay** — each trace is replayed through a *second* streaming
  pipeline in deterministic chunks with a snapshot/restore round-trip at
  every boundary, so the diff also exercises the checkpoint path, not just
  straight-line feeding.
* **Memory high-water assertion** — the pipeline's summed ``state_size()``
  peak must stay within its declared ``bound()``; a detector that silently
  retains the trace fails the diff even if its events match.

Three target kinds: the committed golden traces (``tests/golden/*.jsonl``,
clean and fault-plan), live perf scenarios (a :class:`DetectionTap` feeding
during simulation, compared against the offline pass over a simultaneously
captured trace), and fuzzed scenarios (random topologies derived from case
seeds, same recipe as the backend fuzzer).  ``repro detect diff`` (CLI) and
tests/test_detect_diff.py drive all three.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.core.detection.offline import analyze_trace
from repro.core.detection.report import DetectionEvent, DetectionReport
from repro.core.detection.streaming import (
    StreamingDetectionPipeline,
    default_pipeline,
)
from repro.phy.params import PhyParams

US_PER_S = 1_000_000.0

#: Deterministic chunk lengths for the replay tier: one-event-at-a-time,
#: small, odd, and large chunks — the boundary cases chunking bugs live at.
REPLAY_CHUNKS = (1, 7, 64, 1024)

#: The always-on fuzz subset (mirrors repro.perf.diff's QUICK_CASES).
QUICK_FUZZ_CASES = tuple(range(10))


def canonical_event_lines(events: Iterable[DetectionEvent]) -> tuple[str, ...]:
    """Order-independent byte rendering of a detection event set.

    Events are serialized with sorted keys and sorted by the full field
    tuple: producers that emit the same *set* of events in different orders
    (offline analyzers group by detector; the stream interleaves by time)
    canonicalize to identical lines.
    """
    rows = sorted(
        (e.time_us, e.detector, e.offender, e.observer, e.detail) for e in events
    )
    return tuple(
        json.dumps(
            {
                "time_us": time_us,
                "detector": detector,
                "offender": offender,
                "observer": observer,
                "detail": detail,
            },
            sort_keys=True,
        )
        for time_us, detector, offender, observer, detail in rows
    )


@dataclass(frozen=True)
class DetectRun:
    """One detection pass over one trace: the comparable evidence."""

    source: str  # "offline" | "streaming" | "streaming-chunked" | "live"
    event_lines: tuple[str, ...]
    records: int
    high_water: int
    bound: int

    @property
    def fingerprint(self) -> str:
        digest = hashlib.sha256()
        for line in self.event_lines:
            digest.update(line.encode())
            digest.update(b"\n")
        digest.update(str(self.records).encode())
        return digest.hexdigest()[:16]


@dataclass
class DetectDiffReport:
    """Outcome of one streaming-vs-offline comparison."""

    target: str
    kind: str  # "golden" | "scenario" | "fuzz"
    sources: tuple[str, ...]
    problems: list[str] = field(default_factory=list)
    events: int = 0
    records: int = 0
    high_water: int = 0
    bound: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary_line(self) -> str:
        pair = " vs ".join(self.sources)
        verdict = (
            f"identical ({self.events} events, high-water "
            f"{self.high_water}/{self.bound})"
            if self.ok
            else f"{len(self.problems)} difference(s)"
        )
        return f"{self.kind} {self.target} ({self.records} records): {pair} — {verdict}"


def _diff_event_lines(
    reference: DetectRun, candidate: DetectRun
) -> list[str]:
    """First diverging canonical line (plus count skew), like the trace diff."""
    problems: list[str] = []
    a, b = reference.event_lines, candidate.event_lines
    if a == b:
        return problems
    if len(a) != len(b):
        problems.append(
            f"event count differs: {len(a)} ({reference.source}) "
            f"vs {len(b)} ({candidate.source})"
        )
    for index, (line_a, line_b) in enumerate(zip(a, b)):
        if line_a != line_b:
            problems.append(
                f"events diverge at canonical line {index + 1}:\n"
                f"  {reference.source:>18}: {line_a}\n"
                f"  {candidate.source:>18}: {line_b}"
            )
            break
    else:
        if len(a) != len(b):
            longer, run = (a, reference) if len(a) > len(b) else (b, candidate)
            problems.append(
                f"extra event only in {run.source}: {longer[min(len(a), len(b))]}"
            )
    return problems


def run_offline(
    records: Sequence[Any], phy: PhyParams | None = None, **params: Any
) -> DetectRun:
    """The batch reference pass (memory cost: the whole trace, by design)."""
    report = analyze_trace(records, phy=phy, **params)
    _check_capacity(report, len(records))
    return DetectRun(
        source="offline",
        event_lines=canonical_event_lines(report.events),
        records=len(records),
        high_water=len(records),  # offline retains the full trace
        bound=len(records),
    )


def run_streaming(
    records: Sequence[Any],
    phy: PhyParams | None = None,
    pipeline_factory: "Callable[[PhyParams | None], StreamingDetectionPipeline] | None" = None,
    **params: Any,
) -> DetectRun:
    """Straight-line streaming pass: feed every record once, in order."""
    pipeline = (
        pipeline_factory(phy)
        if pipeline_factory is not None
        else default_pipeline(phy, **params)
    )
    pipeline.feed_many(records)
    _check_capacity(pipeline.report, len(records))
    return DetectRun(
        source="streaming",
        event_lines=canonical_event_lines(pipeline.events),
        records=len(records),
        high_water=pipeline.high_water,
        bound=pipeline.bound(),
    )


def run_streaming_chunked(
    records: Sequence[Any],
    phy: PhyParams | None = None,
    chunks: Sequence[int] = REPLAY_CHUNKS,
    **params: Any,
) -> DetectRun:
    """Chunked replay with a snapshot/restore round-trip at every boundary.

    Chunk lengths cycle through ``chunks``; at each boundary the pipeline is
    snapshotted and its detector state restored into a **fresh** pipeline
    that continues the stream (events emitted so far are carried over).  Any
    state the snapshot fails to round-trip shows up as an event divergence.
    """
    pipeline = default_pipeline(phy, **params)
    events: list[DetectionEvent] = []
    high_water = 0
    position = 0
    cycle = 0
    while position < len(records):
        size = chunks[cycle % len(chunks)]
        cycle += 1
        for record in records[position : position + size]:
            events.extend(pipeline.feed(record))
        position += size
        high_water = max(high_water, pipeline.high_water)
        state = json.loads(json.dumps(pipeline.snapshot()))  # force JSON round-trip
        resumed = default_pipeline(phy, **params)
        resumed.restore(state)
        resumed.high_water = pipeline.high_water
        pipeline = resumed
    return DetectRun(
        source="streaming-chunked",
        event_lines=canonical_event_lines(events),
        records=len(records),
        high_water=high_water,
        bound=pipeline.bound(),
    )


def _check_capacity(report: DetectionReport, records: int) -> None:
    if len(report.events) >= report.max_events:
        raise RuntimeError(
            f"detection report hit max_events={report.max_events} on a "
            f"{records}-record trace; equivalence is undefined under "
            "truncation — raise max_events or shorten the trace"
        )


def diff_trace_records(
    records: Sequence[Any],
    target: str,
    kind: str = "golden",
    phy: PhyParams | None = None,
    extra_runs: Sequence[DetectRun] = (),
    **params: Any,
) -> DetectDiffReport:
    """Compare offline / streaming / chunked-replay passes over one trace.

    ``extra_runs`` lets callers add independently produced evidence to the
    comparison — the live-tap run of :func:`diff_scenario_live` rides in
    this way.  Every candidate is compared to the offline reference, and
    every streaming run must respect its memory bound.
    """
    records = list(records)
    reference = run_offline(records, phy=phy, **params)
    candidates = [
        run_streaming(records, phy=phy, **params),
        run_streaming_chunked(records, phy=phy, **params),
        *extra_runs,
    ]
    problems: list[str] = []
    high_water = 0
    bound = 0
    for candidate in candidates:
        problems.extend(_diff_event_lines(reference, candidate))
        if candidate.high_water > candidate.bound:
            problems.append(
                f"memory bound violated in {candidate.source}: high-water "
                f"{candidate.high_water} items > bound {candidate.bound}"
            )
        high_water = max(high_water, candidate.high_water)
        bound = candidate.bound
    return DetectDiffReport(
        target=target,
        kind=kind,
        sources=(reference.source, *(c.source for c in candidates)),
        problems=problems,
        events=len(reference.event_lines),
        records=len(records),
        high_water=high_water,
        bound=bound,
    )


# ------------------------------------------------------- golden traces -----


def default_golden_dir() -> Path:
    """``tests/golden`` of the source checkout (where captures commit to)."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def golden_trace_paths(golden_dir: str | Path | None = None) -> dict[str, Path]:
    """Committed golden traces by target name: clean runs and fault runs."""
    from repro.perf.golden import (
        GOLDEN_FAULT_RUNS,
        GOLDEN_TRACE_RUNS,
        fault_trace_filename,
        trace_filename,
    )

    golden_dir = Path(golden_dir) if golden_dir is not None else default_golden_dir()
    paths = {name: golden_dir / trace_filename(name) for name in GOLDEN_TRACE_RUNS}
    paths.update(
        {
            f"fault_{key}": golden_dir / fault_trace_filename(key)
            for key in GOLDEN_FAULT_RUNS
        }
    )
    return paths


def diff_golden_trace(
    name: str, path: str | Path, phy: PhyParams | None = None, **params: Any
) -> DetectDiffReport:
    """Diff detection passes over one committed golden trace file."""
    from repro.stats.trace import load_trace_jsonl

    records = load_trace_jsonl(path)
    report = diff_trace_records(records, target=name, kind="golden", phy=phy, **params)
    if not records:
        report.problems.append(f"golden trace {path} is empty")
    return report


# -------------------------------------------------------- live scenarios ---


def diff_scenario_live(
    name: str,
    seed: int | None = None,
    duration_s: float | None = None,
    **params: Any,
) -> DetectDiffReport:
    """Run one perf scenario with a live tap; diff against the offline pass.

    The scenario runs **once** with both a :class:`DetectionTap` (the
    streaming pipeline fed during simulation) and a
    :class:`~repro.stats.trace.FrameTracer` (the retained trace the offline
    analyzers and the replay tiers consume) attached — so the comparison
    also proves the tap sees exactly the transmission stream the tracer
    records, and that attaching it never perturbs the simulation.
    """
    from repro.core.detection.streaming import DetectionTap
    from repro.perf.golden import GOLDEN_TRACE_RUNS
    from repro.perf.scenarios import get_scenario
    from repro.stats.trace import FrameTracer

    spec = get_scenario(name)
    default_seed, default_duration = GOLDEN_TRACE_RUNS.get(name, (1, None))
    if seed is None:
        seed = default_seed
    if duration_s is None:
        duration_s = default_duration if default_duration is not None else spec.duration_s
    built = spec.build(seed)
    phy = built.scenario.phy
    pipeline = default_pipeline(phy, **params)
    # Wrap order matters for equality: the tracer wraps last so it records
    # the stream the tap already saw — both observe every transmission.
    tap = DetectionTap(built.scenario.medium, pipeline)
    tracer = FrameTracer(built.scenario.medium)
    built.scenario.run(duration_s)
    tracer.detach()
    tap.detach()
    live = DetectRun(
        source="live",
        event_lines=canonical_event_lines(pipeline.events),
        records=pipeline.records_seen,
        high_water=pipeline.high_water,
        bound=pipeline.bound(),
    )
    report = diff_trace_records(
        tracer.records,
        target=name,
        kind="scenario",
        phy=phy,
        extra_runs=(live,),
        **params,
    )
    if pipeline.records_seen != len(tracer.records):
        report.problems.append(
            f"live tap saw {pipeline.records_seen} transmissions, "
            f"tracer recorded {len(tracer.records)}"
        )
    return report


# ------------------------------------------------------------ fuzz tier ----


def build_fuzz_case(case_seed: int) -> "Any":
    """One random-but-deterministic detection workload from a case seed.

    Mirrors the backend fuzzer's recipe (random topology, transport mix,
    greedy misbehavior kind, error model) with the detection-relevant axes
    emphasized: NAV inflation magnitudes around the validator tolerance,
    spoofers (impersonation events), and optional RTS flooders at varying
    rates (flood events on both sides of the default threshold).  All
    randomness comes from ``random.Random(case_seed)`` at build time; the
    simulation runs from ``Scenario(seed=...)``'s own streams.
    """
    from repro.core.greedy import GreedyConfig
    from repro.mac.frames import FrameKind
    from repro.net.scenario import Scenario

    pick = random.Random(case_seed)
    n_pairs = pick.randint(1, 3)
    rts = pick.random() < 0.8
    s = Scenario(seed=7000 + case_seed, rts_enabled=rts)
    greedy_kind = pick.choice(["none", "nav", "nav", "spoof"])
    for i in range(n_pairs):
        s.add_wireless_node(f"S{i}", position=(pick.uniform(0, 20), pick.uniform(0, 20)))
    for i in range(n_pairs):
        greedy = None
        if i == n_pairs - 1:
            if greedy_kind == "nav":
                frames = frozenset({FrameKind.CTS if rts else FrameKind.ACK})
                greedy = GreedyConfig.nav_inflator(
                    pick.uniform(1.0, 20_000.0), frames
                )
            elif greedy_kind == "spoof" and n_pairs > 1:
                greedy = GreedyConfig.ack_spoofer(victims=frozenset({"R0"}))
        s.add_wireless_node(
            f"R{i}", position=(pick.uniform(0, 20), pick.uniform(0, 20)), greedy=greedy
        )
    for i in range(n_pairs):
        if pick.random() < 0.5:
            src, _ = s.udp_flow(f"S{i}", f"R{i}")
        else:
            src, _ = s.tcp_flow(f"S{i}", f"R{i}")
        src.start()
    if pick.random() < 0.5:
        from repro.faults import FaultPlan, RtsFloodConfig

        s.install_faults(
            FaultPlan(
                rts_flood=RtsFloodConfig(
                    period_us=pick.choice([1_000.0, 4_000.0, 20_000.0]),
                    nav_us=pick.uniform(5_000.0, 30_000.0),
                )
            )
        )
    return s


def diff_fuzz_case(
    case_seed: int, duration_s: float = 0.05, **params: Any
) -> DetectDiffReport:
    """Build, run and trace one fuzz case; diff the detection passes."""
    from repro.stats.trace import FrameTracer

    scenario = build_fuzz_case(case_seed)
    tracer = FrameTracer(scenario.medium)
    scenario.run(duration_s)
    tracer.detach()
    report = diff_trace_records(
        tracer.records,
        target=f"case{case_seed}",
        kind="fuzz",
        phy=scenario.phy,
        **params,
    )
    if not tracer.records:
        report.problems.append(f"fuzz case {case_seed} produced no traffic")
    return report


# ------------------------------------------------------------- the sweep ---


def diff_detection(
    targets: Iterable[str] | None = None,
    golden_dir: str | Path | None = None,
    fuzz_cases: Sequence[int] = QUICK_FUZZ_CASES,
    fuzz_duration_s: float = 0.05,
    progress: Any = None,
    **params: Any,
) -> list[DetectDiffReport]:
    """The full gate: golden traces + live scenarios + the fuzz subset.

    ``targets`` limits the golden/scenario tiers to named targets (a golden
    trace name like ``grc_nav``/``fault_jammer`` or a perf scenario name);
    ``None`` runs every committed golden trace, every perf scenario live,
    and ``fuzz_cases`` fuzzed workloads — the ``repro detect diff`` default.
    """
    from repro.perf.scenarios import SCENARIOS

    say = progress if progress is not None else lambda _m: None
    reports: list[DetectDiffReport] = []
    goldens = golden_trace_paths(golden_dir)
    selected = set(targets) if targets is not None else None

    def wanted(name: str) -> bool:
        return selected is None or name in selected

    for name, path in goldens.items():
        if not wanted(name):
            continue
        if not path.exists():
            report = DetectDiffReport(
                target=name, kind="golden", sources=("offline",),
                problems=[f"missing golden trace {path}"],
            )
        else:
            report = diff_golden_trace(name, path, **params)
        reports.append(report)
        say(report.summary_line())
    for name in SCENARIOS:
        if not wanted(name):
            continue
        report = diff_scenario_live(name, **params)
        reports.append(report)
        say(report.summary_line())
    if selected is None:
        for case_seed in fuzz_cases:
            report = diff_fuzz_case(case_seed, duration_s=fuzz_duration_s, **params)
            reports.append(report)
            say(report.summary_line())
    unknown = (
        selected - set(goldens) - set(SCENARIOS) if selected is not None else set()
    )
    if unknown:
        raise KeyError(
            f"unknown detect diff target(s) {sorted(unknown)}; known: "
            f"{sorted(set(goldens) | set(SCENARIOS))}"
        )
    return reports


__all__ = [
    "QUICK_FUZZ_CASES",
    "REPLAY_CHUNKS",
    "DetectDiffReport",
    "DetectRun",
    "build_fuzz_case",
    "canonical_event_lines",
    "default_golden_dir",
    "diff_detection",
    "diff_fuzz_case",
    "diff_golden_trace",
    "diff_scenario_live",
    "diff_trace_records",
    "golden_trace_paths",
    "run_offline",
    "run_streaming",
    "run_streaming_chunked",
]
