"""Deterministic shard planning: split a campaign grid into N shard manifests.

A :class:`ShardPlan` assigns every expanded grid point to exactly one shard.
The assignment is a pure function of ``(spec_hash, n_shards)``:

1. rank the point ids by ``sha256(spec_hash + ":" + point_id)`` — a stable
   keyed shuffle, so pathological specs (e.g. sorted sweeps whose expensive
   points cluster) still spread evenly;
2. deal the ranked points round-robin over the shards.

Round-robin over the keyed ranking makes the partition *balanced* (shard
sizes differ by at most one) as well as deterministic: every worker — and
every re-dispatch of a dead shard — re-derives the identical assignment from
the spec alone, so the per-shard ``manifest.json`` resume fences of
:func:`repro.campaign.runner.run_campaign` keep working unchanged.  Within a
shard, points stay in global grid order, so a shard manifest is literally a
row-filtered view of the single-host manifest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.campaign.spec import CampaignSpec, expand_grid, point_id, spec_hash


class FleetError(RuntimeError):
    """A fleet run cannot proceed; the message says why."""


def _rank_key(spec_digest: str, pid: str) -> str:
    return hashlib.sha256(f"{spec_digest}:{pid}".encode()).hexdigest()


@dataclass(frozen=True)
class ShardPlan:
    """One deterministic partition of a campaign grid over ``n_shards``."""

    spec_hash: str
    n_shards: int
    #: shard index -> point ids assigned to it, each in global grid order.
    shards: tuple[tuple[str, ...], ...]

    @property
    def n_points(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def shard_of(self, pid: str) -> int:
        """Which shard owns ``pid``; raises KeyError for unknown points."""
        for index, shard in enumerate(self.shards):
            if pid in shard:
                return index
        raise KeyError(f"point {pid!r} is not in this plan")

    def nonempty(self) -> list[int]:
        """Indices of shards that actually own points (N may exceed the grid)."""
        return [index for index, shard in enumerate(self.shards) if shard]


def plan_shards(spec: CampaignSpec, n_shards: int) -> ShardPlan:
    """Partition ``spec``'s expanded grid into ``n_shards`` stable shards."""
    if n_shards < 1:
        raise FleetError(f"n_shards must be >= 1, got {n_shards}")
    ids = [point_id(params) for params in expand_grid(spec)]
    if len(set(ids)) != len(ids):
        raise FleetError(
            f"campaign {spec.name!r} expands to duplicate points; "
            "check the sweep/zip axes for repeated values"
        )
    digest = spec_hash(spec)
    ranked = sorted(ids, key=lambda pid: _rank_key(digest, pid))
    assignment = {pid: rank % n_shards for rank, pid in enumerate(ranked)}
    shards = tuple(
        tuple(pid for pid in ids if assignment[pid] == shard)
        for shard in range(n_shards)
    )
    return ShardPlan(spec_hash=digest, n_shards=n_shards, shards=shards)
