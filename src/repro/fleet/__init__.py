"""repro.fleet: sharded campaign execution with an orchestrator + HTTP API.

The fleet tier turns one campaign into N independently-runnable *shards*:

- :mod:`repro.fleet.plan` deterministically partitions the expanded grid
  (stable point -> shard assignment keyed by the spec hash);
- :mod:`repro.fleet.executor` is the seam that actually runs a shard —
  in-process, as an independent OS subprocess, or (by registering a new
  executor) on a remote host;
- :mod:`repro.fleet.run` is the asyncio orchestrator: dispatch every shard,
  re-dispatch dead ones (the per-shard manifest resume makes that cheap),
  then merge;
- :mod:`repro.fleet.merge` folds shard outputs back into the canonical
  single-host artifacts, byte-identical in metrics fingerprints;
- :mod:`repro.fleet.service` / :mod:`repro.fleet.client` expose the whole
  thing over stdlib HTTP (``repro fleet serve`` / ``repro fleet submit``);
- :mod:`repro.fleet.journal` is the service's crash-safe job journal:
  every job state transition is fsync'd to an append-only checksummed
  JSONL log (with atomic snapshot compaction), so a killed-and-restarted
  service replays its queue and converges byte-identically.

See DESIGN.md §13 for the contracts and shard resume semantics.
"""

from repro.fleet.client import (
    FleetClientError,
    cancel_job,
    fetch_results,
    get_json,
    poll_job,
    submit_job,
    wait_for_job,
)
from repro.fleet.executor import (
    CHAOS_KILL_ENV,
    FleetExecutor,
    LocalExecutor,
    ShardOutcome,
    ShardTask,
    SubprocessExecutor,
    executor_names,
    get_executor,
    register_executor,
)
from repro.fleet.journal import JobJournal, JobRecord, JournalError
from repro.fleet.merge import collect_fleet_telemetry, default_shard_dirs, merge_fleet
from repro.fleet.plan import FleetError, ShardPlan, plan_shards
from repro.fleet.run import (
    FleetRun,
    FleetState,
    ShardState,
    fleet_state_path,
    fleet_status_document,
    load_spec_document,
    run_fleet,
    run_fleet_async,
    run_shard_inprocess,
    shard_dir,
    spec_path,
)
from repro.fleet.service import FleetService, ServiceThread

__all__ = [
    "CHAOS_KILL_ENV",
    "FleetClientError",
    "FleetError",
    "FleetExecutor",
    "FleetRun",
    "FleetService",
    "FleetState",
    "JobJournal",
    "JobRecord",
    "JournalError",
    "LocalExecutor",
    "ServiceThread",
    "ShardOutcome",
    "ShardPlan",
    "ShardState",
    "ShardTask",
    "SubprocessExecutor",
    "cancel_job",
    "collect_fleet_telemetry",
    "default_shard_dirs",
    "executor_names",
    "fetch_results",
    "fleet_state_path",
    "fleet_status_document",
    "get_executor",
    "get_json",
    "load_spec_document",
    "merge_fleet",
    "plan_shards",
    "poll_job",
    "register_executor",
    "run_fleet",
    "run_fleet_async",
    "run_shard_inprocess",
    "shard_dir",
    "spec_path",
    "submit_job",
    "wait_for_job",
]
