"""Asyncio fleet orchestrator: plan shards, dispatch, heal, merge.

:func:`run_fleet_async` is the campaign-level control loop.  It writes the
resolved spec to ``<out>/spec.json`` (the single artifact every worker reads
— workers never parse TOML), derives the deterministic shard plan, drives
one coroutine per shard through the chosen :class:`FleetExecutor`, and
merges the shard outputs into the canonical single-host artifacts.

Fault model — two layers, deliberately separate:

* *Within* a shard, the PR-5 runtime already heals: retries, watchdog
  kills, pool rebuilds, manifest recovery.  The orchestrator never reaches
  inside a shard.
* *Of* a shard (worker process SIGKILLed, host gone), the orchestrator
  re-dispatches the same task up to ``max_shard_attempts`` times.  The
  worker always runs with ``resume=True`` against the same shard directory,
  so a re-dispatch recomputes only what the dead attempt had not finished —
  and because success is judged from the shard's *manifest* (not the
  executor's exit code), a worker killed after completing its last point
  still counts as done.

Fleet state (``<out>/fleet.json``) is only ever mutated on the event-loop
thread; executors run in worker threads via ``asyncio.to_thread`` and
communicate results back as return values, so there is no cross-thread
mutation to race.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.campaign.manifest import DONE, Manifest, ManifestError
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec, spec_from_dict, spec_to_dict, spec_hash
from repro.fleet.executor import FleetExecutor, ShardTask, get_executor
from repro.fleet.merge import merge_fleet
from repro.fleet.plan import FleetError, ShardPlan, plan_shards
from repro.runtime import code_version_token
from repro.runtime.io import atomic_write_text

FLEET_STATE_VERSION = 1

#: Shard lifecycle states recorded in ``fleet.json``.
SHARD_PENDING = "pending"
SHARD_RUNNING = "running"
SHARD_RETRYING = "retrying"
SHARD_DONE = "done"
SHARD_FAILED = "failed"
#: The orchestrator was cancelled (job cancel / service shutdown) while this
#: shard was in flight; its manifest makes a later resume cheap.
SHARD_INTERRUPTED = "interrupted"


def shard_dir(out_dir: str | Path, shard: int) -> Path:
    return Path(out_dir) / "shards" / f"{shard:02d}"


def spec_path(out_dir: str | Path) -> Path:
    return Path(out_dir) / "spec.json"


def fleet_state_path(out_dir: str | Path) -> Path:
    return Path(out_dir) / "fleet.json"


def load_spec_document(path: str | Path) -> CampaignSpec:
    """Load the resolved spec a fleet run shipped to its workers."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise FleetError(f"unreadable fleet spec {path}: {exc}") from None
    return spec_from_dict(document, source=str(path))


def run_shard_inprocess(task: ShardTask) -> int:
    """Worker entry point: run one shard's points; 0 = every point done.

    Always resumes — a fresh shard directory has no manifest and starts
    clean, while a re-dispatched one skips everything the dead attempt
    finished.  This is what ``repro fleet worker`` calls, and what the local
    executor calls directly.
    """
    spec = load_spec_document(task.spec_path)
    plan = plan_shards(spec, task.n_shards)
    if not 0 <= task.shard < task.n_shards:
        raise FleetError(f"shard {task.shard} out of range for n_shards={task.n_shards}")
    run = run_campaign(
        spec,
        out_dir=task.out_dir,
        jobs=task.jobs,
        resume=True,
        cache_dir=task.cache_dir,
        point_ids=frozenset(plan.shards[task.shard]),
    )
    return 0 if run.manifest.complete else 1


# ------------------------------------------------------------ fleet state ---


@dataclass
class ShardState:
    """Orchestrator-side status of one shard."""

    shard: int
    point_ids: list[str]
    status: str = SHARD_PENDING
    attempts: int = 0
    error: str | None = None


@dataclass
class FleetState:
    """Everything ``fleet.json`` records about one fleet run."""

    name: str
    spec_hash: str
    code_version: str
    n_shards: int
    executor: str
    shards: list[ShardState]
    version: int = FLEET_STATE_VERSION
    merged: bool = False

    def save(self, path: str | Path) -> None:
        atomic_write_text(Path(path), json.dumps(asdict(self), indent=2, sort_keys=True))

    @staticmethod
    def load(path: str | Path) -> "FleetState":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise FleetError(f"no fleet state at {path}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise FleetError(f"unreadable fleet state {path}: {exc}") from None
        try:
            if data["version"] != FLEET_STATE_VERSION:
                raise FleetError(
                    f"fleet state {path} has version {data['version']}, "
                    f"this code reads version {FLEET_STATE_VERSION}"
                )
            shards = [ShardState(**shard) for shard in data["shards"]]
            return FleetState(
                name=data["name"],
                spec_hash=data["spec_hash"],
                code_version=data["code_version"],
                n_shards=data["n_shards"],
                executor=data["executor"],
                shards=shards,
                version=data["version"],
                merged=data.get("merged", False),
            )
        except (KeyError, TypeError) as exc:
            raise FleetError(f"malformed fleet state {path}: {exc}") from None


@dataclass
class FleetRun:
    """Summary of one :func:`run_fleet` invocation."""

    ok: bool
    merged: bool
    out_dir: Path
    state: FleetState
    manifest: Manifest | None = None
    error: str | None = None


# ----------------------------------------------------------- orchestrator ---


def _shard_complete(task: ShardTask, planned: tuple[str, ...]) -> bool:
    """Ground truth for shard success: its manifest, not the exit code."""
    try:
        manifest = Manifest.load_or_recover(Path(task.out_dir) / "manifest.json")
    except ManifestError:
        return False
    if {point.id for point in manifest.points} != set(planned):
        return False
    return all(point.status == DONE for point in manifest.points)


async def run_fleet_async(
    spec: CampaignSpec,
    out_dir: str | Path,
    *,
    n_shards: int,
    executor: str = "local",
    jobs: int = 1,
    max_shard_attempts: int = 3,
    max_parallel: int | None = None,
    progress: Callable[[str], None] | None = None,
    executor_obj: FleetExecutor | None = None,
) -> FleetRun:
    """Run a campaign as ``n_shards`` shards; heal dead shards; merge.

    ``max_parallel`` caps concurrently dispatched shards (default: all).
    ``executor_obj`` injects a pre-built executor (tests use this to hook
    worker spawns); otherwise ``executor`` names one from the registry.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    say = progress if progress is not None else lambda _message: None
    digest = spec_hash(spec)
    token = code_version_token()

    # Resume fence at the fleet level, mirroring the campaign one: a stale
    # out dir (different spec or changed code) must not be silently reused.
    spec_file = spec_path(out)
    if spec_file.exists():
        previous = load_spec_document(spec_file)
        if spec_hash(previous) != digest:
            raise FleetError(
                f"fleet out dir {out} holds spec hash {spec_hash(previous)}, "
                f"this run resolves to {digest}; use a fresh --out directory"
            )
    state_file = fleet_state_path(out)
    if state_file.exists():
        previous_state = FleetState.load(state_file)
        if previous_state.code_version != token:
            raise FleetError(
                f"fleet out dir {out} was produced by different simulator "
                "code; completed shards would not be comparable — use a "
                "fresh --out directory"
            )
    atomic_write_text(
        spec_file, json.dumps(spec_to_dict(spec), indent=2, sort_keys=True)
    )

    plan = plan_shards(spec, n_shards)
    exec_obj = executor_obj if executor_obj is not None else get_executor(executor)
    state = FleetState(
        name=spec.name,
        spec_hash=digest,
        code_version=token,
        n_shards=n_shards,
        executor=exec_obj.name,
        shards=[
            ShardState(shard=index, point_ids=list(ids))
            for index, ids in enumerate(plan.shards)
        ],
    )
    state.save(state_file)

    limit = max_parallel if max_parallel is not None else n_shards
    semaphore = asyncio.Semaphore(max(1, limit))

    async def drive(shard: int) -> bool:
        entry = state.shards[shard]
        planned = plan.shards[shard]
        if not planned:  # more shards than points: trivially done
            entry.status = SHARD_DONE
            state.save(state_file)
            return True
        task = ShardTask(
            spec_path=spec_file,
            out_dir=shard_dir(out, shard),
            shard=shard,
            n_shards=n_shards,
            jobs=jobs,
            cache_dir=out / "cache",
        )
        while entry.attempts < max_shard_attempts:
            entry.attempts += 1
            entry.status = SHARD_RUNNING
            state.save(state_file)
            say(f"shard {shard}: attempt {entry.attempts} ({len(planned)} points)")
            async with semaphore:
                outcome = await asyncio.to_thread(exec_obj.run_shard, task)
            # The manifest is the ground truth: a worker killed *after*
            # finishing its last point reports a bad exit code but is done.
            if _shard_complete(task, planned):
                entry.status = SHARD_DONE
                entry.error = None
                state.save(state_file)
                say(f"shard {shard}: complete")
                return True
            entry.error = outcome.error or f"exit code {outcome.returncode}"
            if entry.attempts < max_shard_attempts:
                entry.status = SHARD_RETRYING
                say(f"shard {shard}: died ({entry.error}); re-dispatching")
            else:
                entry.status = SHARD_FAILED
                say(f"shard {shard}: FAILED after {entry.attempts} attempts")
            state.save(state_file)
        return False

    try:
        results = await asyncio.gather(*(drive(shard) for shard in range(n_shards)))
    except asyncio.CancelledError:
        # The surrounding task was cancelled (job cancel, service shutdown).
        # Kill live shard workers so nothing keeps mutating the out dir, and
        # record the interruption — every touched shard resumes from its own
        # manifest on the next dispatch, so cancellation loses no work.
        exec_obj.cancel()
        for entry in state.shards:
            if entry.status in (SHARD_RUNNING, SHARD_RETRYING):
                entry.status = SHARD_INTERRUPTED
                entry.error = "interrupted by cancellation"
        state.save(state_file)
        say("fleet run cancelled; live shard workers stopped")
        raise

    if all(results):
        manifest = await asyncio.to_thread(merge_fleet, spec, out)
        state.merged = True
        state.save(state_file)
        say(f"merged {n_shards} shards: {manifest.count(DONE)}/{manifest.total} points")
        return FleetRun(ok=True, merged=True, out_dir=out, state=state, manifest=manifest)

    failed = [entry.shard for entry in state.shards if entry.status == SHARD_FAILED]
    error = f"shard(s) {failed} failed after {max_shard_attempts} attempts"
    say(error)
    return FleetRun(ok=False, merged=False, out_dir=out, state=state, error=error)


def run_fleet(
    spec: CampaignSpec,
    out_dir: str | Path,
    *,
    n_shards: int,
    executor: str = "local",
    jobs: int = 1,
    max_shard_attempts: int = 3,
    max_parallel: int | None = None,
    progress: Callable[[str], None] | None = None,
    executor_obj: FleetExecutor | None = None,
) -> FleetRun:
    """Synchronous wrapper around :func:`run_fleet_async`."""
    return asyncio.run(
        run_fleet_async(
            spec,
            out_dir,
            n_shards=n_shards,
            executor=executor,
            jobs=jobs,
            max_shard_attempts=max_shard_attempts,
            max_parallel=max_parallel,
            progress=progress,
            executor_obj=executor_obj,
        )
    )


# ---------------------------------------------------------------- status ----


def fleet_status_document(out_dir: str | Path) -> dict[str, Any]:
    """Machine-readable fleet status (``repro fleet status --json``).

    Combines ``fleet.json`` with live per-shard progress read from each
    shard's own campaign manifest, plus whether the merged artifacts exist.
    """
    out = Path(out_dir)
    state = FleetState.load(fleet_state_path(out))
    shards: list[dict[str, Any]] = []
    for entry in state.shards:
        doc: dict[str, Any] = {
            "shard": entry.shard,
            "status": entry.status,
            "attempts": entry.attempts,
            "points": len(entry.point_ids),
            "error": entry.error,
            "done": 0,
            "failed": 0,
            "retries": 0,
        }
        try:
            manifest = Manifest.load_or_recover(shard_dir(out, entry.shard) / "manifest.json")
        except ManifestError:
            manifest = None
        if manifest is not None:
            doc["done"] = manifest.count(DONE)
            doc["failed"] = manifest.count("failed")
            doc["retries"] = sum(point.retries for point in manifest.points)
        shards.append(doc)
    merged_manifest = None
    if state.merged:
        try:
            merged_manifest = Manifest.load_or_recover(out / "manifest.json")
        except ManifestError:
            pass
    return {
        "name": state.name,
        "spec_hash": state.spec_hash,
        "code_version": state.code_version,
        "n_shards": state.n_shards,
        "executor": state.executor,
        "merged": state.merged,
        "complete": bool(merged_manifest is not None and merged_manifest.complete),
        "total": sum(len(entry.point_ids) for entry in state.shards),
        "done": sum(doc["done"] for doc in shards),
        "shards": shards,
    }
