"""Tiny urllib client for the fleet HTTP API (submit / poll / fetch / cancel).

Used by ``repro fleet submit`` and the service tests; deliberately dumb —
one function per API verb, JSON in, JSON (or CSV text) out, errors surfaced
as :class:`FleetClientError` with the server's message attached.

Transient failures are retried with the same deterministic jittered backoff
the campaign runner uses (:class:`repro.runtime.RetryPolicy`, re-exported as
``repro.faults.RetryPolicy``):

- connection refused / reset / remote hangup — the service is restarting or
  not up yet; the request never reached a handler, so a retry is safe for
  every verb;
- HTTP 429 (admission queue full) and 503 (draining for shutdown) — the
  server explicitly asked for a retry; ``Retry-After`` is honored as a
  *floor* under the backoff delay.

Any other HTTP error is a real answer and raises immediately.  Pass
``retry=None`` to observe the first failure (the queue-bound tests do).
:func:`wait_for_job` stacks a polling deadline on top, so a waiter survives
a service restart window longer than one request's retry budget.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Any

from repro.runtime import RetryPolicy

#: Job states after which polling stops.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: HTTP statuses that are an explicit "try again later" from the service.
RETRYABLE_STATUS = frozenset({429, 503})

#: Default request-level policy: ~5 quick attempts spanning a couple of
#: seconds — enough to ride out a service restart's bind window without
#: turning a genuinely-down service into a long hang.
DEFAULT_RETRY = RetryPolicy(
    max_attempts=5, backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=2.0
)


class FleetClientError(RuntimeError):
    """An HTTP call to the fleet service failed; the message says why."""

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


def _retry_after_s(exc: urllib.error.HTTPError) -> float:
    try:
        return float(exc.headers.get("Retry-After", "0"))
    except (TypeError, ValueError):
        return 0.0


def _request(
    url: str,
    data: bytes | None = None,
    timeout_s: float = 30.0,
    method: str | None = None,
    retry: RetryPolicy | None = DEFAULT_RETRY,
) -> str:
    """One HTTP exchange with transient-failure retries; returns the body."""
    verb = method if method is not None else ("POST" if data is not None else "GET")
    try:
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"} if data is not None else {},
            method=verb,
        )
    except ValueError as exc:  # e.g. a --url missing the http:// scheme
        raise FleetClientError(f"bad service URL {url!r}: {exc}") from None
    attempts = retry.max_attempts if retry is not None else 1
    attempt = 0
    while True:
        attempt += 1
        try:
            with urllib.request.urlopen(request, timeout=timeout_s) as response:
                return response.read().decode()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace").strip()
            try:
                detail = json.loads(detail).get("error", detail)
            except (json.JSONDecodeError, AttributeError):
                pass
            if exc.code in RETRYABLE_STATUS and attempt < attempts:
                assert retry is not None
                delay = max(
                    retry.backoff_s(attempt, key=url), _retry_after_s(exc)
                )
                time.sleep(delay)
                continue
            raise FleetClientError(
                f"{url}: HTTP {exc.code}: {detail}", status=exc.code
            ) from None
        except (
            urllib.error.URLError,
            ConnectionError,
            http.client.HTTPException,
            TimeoutError,
        ) as exc:
            reason = getattr(exc, "reason", exc)
            # GET/DELETE are idempotent and retry on any connection-level
            # failure.  A POST is only retried when the connection was
            # *refused* — nothing was listening, so the submit cannot have
            # been journaled; a reset mid-exchange is ambiguous (the job may
            # already be admitted) and must surface to the caller instead of
            # risking a double submit.
            refused = isinstance(reason, ConnectionRefusedError) or isinstance(
                exc, ConnectionRefusedError
            )
            if attempt < attempts and (verb != "POST" or refused):
                assert retry is not None
                time.sleep(retry.backoff_s(attempt, key=url))
                continue
            raise FleetClientError(f"{url}: {reason}") from None


def get_json(
    base_url: str,
    path: str,
    timeout_s: float = 30.0,
    retry: RetryPolicy | None = DEFAULT_RETRY,
) -> Any:
    return json.loads(
        _request(base_url.rstrip("/") + path, timeout_s=timeout_s, retry=retry)
    )


def submit_job(
    base_url: str,
    document: dict[str, Any],
    timeout_s: float = 30.0,
    retry: RetryPolicy | None = DEFAULT_RETRY,
) -> str:
    """POST a submit body; returns the new job id.

    A 429 (queue full) is retried under ``retry`` honoring ``Retry-After``;
    once the POST has been accepted the job id is durable server-side (the
    journal fsyncs before the 202), so the caller never double-submits by
    retrying a *rejected* request.
    """
    body = json.dumps(document).encode()
    reply = json.loads(
        _request(
            base_url.rstrip("/") + "/jobs", data=body, timeout_s=timeout_s, retry=retry
        )
    )
    return reply["job"]


def cancel_job(
    base_url: str,
    job_id: str,
    timeout_s: float = 30.0,
    retry: RetryPolicy | None = DEFAULT_RETRY,
) -> dict[str, Any]:
    """``DELETE /jobs/<id>``; returns the server's ``{"job", "status"}``."""
    return json.loads(
        _request(
            base_url.rstrip("/") + f"/jobs/{job_id}",
            timeout_s=timeout_s,
            method="DELETE",
            retry=retry,
        )
    )


def wait_for_job(
    base_url: str,
    job_id: str,
    timeout_s: float = 300.0,
    poll_s: float = 0.2,
) -> dict[str, Any]:
    """Poll ``GET /jobs/<id>`` until the job reaches a terminal state.

    Survives a service restart window: connection-level failures inside the
    deadline are treated as "the service is coming back" and polling simply
    continues — after a crash-restart the journal has the job again before
    the port answers, so the first successful poll picks up where the dead
    service left off.  A 404 is *not* forgiven: the journal fsyncs at
    admission, so an unknown id means the job really never existed.
    """
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            status = get_json(base_url, f"/jobs/{job_id}")
        except FleetClientError as exc:
            if exc.status is not None:
                raise  # a real HTTP answer (404, 500, ...) — not a blip
            if time.monotonic() >= deadline:
                raise FleetClientError(
                    f"job {job_id}: service unreachable through the "
                    f"{timeout_s:.0f}s deadline ({exc})"
                ) from None
            time.sleep(poll_s)
            continue
        if status["status"] in TERMINAL_STATES:
            return status
        if time.monotonic() >= deadline:
            raise FleetClientError(
                f"job {job_id} still {status['status']} after {timeout_s:.0f}s"
            )
        time.sleep(poll_s)


def poll_job(
    base_url: str,
    job_id: str,
    timeout_s: float = 300.0,
    poll_s: float = 0.2,
) -> dict[str, Any]:
    """Backward-compatible alias for :func:`wait_for_job`."""
    return wait_for_job(base_url, job_id, timeout_s=timeout_s, poll_s=poll_s)


def fetch_results(base_url: str, job_id: str, timeout_s: float = 30.0) -> str:
    """The merged results.csv text of a finished job."""
    return _request(
        base_url.rstrip("/") + f"/jobs/{job_id}/results.csv", timeout_s=timeout_s
    )
