"""Tiny urllib client for the fleet HTTP API (submit / poll / fetch).

Used by ``repro fleet submit`` and the service tests; deliberately dumb —
one function per API verb, JSON in, JSON (or CSV text) out, errors surfaced
as :class:`FleetClientError` with the server's message attached.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any


class FleetClientError(RuntimeError):
    """An HTTP call to the fleet service failed; the message says why."""


def _request(url: str, data: bytes | None = None, timeout_s: float = 30.0) -> str:
    try:
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"} if data is not None else {},
            method="POST" if data is not None else "GET",
        )
    except ValueError as exc:  # e.g. a --url missing the http:// scheme
        raise FleetClientError(f"bad service URL {url!r}: {exc}") from None
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return response.read().decode()
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode(errors="replace").strip()
        try:
            detail = json.loads(detail).get("error", detail)
        except (json.JSONDecodeError, AttributeError):
            pass
        raise FleetClientError(f"{url}: HTTP {exc.code}: {detail}") from None
    except urllib.error.URLError as exc:
        raise FleetClientError(f"{url}: {exc.reason}") from None


def get_json(base_url: str, path: str, timeout_s: float = 30.0) -> Any:
    return json.loads(_request(base_url.rstrip("/") + path, timeout_s=timeout_s))


def submit_job(base_url: str, document: dict[str, Any], timeout_s: float = 30.0) -> str:
    """POST a submit body; returns the new job id."""
    body = json.dumps(document).encode()
    reply = json.loads(_request(base_url.rstrip("/") + "/jobs", data=body, timeout_s=timeout_s))
    return reply["job"]


def poll_job(
    base_url: str,
    job_id: str,
    timeout_s: float = 300.0,
    poll_s: float = 0.2,
) -> dict[str, Any]:
    """Poll ``GET /jobs/<id>`` until the job leaves ``running``."""
    deadline = time.monotonic() + timeout_s
    while True:
        status = get_json(base_url, f"/jobs/{job_id}")
        if status["status"] != "running":
            return status
        if time.monotonic() >= deadline:
            raise FleetClientError(
                f"job {job_id} still running after {timeout_s:.0f}s"
            )
        time.sleep(poll_s)


def fetch_results(base_url: str, job_id: str, timeout_s: float = 30.0) -> str:
    """The merged results.csv text of a finished job."""
    return _request(
        base_url.rstrip("/") + f"/jobs/{job_id}/results.csv", timeout_s=timeout_s
    )
