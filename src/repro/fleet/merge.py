"""Merge step: fold shard campaign directories back into one canonical run.

Each shard worker produced a row-filtered campaign directory (a manifest
whose points keep their *global* grid indices, plus ``points/<id>.json``
payloads).  :func:`merge_fleet` stitches those back into the fleet root's
own ``manifest.json`` / ``points/`` / ``results.csv`` / ``results.json`` —
byte-identical in metrics fingerprints to a single-host
``repro campaign run`` of the same spec, because the payload files are
copied verbatim and the reporting layer is the exact same
:func:`repro.campaign.runner.write_reports`.

The merge is idempotent and order-independent by construction: every point
slots into its global grid position, duplicate ownership is an error rather
than a last-writer-wins race, and a partial merge (some shards dead) leaves
the missing points pending so "merge the survivors" still writes reports.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.campaign.manifest import DONE, PENDING, RUNNING, Manifest, PointState
from repro.campaign.runner import point_path, write_reports
from repro.campaign.spec import CampaignSpec, expand_grid, point_id, spec_hash
from repro.fleet.plan import FleetError
from repro.runtime.io import atomic_write_text


def default_shard_dirs(out_dir: str | Path) -> list[Path]:
    """The fleet root's shard directories, in shard-index order."""
    shards_root = Path(out_dir) / "shards"
    if not shards_root.is_dir():
        return []
    return sorted(path for path in shards_root.iterdir() if path.is_dir())


def merge_fleet(
    spec: CampaignSpec,
    out_dir: str | Path,
    shard_dirs: Iterable[str | Path] | None = None,
) -> Manifest:
    """Merge shard results under ``out_dir`` into the canonical artifacts.

    Reads each shard's manifest (via ``load_or_recover`` — a shard killed
    mid-save still merges), validates it against ``spec``, copies the done
    points' payloads into ``<out>/points/`` and writes the merged
    ``manifest.json`` plus ``results.csv`` / ``results.json``.  Points no
    surviving shard completed stay ``pending`` in the merged manifest, so
    ``complete`` honestly reports whether the fleet covered the whole grid.
    """
    out = Path(out_dir)
    expected: dict[str, tuple[int, dict[str, Any]]] = {
        point_id(params): (index, dict(params))
        for index, params in enumerate(expand_grid(spec))
    }
    digest = spec_hash(spec)

    dirs = (
        [Path(d) for d in shard_dirs]
        if shard_dirs is not None
        else default_shard_dirs(out)
    )
    merged: dict[str, PointState] = {}
    code_versions: set[str] = set()
    telemetry = False
    faults: dict[str, Any] = {}
    for shard_dir in dirs:
        manifest = Manifest.load_or_recover(shard_dir / "manifest.json")
        if manifest.spec_hash != digest:
            raise FleetError(
                f"shard {shard_dir} was run for spec hash {manifest.spec_hash}, "
                f"this merge expects {digest}; the fleet out dir is stale"
            )
        code_versions.add(manifest.code_version)
        telemetry = telemetry or manifest.telemetry
        for key, value in manifest.faults.items():
            if isinstance(value, bool):
                faults[key] = bool(faults.get(key, False)) or value
            elif isinstance(value, (int, float)):
                faults[key] = faults.get(key, 0) + value
            else:
                faults[key] = value
        for point in manifest.points:
            if point.id not in expected:
                raise FleetError(
                    f"shard {shard_dir} contains point {point.id} that is not "
                    "in the expanded grid; spec and shard outputs are out of sync"
                )
            if point.id in merged:
                raise FleetError(
                    f"point {point.id} appears in more than one shard manifest; "
                    "the shard plan the workers used does not partition the grid"
                )
            if point.status == DONE:
                source = point_path(shard_dir, point)
                atomic_write_text(point_path(out, point), source.read_text())
            elif point.status == RUNNING:
                # A shard manifest snapshotted mid-point (worker killed with
                # the point in flight): in the merged view that point simply
                # was not computed.  Normalize so a survivors-merge reports
                # pending, not a liveness state no process backs anymore.
                point = PointState(
                    id=point.id,
                    index=point.index,
                    params=point.params,
                    status=PENDING,
                    retries=point.retries,
                    last_failure=point.last_failure,
                )
            merged[point.id] = point
    if len(code_versions) > 1:
        raise FleetError(
            f"shards were run under {len(code_versions)} different code "
            f"versions ({sorted(code_versions)}); results are not comparable — "
            "rerun the fleet from a fresh out dir"
        )

    # Points no shard covered (dead shard merged as "survivors") stay pending.
    points = [
        merged.get(pid, PointState(id=pid, index=index, params=params))
        for pid, (index, params) in expected.items()
    ]
    points.sort(key=lambda point: point.index)
    faults["merged_shards"] = len(dirs)
    manifest = Manifest(
        name=spec.name,
        builder=spec.builder,
        spec_hash=digest,
        code_version=next(iter(code_versions)) if code_versions else "",
        seeds=list(spec.seeds),
        duration_s=spec.duration_s,
        points=points,
        telemetry=telemetry,
        faults=faults,
    )
    manifest.save(out / "manifest.json")
    write_reports(out, manifest)
    return manifest


def collect_fleet_telemetry(out_dir: str | Path):
    """Aggregate per-point telemetry snapshots of a merged fleet run.

    Returns a single merged :class:`repro.obs.TelemetrySnapshot`, or None if
    the run captured no telemetry.  Reads the *merged* points directory, so
    call after :func:`merge_fleet`.
    """
    from repro.obs import TelemetrySnapshot, merge_snapshots

    out = Path(out_dir)
    manifest = Manifest.load_or_recover(out / "manifest.json")
    snapshots = []
    for point in manifest.points:
        if point.status != DONE:
            continue
        payload = json.loads(point_path(out, point).read_text())
        raw = payload.get("telemetry")
        if raw:
            snapshots.append(TelemetrySnapshot.from_dict(raw))
    if not snapshots:
        return None
    return merge_snapshots(snapshots)
