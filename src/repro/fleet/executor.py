"""Executor seam: how a planned shard actually gets run.

A :class:`FleetExecutor` turns one :class:`ShardTask` (spec file + out dir +
shard index) into a finished shard campaign directory and reports a
:class:`ShardOutcome`.  The orchestrator never cares *where* the shard ran —
it re-checks the shard's own ``manifest.json`` afterwards, so an executor
that lies about success is caught, and one that dies mid-run is healed by a
re-dispatch (the shard worker always resumes).

Two executors ship in-tree:

- ``local``  — runs the shard in-process (same interpreter, no isolation);
  the reference implementation and the fast path for tests.
- ``subprocess`` — launches ``python -m repro fleet worker ...`` as an
  independent OS process per shard, logging to ``<shard>/worker.log``.

The registry (:func:`register_executor` / :func:`get_executor`) is the
contract a future SSH/remote executor plugs into: implement ``run_shard``,
ship the spec file and collect the shard directory however you like, and
register under a new name.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.fleet.plan import FleetError


@dataclass(frozen=True)
class ShardTask:
    """Everything a worker needs to run one shard of a fleet campaign."""

    spec_path: Path
    out_dir: Path
    shard: int
    n_shards: int
    jobs: int = 1
    cache_dir: Path | None = None


@dataclass(frozen=True)
class ShardOutcome:
    """What an executor observed; ground truth stays the shard manifest."""

    shard: int
    returncode: int
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.returncode == 0


class FleetExecutor:
    """Base class: run one shard to completion (or failure) and report."""

    name = "abstract"

    def run_shard(self, task: ShardTask) -> ShardOutcome:  # pragma: no cover
        raise NotImplementedError

    def cancel(self) -> None:
        """Stop every shard this executor currently has in flight.

        Called by the orchestrator when its task is cancelled (job cancel,
        service shutdown).  Best-effort: the base class cannot interrupt
        anything and does nothing; the subprocess executor kills its worker
        processes, whose atomic manifests make the interruption resumable.
        """


_EXECUTORS: dict[str, type[FleetExecutor]] = {}


def register_executor(name: str) -> Callable[[type[FleetExecutor]], type[FleetExecutor]]:
    """Class decorator adding an executor to the registry under ``name``."""

    def wrap(cls: type[FleetExecutor]) -> type[FleetExecutor]:
        cls.name = name
        _EXECUTORS[name] = cls
        return cls

    return wrap


def executor_names() -> list[str]:
    return sorted(_EXECUTORS)


def get_executor(name: str, **options: object) -> FleetExecutor:
    try:
        cls = _EXECUTORS[name]
    except KeyError:
        known = ", ".join(executor_names())
        raise FleetError(f"unknown executor {name!r} (known: {known})") from None
    return cls(**options)  # type: ignore[call-arg]


@register_executor("local")
class LocalExecutor(FleetExecutor):
    """Run the shard in this process — no isolation, no spawn cost."""

    def run_shard(self, task: ShardTask) -> ShardOutcome:
        from repro.fleet.run import run_shard_inprocess

        try:
            code = run_shard_inprocess(task)
        except Exception as exc:  # noqa: BLE001 - executor boundary
            return ShardOutcome(task.shard, returncode=1, error=f"{type(exc).__name__}: {exc}")
        return ShardOutcome(task.shard, returncode=code)


#: Environment variable naming one shard index; the subprocess executor kills
#: that shard's worker after its first point completes (exactly once per out
#: dir).  CI's fleet-smoke job uses it to prove campaign-level healing.
CHAOS_KILL_ENV = "REPRO_FLEET_CHAOS_KILL"


def _chaos_watch(task: ShardTask, proc: subprocess.Popen) -> None:
    """Kill ``proc`` once its shard manifest shows a first DONE point."""
    import time

    from repro.campaign.manifest import DONE, Manifest, ManifestError

    marker = task.out_dir / ".chaos-killed"
    manifest_path = task.out_dir / "manifest.json"
    while proc.poll() is None:
        try:
            manifest = Manifest.load(manifest_path)
        except (ManifestError, OSError):
            time.sleep(0.02)
            continue
        if any(point.status == DONE for point in manifest.points):
            try:
                marker.write_text("killed after first DONE point\n")
            finally:
                proc.kill()
            return
        time.sleep(0.02)


@register_executor("subprocess")
class SubprocessExecutor(FleetExecutor):
    """One independent OS process per shard: ``python -m repro fleet worker``.

    ``on_spawn(task, proc)`` (if given) is called right after the process
    starts — the hook tests use to kill a worker mid-run.
    """

    def __init__(self, on_spawn: Callable[[ShardTask, subprocess.Popen], None] | None = None) -> None:
        self.on_spawn = on_spawn
        self._procs: set[subprocess.Popen] = set()
        self._procs_lock = threading.Lock()

    def cancel(self) -> None:
        with self._procs_lock:
            live = list(self._procs)
        for proc in live:
            if proc.poll() is None:
                proc.kill()

    def run_shard(self, task: ShardTask) -> ShardOutcome:
        import repro

        cmd = [
            sys.executable,
            "-m",
            "repro",
            "fleet",
            "worker",
            "--spec",
            str(task.spec_path),
            "--out",
            str(task.out_dir),
            "--shard",
            str(task.shard),
            "--n-shards",
            str(task.n_shards),
            "--jobs",
            str(task.jobs),
        ]
        if task.cache_dir is not None:
            cmd += ["--cache-dir", str(task.cache_dir)]
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        task.out_dir.mkdir(parents=True, exist_ok=True)
        log_path = task.out_dir / "worker.log"
        with log_path.open("a") as log:
            proc = subprocess.Popen(cmd, stdout=log, stderr=subprocess.STDOUT, env=env)
            with self._procs_lock:
                self._procs.add(proc)
            chaos = (
                os.environ.get(CHAOS_KILL_ENV) == str(task.shard)
                and not (task.out_dir / ".chaos-killed").exists()
            )
            if chaos:
                watcher = threading.Thread(
                    target=_chaos_watch, args=(task, proc), daemon=True
                )
                watcher.start()
            if self.on_spawn is not None:
                self.on_spawn(task, proc)
            try:
                code = proc.wait()
            finally:
                with self._procs_lock:
                    self._procs.discard(proc)
        if code != 0:
            tail = "".join(log_path.read_text().splitlines(keepends=True)[-8:]).strip()
            return ShardOutcome(task.shard, returncode=code, error=tail or f"exit {code}")
        return ShardOutcome(task.shard, returncode=0)
