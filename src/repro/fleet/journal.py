"""Crash-safe job journal for the fleet service.

The service's job table used to live only in process memory: a crashed
``repro fleet serve`` forgot every job it had accepted, even though the
artifacts on disk were intact.  This module is the write-ahead log that
fixes that — every job state transition is appended to
``<root>/journal/journal.jsonl`` *before* the in-memory state changes, so
a SIGKILLed service can replay the journal on restart and pick up exactly
where it died.

Format — one JSON object per line::

    {"v": 1, "seq": 17, "job": "0003-fig1_nav_udp", "event": "running",
     "data": {...}, "sha256": "<hex>"}

- ``seq`` is a strictly increasing sequence number across the whole
  journal (it survives compaction), so replays are totally ordered and a
  snapshot knows exactly which tail of the journal it supersedes.
- ``sha256`` is the checksum of the record *without* the checksum field,
  canonically serialized (sorted keys, compact separators).  A torn final
  line (the only kind of tear an fsync'd append can produce) fails either
  the JSON parse or the checksum and is dropped; nothing after the first
  bad line is trusted, because an append-only file corrupted mid-stream
  means the storage lied and the suffix has no integrity guarantee.
- Appends go through :func:`repro.runtime.io.durable_append_line`
  (write + fsync, directory fsync on creation).

Compaction: once ``compact_every`` lines accumulate, the current job
table is written to ``snapshot.json`` with the atomic fsync'd writer
(previous snapshot rotated to ``.bak``), and the journal file is
atomically replaced with an empty one.  Replay = snapshot + journal lines
with ``seq`` greater than the snapshot's ``last_seq``; a crash *between*
snapshot and truncate merely replays a few already-applied lines, which
is idempotent because events carry absolute states, not deltas.

Job lifecycle recorded here (DESIGN.md §13)::

    submitted -> queued -> running -> merged | failed
                      \\-> cancelled          (DELETE /jobs/<id>)
    running   -> interrupted -> queued        (crash/shutdown, then replay)
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.runtime.io import atomic_write_text, durable_append_line

JOURNAL_VERSION = 1

#: Job lifecycle events, in the order a healthy job passes through them.
SUBMITTED = "submitted"
QUEUED = "queued"
RUNNING = "running"
MERGED = "merged"
FAILED = "failed"
CANCELLED = "cancelled"
INTERRUPTED = "interrupted"

#: Events after which a job never changes again.
TERMINAL_EVENTS = frozenset({MERGED, FAILED, CANCELLED})

_SNAPSHOT_BACKUP = ".bak"


class JournalError(ValueError):
    """The journal directory holds something this code cannot read."""


def _checksum(record: dict[str, Any]) -> str:
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class JobRecord:
    """Everything the journal knows about one job (the replayed state)."""

    job: str
    spec: dict[str, Any] | None = None
    spec_hash: str = ""
    code_version: str = ""
    priority: int = 0
    n_shards: int = 2
    jobs: int = 1
    quick: bool = False
    status: str = SUBMITTED
    error: str | None = None
    #: Sequence number of the ``submitted`` event — admission (FIFO) order.
    submitted_seq: int = 0
    #: Sequence number of the most recently applied event.
    seq: int = 0
    #: Per-shard dispatch attempt counts captured at the last transition
    #: that knew them (terminal and interrupted events).
    shard_attempts: dict[str, int] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_EVENTS

    def apply(self, event: str, seq: int, data: dict[str, Any]) -> None:
        """Fold one journal event into this record (idempotent per seq)."""
        if seq <= self.seq:
            return  # a compaction race replayed an already-applied line
        self.seq = seq
        if event == SUBMITTED:
            self.submitted_seq = seq
            self.spec = data.get("spec")
            self.spec_hash = data.get("spec_hash", "")
            self.code_version = data.get("code_version", "")
            self.priority = int(data.get("priority", 0))
            self.n_shards = int(data.get("n_shards", 2))
            self.jobs = int(data.get("jobs", 1))
            self.quick = bool(data.get("quick", False))
            self.status = SUBMITTED
        elif event in (QUEUED, RUNNING, MERGED, CANCELLED, INTERRUPTED, FAILED):
            self.status = event
            if event == FAILED:
                self.error = str(data.get("error", "unknown failure"))
            if "shard_attempts" in data:
                self.shard_attempts = {
                    str(key): int(value)
                    for key, value in data["shard_attempts"].items()
                }
        # Unknown events are ignored (forward compatibility: an old service
        # replaying a newer journal keeps every transition it understands).

    def to_dict(self) -> dict[str, Any]:
        return {
            "job": self.job,
            "spec": self.spec,
            "spec_hash": self.spec_hash,
            "code_version": self.code_version,
            "priority": self.priority,
            "n_shards": self.n_shards,
            "jobs": self.jobs,
            "quick": self.quick,
            "status": self.status,
            "error": self.error,
            "submitted_seq": self.submitted_seq,
            "seq": self.seq,
            "shard_attempts": dict(self.shard_attempts),
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "JobRecord":
        try:
            return JobRecord(
                job=data["job"],
                spec=data.get("spec"),
                spec_hash=data.get("spec_hash", ""),
                code_version=data.get("code_version", ""),
                priority=int(data.get("priority", 0)),
                n_shards=int(data.get("n_shards", 2)),
                jobs=int(data.get("jobs", 1)),
                quick=bool(data.get("quick", False)),
                status=data.get("status", SUBMITTED),
                error=data.get("error"),
                submitted_seq=int(data.get("submitted_seq", 0)),
                seq=int(data.get("seq", 0)),
                shard_attempts={
                    str(key): int(value)
                    for key, value in data.get("shard_attempts", {}).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"malformed snapshot job record: {exc}") from None


class JobJournal:
    """Append-only fsync'd job journal with atomic snapshot compaction."""

    def __init__(self, root: str | Path, *, compact_every: int = 256) -> None:
        if compact_every < 1:
            raise ValueError(f"compact_every must be >= 1, got {compact_every}")
        self.dir = Path(root) / "journal"
        self.path = self.dir / "journal.jsonl"
        self.snapshot_path = self.dir / "snapshot.json"
        self.compact_every = compact_every
        self._seq = 0
        self._lines_since_snapshot = 0

    # ------------------------------------------------------------- writes --

    def append(self, job_id: str, event: str, **data: Any) -> int:
        """Durably append one state transition; returns its sequence number.

        The fsync completes before this returns, so a caller that mutates
        in-memory state *after* appending can never be ahead of the log.
        """
        self._seq += 1
        record: dict[str, Any] = {
            "v": JOURNAL_VERSION,
            "seq": self._seq,
            "job": job_id,
            "event": event,
        }
        if data:
            record["data"] = data
        record["sha256"] = _checksum(record)
        durable_append_line(
            self.path, json.dumps(record, sort_keys=True, separators=(",", ":"))
        )
        self._lines_since_snapshot += 1
        return self._seq

    def compact(self, jobs: dict[str, JobRecord]) -> None:
        """Write an atomic snapshot of ``jobs`` and truncate the journal.

        Crash-safe at every instant: the snapshot lands via the fsync'd
        atomic writer (old snapshot rotated to ``.bak``) *before* the
        journal is emptied, and a crash between the two steps only causes
        a few idempotent re-applies on the next replay.
        """
        snapshot = {
            "v": JOURNAL_VERSION,
            "last_seq": self._seq,
            "jobs": {job_id: record.to_dict() for job_id, record in jobs.items()},
        }
        atomic_write_text(
            self.snapshot_path,
            json.dumps(snapshot, indent=2, sort_keys=True),
            backup_suffix=_SNAPSHOT_BACKUP,
        )
        atomic_write_text(self.path, "")
        self._lines_since_snapshot = 0

    def maybe_compact(self, jobs: dict[str, JobRecord]) -> bool:
        """Compact when the journal has grown past ``compact_every`` lines."""
        if self._lines_since_snapshot >= self.compact_every:
            self.compact(jobs)
            return True
        return False

    # -------------------------------------------------------------- reads --

    @property
    def seq(self) -> int:
        """Sequence number of the most recent append (0 = empty journal)."""
        return self._seq

    @property
    def lag(self) -> int:
        """Journal lines accumulated since the last snapshot (operator metric:
        how much replay work a restart right now would have to do)."""
        return self._lines_since_snapshot

    def _load_snapshot(self) -> tuple[int, dict[str, JobRecord]]:
        for candidate in (
            self.snapshot_path,
            Path(str(self.snapshot_path) + _SNAPSHOT_BACKUP),
        ):
            try:
                data = json.loads(candidate.read_text())
            except FileNotFoundError:
                continue
            except (OSError, json.JSONDecodeError) as exc:
                warnings.warn(
                    f"fleet journal snapshot {candidate} unreadable ({exc}); "
                    "trying the previous snapshot",
                    RuntimeWarning,
                    stacklevel=3,
                )
                continue
            try:
                if data["v"] != JOURNAL_VERSION:
                    raise JournalError(
                        f"journal snapshot {candidate} has version {data['v']}, "
                        f"this code reads version {JOURNAL_VERSION}"
                    )
                jobs = {
                    job_id: JobRecord.from_dict(record)
                    for job_id, record in data["jobs"].items()
                }
                return int(data["last_seq"]), jobs
            except (KeyError, TypeError) as exc:
                raise JournalError(f"malformed journal snapshot {candidate}: {exc}") from None
        return 0, {}

    def replay(self) -> dict[str, JobRecord]:
        """Rebuild the job table: snapshot + every valid journal line after it.

        Replay stops at the first line that fails to parse or checksum.  If
        that line is the *last* one it is the expected torn tail of a killed
        append and is dropped silently; anything earlier means the file was
        corrupted in place, which is surfaced as a warning (the valid prefix
        is still recovered — losing the suffix beats refusing to start).
        """
        last_seq, jobs = self._load_snapshot()
        self._seq = max(self._seq, last_seq)
        self._lines_since_snapshot = 0
        try:
            lines = self.path.read_text().splitlines()
        except FileNotFoundError:
            lines = []
        except OSError as exc:
            raise JournalError(f"unreadable journal {self.path}: {exc}") from None
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            bad: str | None = None
            record: dict[str, Any] = {}
            try:
                record = json.loads(line)
                stated = record.pop("sha256", None)
                if stated != _checksum(record):
                    bad = "checksum mismatch"
            except json.JSONDecodeError as exc:
                bad = f"not valid JSON ({exc})"
            if bad is not None:
                if number != len(lines) - 1:
                    warnings.warn(
                        f"fleet journal {self.path} line {number + 1}: {bad}; "
                        f"dropping this line and the {len(lines) - number - 1} "
                        "after it (append-only integrity ends at the first "
                        "bad record)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                break
            seq = int(record.get("seq", 0))
            job_id = str(record.get("job", ""))
            event = str(record.get("event", ""))
            data = record.get("data") or {}
            if seq <= last_seq:
                continue  # snapshot already covers this line
            job = jobs.get(job_id)
            if job is None:
                job = jobs[job_id] = JobRecord(job=job_id)
            job.apply(event, seq, data)
            self._seq = max(self._seq, seq)
            self._lines_since_snapshot += 1
        return jobs
