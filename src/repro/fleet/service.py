"""Stdlib-only HTTP service wrapping the fleet orchestrator.

``repro fleet serve`` exposes submit / status / results over plain HTTP so a
campaign can be driven from anywhere that can POST JSON — no framework, no
new dependency: the server is a minimal HTTP/1.1 parser on top of
``asyncio.start_server``, sharing one event loop with every running fleet
orchestration (shard executors block worker threads, never the loop).

API (all JSON unless noted):

- ``GET  /healthz``                 -> ``{"ok": true}``
- ``GET  /jobs``                    -> summary list of submitted jobs
- ``POST /jobs``                    -> 202 ``{"job": "<id>"}``; body is
  ``{"spec": {<TOML document shape>}, "n_shards": 2, "quick": false,
  "jobs": 1}``
- ``GET  /jobs/<id>``               -> job + per-shard fleet status
- ``GET  /jobs/<id>/results.csv``   -> merged results (text/csv); 409 until
  the merge has happened
- ``GET  /jobs/<id>/telemetry``     -> merged telemetry snapshot; 404 if
  the run captured none

Job state never outlives the process (the artifacts on disk under
``<root>/jobs/<id>/`` do); this is a hotspot-controller-sized service, not
a database.
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path
from typing import Any

from repro.campaign.spec import SpecError, spec_from_dict
from repro.fleet.plan import FleetError
from repro.fleet.run import fleet_status_document, run_fleet_async

_MAX_BODY = 4 * 1024 * 1024  # a spec document is tiny; refuse anything huge


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _Job:
    """One submitted fleet run and its background task."""

    def __init__(self, job_id: str, spec_name: str, n_shards: int, out_dir: Path) -> None:
        self.id = job_id
        self.spec_name = spec_name
        self.n_shards = n_shards
        self.out_dir = out_dir
        self.status = "running"
        self.error: str | None = None
        self.task: asyncio.Task | None = None


class FleetService:
    """Asyncio fleet service: submit specs, watch shards, fetch results."""

    def __init__(
        self,
        root: str | Path,
        executor: str = "local",
        jobs: int = 1,
        max_parallel_shards: int | None = None,
        max_shard_attempts: int = 3,
    ) -> None:
        self.root = Path(root)
        self.executor = executor
        self.jobs = jobs
        self.max_parallel_shards = max_parallel_shards
        self.max_shard_attempts = max_shard_attempts
        self._jobs: dict[str, _Job] = {}
        self._seq = 0
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    # ------------------------------------------------------------ job API ---

    def submit(self, document: Any) -> str:
        """Validate a submit body and start the fleet run; returns the job id."""
        if not isinstance(document, dict):
            raise _HttpError(400, "request body must be a JSON object")
        spec_doc = document.get("spec")
        if not isinstance(spec_doc, dict):
            raise _HttpError(400, 'body must carry the spec document under "spec"')
        n_shards = document.get("n_shards", 2)
        if not isinstance(n_shards, int) or isinstance(n_shards, bool) or n_shards < 1:
            raise _HttpError(400, f"n_shards must be a positive integer, got {n_shards!r}")
        quick = document.get("quick", False)
        if not isinstance(quick, bool):
            raise _HttpError(400, f"quick must be a boolean, got {quick!r}")
        shard_jobs = document.get("jobs", self.jobs)
        if not isinstance(shard_jobs, int) or isinstance(shard_jobs, bool) or shard_jobs < 1:
            raise _HttpError(400, f"jobs must be a positive integer, got {shard_jobs!r}")
        try:
            spec = spec_from_dict(spec_doc, source="<http>", quick=quick)
        except SpecError as exc:
            raise _HttpError(400, str(exc)) from None

        self._seq += 1
        job_id = f"{self._seq:04d}-{spec.name}"
        job = _Job(job_id, spec.name, n_shards, self.root / "jobs" / job_id)
        self._jobs[job_id] = job

        async def _run() -> None:
            try:
                run = await run_fleet_async(
                    spec,
                    job.out_dir,
                    n_shards=n_shards,
                    executor=self.executor,
                    jobs=shard_jobs,
                    max_shard_attempts=self.max_shard_attempts,
                    max_parallel=self.max_parallel_shards,
                )
                job.status = "done" if run.ok else "failed"
                job.error = run.error
            except (FleetError, Exception) as exc:  # noqa: BLE001 - job boundary
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"

        job.task = asyncio.get_running_loop().create_task(_run())
        return job_id

    def _job(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise _HttpError(404, f"no such job {job_id!r}")
        return job

    def job_status(self, job_id: str) -> dict[str, Any]:
        job = self._job(job_id)
        doc: dict[str, Any] = {
            "job": job.id,
            "spec": job.spec_name,
            "n_shards": job.n_shards,
            "status": job.status,
            "error": job.error,
        }
        try:
            doc["fleet"] = fleet_status_document(job.out_dir)
        except FleetError:
            doc["fleet"] = None  # state file not written yet
        return doc

    def jobs_index(self) -> list[dict[str, Any]]:
        return [
            {"job": job.id, "spec": job.spec_name, "status": job.status}
            for job in self._jobs.values()
        ]

    # --------------------------------------------------------------- HTTP ---

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target, body = await self._read_request(reader)
                status, content_type, payload = self._route(method, target, body)
            except _HttpError as exc:
                status = exc.status
                content_type = "application/json"
                payload = json.dumps({"error": exc.message}) + "\n"
            except Exception as exc:  # noqa: BLE001 - never kill the server
                status = 500
                content_type = "application/json"
                payload = json.dumps({"error": f"{type(exc).__name__}: {exc}"}) + "\n"
            data = payload.encode()
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(data)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode() + data)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            # close() without wait_closed(): the response is already drained,
            # and not parking here keeps handlers from lingering (and being
            # noisily cancelled) when the service shuts down mid-keepalive.
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, target, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length") from None
        if content_length > _MAX_BODY:
            raise _HttpError(413, f"body larger than {_MAX_BODY} bytes")
        body = await reader.readexactly(content_length) if content_length else b""
        return method, target, body

    def _route(self, method: str, target: str, body: bytes) -> tuple[int, str, str]:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return 200, "application/json", json.dumps({"ok": True}) + "\n"
        if path == "/jobs":
            if method == "POST":
                try:
                    document = json.loads(body.decode() or "null")
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    raise _HttpError(400, f"request body is not valid JSON: {exc}") from None
                job_id = self.submit(document)
                return 202, "application/json", json.dumps({"job": job_id}) + "\n"
            if method == "GET":
                return 200, "application/json", json.dumps(self.jobs_index()) + "\n"
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/jobs/"):
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            rest = path[len("/jobs/") :]
            if rest.endswith("/results.csv"):
                return self._results(rest[: -len("/results.csv")])
            if rest.endswith("/telemetry"):
                return self._telemetry(rest[: -len("/telemetry")])
            return (
                200,
                "application/json",
                json.dumps(self.job_status(rest), indent=2, sort_keys=True) + "\n",
            )
        raise _HttpError(404, f"no route for {method} {path}")

    def _results(self, job_id: str) -> tuple[int, str, str]:
        job = self._job(job_id)
        csv_path = job.out_dir / "results.csv"
        if not csv_path.exists():
            if job.status == "failed":
                raise _HttpError(409, f"job {job_id} failed: {job.error}")
            raise _HttpError(409, f"job {job_id} has not merged yet (status {job.status})")
        return 200, "text/csv", csv_path.read_text()

    def _telemetry(self, job_id: str) -> tuple[int, str, str]:
        from repro.fleet.merge import collect_fleet_telemetry

        job = self._job(job_id)
        if not (job.out_dir / "manifest.json").exists():
            raise _HttpError(409, f"job {job_id} has not merged yet (status {job.status})")
        snapshot = collect_fleet_telemetry(job.out_dir)
        if snapshot is None:
            raise _HttpError(404, f"job {job_id} captured no telemetry")
        return 200, "application/json", snapshot.to_json(indent=2) + "\n"

    # -------------------------------------------------------------- server --

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind the listening socket; ``self.port`` is set once bound."""
        self._server = await asyncio.start_server(self._handle, host, port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()


class ServiceThread:
    """A FleetService on its own event loop in a daemon thread (tests, CI).

    Usage::

        with ServiceThread(root) as svc:
            url = f"http://127.0.0.1:{svc.port}"
    """

    def __init__(self, root: str | Path, **options: Any) -> None:
        self.service = FleetService(root, **options)
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    @property
    def port(self) -> int:
        assert self.service.port is not None
        return self.service.port

    def _run(self) -> None:
        async def main() -> None:
            await self.service.start()
            self._ready.set()
            try:
                await self.service.serve_forever()
            except asyncio.CancelledError:
                pass
            await self.service.stop()

        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("fleet service failed to start within 10s")
        return self

    def stop(self) -> None:
        loop = self._loop
        if loop is None or not self._thread.is_alive():
            return

        def _cancel_all() -> None:
            for task in asyncio.all_tasks(loop):
                task.cancel()

        loop.call_soon_threadsafe(_cancel_all)
        self._thread.join(timeout=10)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.stop()
