"""Stdlib-only HTTP service wrapping the fleet orchestrator.

``repro fleet serve`` exposes submit / status / results over plain HTTP so a
campaign can be driven from anywhere that can POST JSON — no framework, no
new dependency: the server is a minimal HTTP/1.1 parser on top of
``asyncio.start_server``, sharing one event loop with every running fleet
orchestration (shard executors block worker threads, never the loop).

API (all JSON unless noted):

- ``GET    /healthz``                 -> ``{"ok": true}``
- ``GET    /status``                  -> service document: queue depth,
  running/queued/terminal job counts, journal sequence + lag, draining flag
- ``GET    /queue``                   -> admission queue: waiting entries in
  dispatch order, running job ids, capacity limits
- ``GET    /jobs?limit=N&offset=M``   -> paginated job index
  (``{"jobs": [...], "total": T, "offset": M, "limit": N}``)
- ``POST   /jobs``                    -> 202 ``{"job": "<id>"}``; body is
  ``{"spec": {<TOML document shape>}, "n_shards": 2, "quick": false,
  "jobs": 1, "priority": 0}``; 429 + ``Retry-After`` when the admission
  queue is full, 503 while the service is draining for shutdown
- ``GET    /jobs/<id>``               -> job + per-shard fleet status
- ``DELETE /jobs/<id>``               -> cancel a queued or running job;
  409 if the job already reached a terminal state
- ``GET    /jobs/<id>/results.csv``   -> merged results (text/csv); 409
  until the merge has happened
- ``GET    /jobs/<id>/telemetry``     -> merged telemetry snapshot; 404 if
  the run captured none

Durability (DESIGN.md §13, "Durability & queueing"): every job state
transition is journaled to ``<root>/journal/`` *before* the in-memory
state changes (:mod:`repro.fleet.journal`).  On startup the service
replays the journal, re-fences each unfinished job against its recorded
spec-hash and code-version (the same rules ``fleet/run.py`` applies to a
reused out dir), marks jobs the crash caught mid-flight ``interrupted``,
and re-enqueues them — the shard workers resume from their own manifests,
so a killed-and-restarted service converges to byte-identical
``results.csv`` and metrics fingerprints.

Admission is a bounded queue: at most ``max_running`` fleet orchestrations
run concurrently, at most ``max_queue`` jobs wait behind them (submit
order within a priority level, higher ``priority`` first), and a full
queue answers 429 with ``Retry-After`` instead of accepting work it would
only lose.  Jobs re-admitted by crash recovery bypass the bound — they
were already accepted once.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.parse
from pathlib import Path
from typing import Any

from repro.campaign.spec import CampaignSpec, SpecError, spec_from_dict, spec_hash
from repro.fleet import journal as jl
from repro.fleet.journal import JobJournal, JobRecord
from repro.fleet.plan import FleetError
from repro.fleet.run import FleetState, fleet_state_path, fleet_status_document, run_fleet_async
from repro.runtime import code_version_token

_MAX_BODY = 4 * 1024 * 1024  # a spec document is tiny; refuse anything huge

#: Journal status -> the status string the HTTP API reports.  ``merged`` is
#: the journal's name for the happy terminal state; the API has always said
#: ``done`` and keeps saying it.
_PUBLIC_STATUS = {jl.MERGED: "done"}

class _HttpError(Exception):
    def __init__(
        self, status: int, message: str, headers: dict[str, str] | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _Job:
    """One accepted job: its journal record plus the live asyncio task."""

    def __init__(self, record: JobRecord, out_dir: Path, spec: CampaignSpec | None) -> None:
        self.record = record
        self.out_dir = out_dir
        self.spec = spec
        self.task: asyncio.Task | None = None

    @property
    def id(self) -> str:
        return self.record.job

    @property
    def status(self) -> str:
        return _PUBLIC_STATUS.get(self.record.status, self.record.status)


class FleetService:
    """Asyncio fleet service: journaled job queue, orchestration, results."""

    def __init__(
        self,
        root: str | Path,
        executor: str = "local",
        jobs: int = 1,
        max_parallel_shards: int | None = None,
        max_shard_attempts: int = 3,
        max_running: int = 2,
        max_queue: int = 16,
        max_body: int = _MAX_BODY,
        compact_every: int = 256,
    ) -> None:
        if max_running < 1:
            raise ValueError(f"max_running must be >= 1, got {max_running}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.root = Path(root)
        self.executor = executor
        self.jobs = jobs
        self.max_parallel_shards = max_parallel_shards
        self.max_shard_attempts = max_shard_attempts
        self.max_running = max_running
        self.max_queue = max_queue
        self.max_body = max_body
        self.journal = JobJournal(self.root, compact_every=compact_every)
        self._jobs: dict[str, _Job] = {}  # insertion order = submit order
        self._waiting: list[str] = []  # admitted, not yet dispatched
        self._running: set[str] = set()
        self._draining = False
        self._seq = 0
        self._recovered: dict[str, int] = {}
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    # ------------------------------------------------------------ job API ---

    def submit(self, document: Any) -> str:
        """Validate a submit body, journal it, and enqueue; returns the id."""
        if self._draining:
            raise _HttpError(
                503, "service is shutting down and refuses new submissions"
            )
        if not isinstance(document, dict):
            raise _HttpError(400, "request body must be a JSON object")
        spec_doc = document.get("spec")
        if not isinstance(spec_doc, dict):
            raise _HttpError(400, 'body must carry the spec document under "spec"')
        n_shards = document.get("n_shards", 2)
        if not isinstance(n_shards, int) or isinstance(n_shards, bool) or n_shards < 1:
            raise _HttpError(400, f"n_shards must be a positive integer, got {n_shards!r}")
        quick = document.get("quick", False)
        if not isinstance(quick, bool):
            raise _HttpError(400, f"quick must be a boolean, got {quick!r}")
        shard_jobs = document.get("jobs", self.jobs)
        if not isinstance(shard_jobs, int) or isinstance(shard_jobs, bool) or shard_jobs < 1:
            raise _HttpError(400, f"jobs must be a positive integer, got {shard_jobs!r}")
        priority = document.get("priority", 0)
        if (
            not isinstance(priority, int)
            or isinstance(priority, bool)
            or not -1000 <= priority <= 1000
        ):
            raise _HttpError(
                400, f"priority must be an integer in [-1000, 1000], got {priority!r}"
            )
        try:
            spec = spec_from_dict(spec_doc, source="<http>", quick=quick)
        except SpecError as exc:
            raise _HttpError(400, str(exc)) from None
        # The bound applies to the *waiting* line: a submit that can start
        # immediately (a running slot is free) is always admissible, even
        # with max_queue=0.
        if (
            len(self._running) >= self.max_running
            and len(self._waiting) >= self.max_queue
        ):
            raise _HttpError(
                429,
                f"admission queue is full ({len(self._waiting)}/{self.max_queue} "
                f"waiting, {len(self._running)}/{self.max_running} running); "
                "retry later",
                headers={"Retry-After": "1"},
            )

        self._seq += 1
        job_id = f"{self._seq:04d}-{spec.name}"
        record = JobRecord(job=job_id)
        # Journal first, mutate after: the fsync'd append is the commit point
        # of admission — a crash right after the 202 still knows this job.
        seq = self.journal.append(
            job_id,
            jl.SUBMITTED,
            spec=dict(spec_doc),
            spec_hash=spec_hash(spec),
            code_version=code_version_token(),
            priority=priority,
            n_shards=n_shards,
            jobs=shard_jobs,
            quick=quick,
        )
        record.apply(
            jl.SUBMITTED,
            seq,
            {
                "spec": dict(spec_doc),
                "spec_hash": spec_hash(spec),
                "code_version": code_version_token(),
                "priority": priority,
                "n_shards": n_shards,
                "jobs": shard_jobs,
                "quick": quick,
            },
        )
        job = _Job(record, self.root / "jobs" / job_id, spec)
        self._jobs[job_id] = job
        self._transition(job, jl.QUEUED)
        self._waiting.append(job_id)
        self._pump()
        return job_id

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a queued or running job (``DELETE /jobs/<id>``)."""
        job = self._job(job_id)
        status = job.record.status
        if status == jl.QUEUED:
            self._waiting.remove(job_id)
            self._transition(job, jl.CANCELLED)
        elif status == jl.RUNNING:
            # Journal before cancelling: the orchestrator task observes
            # CancelledError and must find the terminal state already logged.
            self._transition(job, jl.CANCELLED, shard_attempts=self._shard_attempts(job))
            if job.task is not None:
                job.task.cancel()
        else:
            raise _HttpError(
                409, f"job {job_id} is {job.status} and can no longer be cancelled"
            )
        self.journal.maybe_compact(self._records())
        return {"job": job_id, "status": job.status}

    def _job(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise _HttpError(404, f"no such job {job_id!r}")
        return job

    def _records(self) -> dict[str, JobRecord]:
        return {job_id: job.record for job_id, job in self._jobs.items()}

    def _transition(self, job: _Job, event: str, **data: Any) -> None:
        """Journal an event, then apply it to the in-memory record."""
        seq = self.journal.append(job.id, event, **data)
        job.record.apply(event, seq, data)

    def _shard_attempts(self, job: _Job) -> dict[str, int]:
        """Per-shard dispatch attempt counts from the job's fleet state."""
        try:
            state = FleetState.load(fleet_state_path(job.out_dir))
        except FleetError:
            return {}
        return {str(entry.shard): entry.attempts for entry in state.shards}

    # ------------------------------------------------------------ dispatch --

    def _pump(self) -> None:
        """Start queued jobs while concurrency slots are free (loop thread)."""
        if self._draining:
            return
        while self._waiting and len(self._running) < self.max_running:
            # Highest priority first; FIFO by admission order within a level.
            job_id = min(
                self._waiting,
                key=lambda jid: (
                    -self._jobs[jid].record.priority,
                    self._jobs[jid].record.submitted_seq,
                ),
            )
            self._waiting.remove(job_id)
            self._start(self._jobs[job_id])

    def _start(self, job: _Job) -> None:
        self._running.add(job.id)
        self._transition(job, jl.RUNNING)
        job.task = asyncio.get_running_loop().create_task(self._run(job))

    async def _run(self, job: _Job) -> None:
        try:
            assert job.spec is not None  # re-fenced before every enqueue
            run = await run_fleet_async(
                job.spec,
                job.out_dir,
                n_shards=job.record.n_shards,
                executor=self.executor,
                jobs=job.record.jobs,
                max_shard_attempts=self.max_shard_attempts,
                max_parallel=self.max_parallel_shards,
            )
            attempts = self._shard_attempts(job)
            if run.ok:
                self._transition(job, jl.MERGED, shard_attempts=attempts)
            else:
                self._transition(
                    job, jl.FAILED, error=run.error or "fleet run failed",
                    shard_attempts=attempts,
                )
        except asyncio.CancelledError:
            # cancel()/shutdown() journaled the terminal/interrupted state
            # before cancelling; a hard crash (loop torn down) journals
            # nothing, which replay reads as "running" -> interrupted.
            raise
        except (FleetError, Exception) as exc:  # noqa: BLE001 - job boundary
            self._transition(
                job, jl.FAILED, error=f"{type(exc).__name__}: {exc}",
                shard_attempts=self._shard_attempts(job),
            )
        finally:
            self._running.discard(job.id)
            self.journal.maybe_compact(self._records())
            self._pump()

    # ------------------------------------------------------------ recovery --

    def recover(self) -> dict[str, int]:
        """Replay the journal; re-fence and re-enqueue unfinished jobs.

        Called by :meth:`start` on the loop thread before the first request
        is served.  Returns counters for the operator banner
        (``restored`` terminal jobs, ``requeued``, ``failed`` fence checks).
        """
        counters = {"restored": 0, "requeued": 0, "failed": 0}
        records = self.journal.replay()
        for record in sorted(records.values(), key=lambda r: r.submitted_seq):
            prefix = record.job.split("-", 1)[0]
            if prefix.isdigit():
                self._seq = max(self._seq, int(prefix))
            job = _Job(record, self.root / "jobs" / record.job, spec=None)
            self._jobs[record.job] = job
            if record.terminal:
                counters["restored"] += 1
                continue
            if record.status in (jl.RUNNING, jl.SUBMITTED):
                # The crash caught this job mid-flight (or mid-admission).
                self._transition(
                    job, jl.INTERRUPTED, shard_attempts=self._shard_attempts(job)
                )
            error = self._refence(job)
            if error is not None:
                self._transition(job, jl.FAILED, error=error)
                counters["failed"] += 1
                continue
            self._transition(job, jl.QUEUED, requeued=True)
            self._waiting.append(record.job)
            counters["requeued"] += 1
        # Recovery rewrote the interesting tail of history; snapshot it so a
        # crash loop cannot grow the journal without bound.
        self.journal.compact(self._records())
        self._recovered = counters
        return counters

    def _refence(self, job: _Job) -> str | None:
        """Re-check a recovered job against its recorded fences.

        Mirrors the ``fleet/run.py`` out-dir fences: the journaled spec must
        still resolve to the journaled spec-hash, and the simulator code
        must be the version that produced any existing shard artifacts.
        Returns an error message, or None (and sets ``job.spec``) if the job
        is safe to re-dispatch through the resumable shard path.
        """
        record = job.record
        if not isinstance(record.spec, dict):
            return "journal lost the spec document for this job"
        try:
            spec = spec_from_dict(record.spec, source="<journal>", quick=record.quick)
        except SpecError as exc:
            return f"journaled spec no longer validates: {exc}"
        digest = spec_hash(spec)
        if record.spec_hash and digest != record.spec_hash:
            return (
                f"journaled spec resolves to hash {digest}, the job was "
                f"admitted with {record.spec_hash}; artifacts are not comparable"
            )
        token = code_version_token()
        if record.code_version and token != record.code_version:
            return (
                "job was admitted under a different simulator code version "
                f"({record.code_version}, now {token}); completed shards "
                "would not be comparable — resubmit"
            )
        job.spec = spec
        return None

    # ------------------------------------------------------------- status ---

    def job_status(self, job_id: str) -> dict[str, Any]:
        job = self._job(job_id)
        doc: dict[str, Any] = {
            "job": job.id,
            "spec": job.record.spec.get("campaign", {}).get("name")
            if isinstance(job.record.spec, dict)
            else None,
            "n_shards": job.record.n_shards,
            "status": job.status,
            "error": job.record.error,
            "priority": job.record.priority,
            "shard_attempts": dict(job.record.shard_attempts),
        }
        if job.spec is not None:
            doc["spec"] = job.spec.name
        if job.record.status == jl.QUEUED:
            doc["queue_position"] = self._queue_order().index(job.id)
        try:
            doc["fleet"] = fleet_status_document(job.out_dir)
        except FleetError:
            doc["fleet"] = None  # state file not written yet
        return doc

    def _queue_order(self) -> list[str]:
        return sorted(
            self._waiting,
            key=lambda jid: (
                -self._jobs[jid].record.priority,
                self._jobs[jid].record.submitted_seq,
            ),
        )

    def jobs_index(self, limit: int = 100, offset: int = 0) -> dict[str, Any]:
        """Bounded job index: newest first, paginated with limit/offset."""
        entries = [
            {
                "job": job.id,
                "spec": job.record.spec.get("campaign", {}).get("name")
                if isinstance(job.record.spec, dict)
                else (job.spec.name if job.spec is not None else None),
                "status": job.status,
                "priority": job.record.priority,
            }
            for job in reversed(list(self._jobs.values()))
        ]
        return {
            "jobs": entries[offset : offset + limit],
            "total": len(entries),
            "offset": offset,
            "limit": limit,
        }

    def queue_document(self) -> dict[str, Any]:
        """The admission queue as operators see it (``GET /queue``)."""
        order = self._queue_order()
        return {
            "depth": len(order),
            "max_queue": self.max_queue,
            "running": sorted(self._running),
            "max_running": self.max_running,
            "entries": [
                {
                    "job": job_id,
                    "priority": self._jobs[job_id].record.priority,
                    "position": position,
                }
                for position, job_id in enumerate(order)
            ],
        }

    def status_document(self) -> dict[str, Any]:
        """Service-level health (``GET /status``): queue, jobs, journal lag."""
        by_status: dict[str, int] = {}
        for job in self._jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "root": str(self.root),
            "draining": self._draining,
            "queue_depth": len(self._waiting),
            "max_queue": self.max_queue,
            "running": len(self._running),
            "max_running": self.max_running,
            "jobs": {"total": len(self._jobs), **by_status},
            "journal": {"seq": self.journal.seq, "lag": self.journal.lag},
            "recovered": dict(self._recovered),
        }

    # --------------------------------------------------------------- HTTP ---

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            headers: dict[str, str] = {}
            try:
                method, target, body = await self._read_request(reader)
                status, content_type, payload = self._route(method, target, body)
            except _HttpError as exc:
                status = exc.status
                content_type = "application/json"
                payload = json.dumps({"error": exc.message}) + "\n"
                headers = exc.headers
            except Exception as exc:  # noqa: BLE001 - never kill the server
                status = 500
                content_type = "application/json"
                payload = json.dumps({"error": f"{type(exc).__name__}: {exc}"}) + "\n"
            data = payload.encode()
            extra = "".join(f"{name}: {value}\r\n" for name, value in headers.items())
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(data)}\r\n"
                f"{extra}"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode() + data)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            # close() without wait_closed(): the response is already drained,
            # and not parking here keeps handlers from lingering (and being
            # noisily cancelled) when the service shuts down mid-keepalive.
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, target, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length") from None
        if content_length > self.max_body:
            raise _HttpError(413, f"body larger than {self.max_body} bytes")
        body = await reader.readexactly(content_length) if content_length else b""
        return method, target, body

    @staticmethod
    def _page_params(target: str) -> tuple[int, int]:
        query = urllib.parse.urlparse(target).query
        params = urllib.parse.parse_qs(query)
        try:
            limit = int(params.get("limit", ["100"])[0])
            offset = int(params.get("offset", ["0"])[0])
        except ValueError as exc:
            raise _HttpError(400, f"bad pagination parameter: {exc}") from None
        if limit < 1 or offset < 0:
            raise _HttpError(400, "limit must be >= 1 and offset >= 0")
        return limit, offset

    def _route(self, method: str, target: str, body: bytes) -> tuple[int, str, str]:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return 200, "application/json", json.dumps({"ok": True}) + "\n"
        if path == "/status" and method == "GET":
            return (
                200,
                "application/json",
                json.dumps(self.status_document(), indent=2, sort_keys=True) + "\n",
            )
        if path == "/queue" and method == "GET":
            return (
                200,
                "application/json",
                json.dumps(self.queue_document(), indent=2, sort_keys=True) + "\n",
            )
        if path == "/jobs":
            if method == "POST":
                try:
                    document = json.loads(body.decode() or "null")
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    raise _HttpError(400, f"request body is not valid JSON: {exc}") from None
                job_id = self.submit(document)
                return 202, "application/json", json.dumps({"job": job_id}) + "\n"
            if method == "GET":
                limit, offset = self._page_params(target)
                return (
                    200,
                    "application/json",
                    json.dumps(self.jobs_index(limit, offset)) + "\n",
                )
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/") :]
            if method == "DELETE":
                if "/" in rest:
                    raise _HttpError(404, f"no route for {method} {path}")
                return (
                    200,
                    "application/json",
                    json.dumps(self.cancel(rest)) + "\n",
                )
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            if rest.endswith("/results.csv"):
                return self._results(rest[: -len("/results.csv")])
            if rest.endswith("/telemetry"):
                return self._telemetry(rest[: -len("/telemetry")])
            return (
                200,
                "application/json",
                json.dumps(self.job_status(rest), indent=2, sort_keys=True) + "\n",
            )
        raise _HttpError(404, f"no route for {method} {path}")

    def _results(self, job_id: str) -> tuple[int, str, str]:
        job = self._job(job_id)
        csv_path = job.out_dir / "results.csv"
        if not csv_path.exists():
            if job.status == "failed":
                raise _HttpError(409, f"job {job_id} failed: {job.record.error}")
            raise _HttpError(409, f"job {job_id} has not merged yet (status {job.status})")
        return 200, "text/csv", csv_path.read_text()

    def _telemetry(self, job_id: str) -> tuple[int, str, str]:
        from repro.fleet.merge import collect_fleet_telemetry

        job = self._job(job_id)
        if not (job.out_dir / "manifest.json").exists():
            raise _HttpError(409, f"job {job_id} has not merged yet (status {job.status})")
        snapshot = collect_fleet_telemetry(job.out_dir)
        if snapshot is None:
            raise _HttpError(404, f"job {job_id} captured no telemetry")
        return 200, "application/json", snapshot.to_json(indent=2) + "\n"

    # -------------------------------------------------------------- server --

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Replay the journal, then bind; ``self.port`` is set once bound.

        Recovery runs *before* the socket accepts its first request, so a
        client polling a job it submitted to the previous incarnation never
        sees a 404 — the job is back (queued or terminal) by the time the
        port answers.
        """
        self.recover()
        self._pump()
        self._server = await asyncio.start_server(self._handle, host, port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Tear the listener down (tests); running job tasks are cancelled
        without journaling — indistinguishable from a crash, which is what
        the restart tests simulate."""
        self._draining = True  # keep _pump from starting jobs mid-teardown
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def shutdown(self, timeout_s: float = 30.0) -> None:
        """Graceful SIGTERM/SIGINT path: drain, journal, cancel, stop.

        New submissions are refused (503) immediately; every running job is
        journaled ``interrupted`` before its orchestrator task is cancelled
        (the subprocess executor kills its shard workers, whose atomic
        manifests make the interruption resumable); queued jobs stay
        ``queued`` in the journal and are re-admitted on the next start.
        """
        self._draining = True
        running = [
            job for job in self._jobs.values()
            if job.id in self._running and job.task is not None
        ]
        for job in running:
            self._transition(
                job, jl.INTERRUPTED, shard_attempts=self._shard_attempts(job)
            )
            assert job.task is not None
            job.task.cancel()
        if running:
            await asyncio.wait(
                [job.task for job in running if job.task is not None],
                timeout=timeout_s,
            )
        self.journal.compact(self._records())
        await self.stop()


class ServiceThread:
    """A FleetService on its own event loop in a daemon thread (tests, CI).

    Usage::

        with ServiceThread(root) as svc:
            url = f"http://127.0.0.1:{svc.port}"

    ``stop()`` cancels everything without journaling — a simulated crash.
    ``shutdown()`` runs the graceful drain first, like SIGTERM would.
    """

    def __init__(self, root: str | Path, **options: Any) -> None:
        self.service = FleetService(root, **options)
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    @property
    def port(self) -> int:
        assert self.service.port is not None
        return self.service.port

    def _run(self) -> None:
        async def main() -> None:
            await self.service.start()
            self._ready.set()
            try:
                await self.service.serve_forever()
            except asyncio.CancelledError:
                pass
            await self.service.stop()
            # Let cancelled job tasks finish unwinding (they kill their
            # shard subprocesses on the way out) before the loop closes.
            pending = [
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            if pending:
                await asyncio.wait(pending, timeout=10)

        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("fleet service failed to start within 10s")
        return self

    def shutdown(self, timeout_s: float = 30.0) -> None:
        """Run the graceful drain on the service loop, then join the thread."""
        loop = self._loop
        if loop is None or not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(timeout_s=timeout_s), loop
        )
        future.result(timeout=timeout_s + 10)
        self.stop()

    def stop(self) -> None:
        loop = self._loop
        if loop is None or not self._thread.is_alive():
            return

        def _cancel_all() -> None:
            for task in asyncio.all_tasks(loop):
                task.cancel()

        loop.call_soon_threadsafe(_cancel_all)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.stop()
