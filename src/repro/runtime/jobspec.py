"""Pickle-safe job specifications for the parallel execution layer.

A :class:`JobSpec` names a seed-parameterised runner by *module path* plus
keyword arguments instead of capturing a closure, so it can cross a process
boundary and serve as a stable on-disk cache key.  Runners must be
module-level callables taking ``seed`` as a keyword argument — exactly the
shape of the scenario runners in :mod:`repro.experiments.common` and
:mod:`repro.testbed.emulation`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping


def runner_path(runner: Callable[..., Any]) -> str:
    """``module:qualname`` address of a module-level callable.

    Rejects lambdas, locals and bound methods: those cannot be re-imported
    by a worker process (and would silently fall back to pickling closures).
    """
    module = getattr(runner, "__module__", None)
    qualname = getattr(runner, "__qualname__", None)
    if not module or not qualname:
        raise ValueError(f"runner {runner!r} has no module/qualname")
    if "<lambda>" in qualname or "<locals>" in qualname or "." in qualname:
        raise ValueError(
            f"runner {module}:{qualname} is not addressable at module level; "
            "move it to the top of its module so worker processes can import it"
        )
    return f"{module}:{qualname}"


def resolve_runner(path: str) -> Callable[..., Any]:
    """Import the callable a ``module:qualname`` path points at."""
    module_name, _, attr = path.partition(":")
    if not module_name or not attr:
        raise ValueError(f"malformed runner path {path!r}; expected 'module:callable'")
    runner = getattr(importlib.import_module(module_name), attr, None)
    if not callable(runner):
        raise ValueError(f"runner path {path!r} does not resolve to a callable")
    return runner


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-serialisable canonical form for cache keys.

    Handles the argument types the experiment runners actually take: scalars,
    sequences, mappings, (frozen)sets, enums (e.g. ``FrameKind``) and frozen
    dataclasses (e.g. ``PhyParams``).  Anything else raises so that cache
    keys never silently depend on an unstable ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__module__}:{type(value).__qualname__}.{value.name}"}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": f"{type(value).__module__}:{type(value).__qualname__}",
            "fields": {
                f.name: canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, Mapping):
        return {str(k): canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (set, frozenset)):
        encoded = [canonical(v) for v in value]
        return {"__set__": sorted(encoded, key=lambda v: json.dumps(v, sort_keys=True))}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    raise TypeError(
        f"cannot canonicalise {type(value).__name__!r} for a cache key; "
        "pass plain data, enums or dataclasses"
    )


@dataclass(frozen=True)
class JobSpec:
    """One seeded simulation point: runner address + kwargs + seed."""

    runner: str
    kwargs: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None

    @classmethod
    def of(cls, runner: Callable[..., Any] | str, /, **kwargs: Any) -> "JobSpec":
        """Build a spec from a module-level callable (or its path).

        Every kwarg must canonicalise (see :func:`canonical`); opaque values
        are rejected here, at construction time, so a cache key can never
        silently collide with another job's or churn between runs because an
        argument hashed through an unstable ``repr``/pickle round-trip.
        """
        path = runner if isinstance(runner, str) else runner_path(runner)
        if "seed" in kwargs:
            raise ValueError("pass the seed via with_seed()/map_over_seeds, not kwargs")
        for key, value in kwargs.items():
            try:
                canonical(value)
            except TypeError as exc:
                raise TypeError(
                    f"kwarg {key!r} for runner {path} is not cache-key stable: {exc}"
                ) from None
        return cls(runner=path, kwargs=dict(kwargs))

    def with_seed(self, seed: int) -> "JobSpec":
        return dataclasses.replace(self, seed=int(seed))

    def resolve(self) -> Callable[..., Any]:
        return resolve_runner(self.runner)

    def run(self) -> dict[str, float]:
        """Execute the runner in-process and return its metric dict."""
        if self.seed is None:
            raise ValueError("JobSpec has no seed; call with_seed() first")
        return dict(self.resolve()(seed=self.seed, **self.kwargs))

    def cache_key(self, version: str) -> str:
        """Stable digest over (runner, kwargs, seed, code version)."""
        payload = json.dumps(
            {
                "runner": self.runner,
                "kwargs": canonical(self.kwargs),
                "seed": self.seed,
                "version": version,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def seed_job(runner: Callable[..., Any] | str, /, **kwargs: Any) -> JobSpec:
    """Shorthand for :meth:`JobSpec.of`; reads naturally at call sites."""
    return JobSpec.of(runner, **kwargs)
