"""Durable atomic file writes, shared by the result cache and manifests.

Both :mod:`repro.runtime.cache` and :mod:`repro.campaign.manifest` persist
state that must survive being interrupted at any instruction — a SIGKILLed
campaign must leave either the old file or the new file, never a torn one.
The recipe is the classic one:

1. write the full content to a temp file in the *same directory* (so the
   final rename never crosses a filesystem),
2. ``fsync`` the temp file, so the data is on disk before the rename
   publishes it,
3. ``os.replace`` onto the destination (atomic on POSIX),
4. ``fsync`` the directory, so the rename itself survives a power cut.

``backup_suffix`` additionally rotates the previous file content aside
before the rename (e.g. ``manifest.json`` -> ``manifest.json.bak``), which
gives readers a one-version-old fallback if the destination is ever caught
corrupt — the crash-consistent recovery path of
:meth:`repro.campaign.manifest.Manifest.load_or_recover`.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def fsync_dir(path: Path) -> None:
    """Flush directory metadata (renames) to disk; best-effort on exotic FS."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-fd support
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync on FAT/network mounts
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: str | Path,
    text: str,
    *,
    durable: bool = True,
    backup_suffix: str | None = None,
) -> None:
    """Write ``text`` to ``path`` atomically (temp file + fsync + rename).

    ``durable=False`` skips the fsyncs (atomicity against crashes of *this
    process* is still guaranteed by the rename; a power cut may lose the
    write).  ``backup_suffix`` preserves the previous content at
    ``path + suffix`` before the rename.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        if backup_suffix is not None and path.exists():
            os.replace(path, str(path) + backup_suffix)
        os.replace(tmp_name, path)
        if durable:
            fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def durable_append_line(path: str | Path, text: str, *, durable: bool = True) -> None:
    """Append one line to ``path`` and fsync it — the JSONL journal idiom.

    Appends are the write-ahead-log counterpart of :func:`atomic_write_text`:
    a crash mid-append can only tear the *final* line, which journal readers
    detect (newline missing / JSON truncated / checksum mismatch) and drop.
    The first append also fsyncs the parent directory so the journal file's
    creation itself survives a power cut.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    created = not path.exists()
    with path.open("a") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
        if durable:
            handle.flush()
            os.fsync(handle.fileno())
    if durable and created:
        fsync_dir(path.parent)


def clean_stale_tmp(directory: str | Path, max_age_s: float = 3600.0) -> int:
    """Remove ``*.tmp`` debris left behind by killed writers; returns count.

    Only files older than ``max_age_s`` are touched, so a live writer's
    in-flight temp file in a shared directory is never deleted.  Call this
    from single-writer owners (the campaign runner owns its out dir).
    """
    import time

    directory = Path(directory)
    if not directory.is_dir():
        return 0
    removed = 0
    cutoff = time.time() - max_age_s
    for tmp in directory.glob("*.tmp"):
        try:
            if tmp.stat().st_mtime < cutoff:
                tmp.unlink()
                removed += 1
        except OSError:
            continue
    return removed
