"""Parallel experiment engine: job specs, result cache, process-pool fan-out.

See DESIGN.md ("Parallel experiment engine") for the cache key scheme and
the determinism argument; tests/test_parallel_engine.py enforces that
parallel and serial execution are bit-identical.  The fault-tolerance layer
(retries, timeouts, pool rebuilds, quarantine) is documented in DESIGN.md
§11 and exercised by tests/test_runtime_faulttol.py.
"""

from repro.runtime.cache import (
    DEFAULT_CACHE_DIRNAME,
    LOCKS_DIRNAME,
    QUARANTINE_DIRNAME,
    EntryClaim,
    ResultCache,
    code_version_token,
    result_checksum,
)
from repro.runtime.io import atomic_write_text, clean_stale_tmp, fsync_dir
from repro.runtime.jobspec import JobSpec, canonical, resolve_runner, runner_path, seed_job
from repro.runtime.pool import (
    ExecutionContext,
    JobExecutionError,
    WorkerPool,
    current_context,
    execute_job,
    execution,
    map_over_seeds,
)
from repro.runtime.retry import (
    NON_RETRYABLE,
    ExecutionReport,
    JobReport,
    JobTimeoutError,
    PoolBrokenError,
    RetryPolicy,
)

__all__ = [
    "DEFAULT_CACHE_DIRNAME",
    "EntryClaim",
    "ExecutionContext",
    "ExecutionReport",
    "JobExecutionError",
    "JobReport",
    "JobSpec",
    "JobTimeoutError",
    "LOCKS_DIRNAME",
    "NON_RETRYABLE",
    "PoolBrokenError",
    "QUARANTINE_DIRNAME",
    "ResultCache",
    "RetryPolicy",
    "WorkerPool",
    "atomic_write_text",
    "canonical",
    "clean_stale_tmp",
    "code_version_token",
    "current_context",
    "execute_job",
    "execution",
    "fsync_dir",
    "map_over_seeds",
    "resolve_runner",
    "result_checksum",
    "runner_path",
    "seed_job",
]
