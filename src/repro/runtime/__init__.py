"""Parallel experiment engine: job specs, result cache, process-pool fan-out.

See DESIGN.md ("Parallel experiment engine") for the cache key scheme and
the determinism argument; tests/test_parallel_engine.py enforces that
parallel and serial execution are bit-identical.
"""

from repro.runtime.cache import DEFAULT_CACHE_DIRNAME, ResultCache, code_version_token
from repro.runtime.jobspec import JobSpec, canonical, resolve_runner, runner_path, seed_job
from repro.runtime.pool import (
    ExecutionContext,
    current_context,
    execute_job,
    execution,
    map_over_seeds,
)

__all__ = [
    "DEFAULT_CACHE_DIRNAME",
    "ExecutionContext",
    "JobSpec",
    "ResultCache",
    "canonical",
    "code_version_token",
    "current_context",
    "execute_job",
    "execution",
    "map_over_seeds",
    "resolve_runner",
    "runner_path",
    "seed_job",
]
