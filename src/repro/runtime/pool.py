"""Process-pool fan-out over seeds, with caching and an ambient context.

The paper's methodology (median of 5 seeded runs per point) is embarrassingly
parallel; :func:`map_over_seeds` is the single place that parallelism lives.
Determinism is preserved by construction:

* every seed's simulation builds its own ``Scenario(seed=...)`` with a
  private RNG — no state is shared across seeds in either mode;
* results are keyed by seed, never by completion order;
* workers receive a pickle-safe :class:`~repro.runtime.jobspec.JobSpec`
  (module path + kwargs), so the exact same function runs with the exact
  same arguments whether in-process or in a pool worker.

Experiments themselves stay oblivious: they build JobSpecs and the ambient
:class:`ExecutionContext` (installed by the CLI's ``--jobs`` flag or
``benchmarks/run_all.py``) decides whether those fan out.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.runtime.cache import ResultCache
from repro.runtime.jobspec import JobSpec


@dataclass
class ExecutionContext:
    """Ambient execution policy: worker count and optional result cache."""

    jobs: int = 1
    cache: ResultCache | None = None


_context = ExecutionContext()


def current_context() -> ExecutionContext:
    return _context


@contextmanager
def execution(jobs: int = 1, cache: ResultCache | None = None) -> Iterator[ExecutionContext]:
    """Install an :class:`ExecutionContext` for the duration of a block."""
    global _context
    previous = _context
    _context = ExecutionContext(jobs=max(1, int(jobs)), cache=cache)
    try:
        yield _context
    finally:
        _context = previous


def execute_job(spec: JobSpec) -> dict[str, float]:
    """Worker entry point: run one seeded job (module-level, picklable)."""
    return spec.run()


def _collect(futures: dict[Future, int], results: dict[int, dict[str, float]]) -> None:
    """Drain futures as they complete, keying results by seed."""
    pending = set(futures)
    while pending:
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            results[futures[future]] = dict(future.result())


def map_over_seeds(
    run: JobSpec | Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    executor: Any | None = None,
) -> dict[int, dict[str, float]]:
    """Run one seeded job per seed; return ``{seed: metrics}`` in seed order.

    ``run`` is either a :class:`JobSpec` (parallel- and cache-capable) or a
    plain callable (runs serially in-process — closures cannot cross a
    process boundary).  ``jobs``/``cache`` default to the ambient
    :func:`execution` context; ``executor`` injects a ready-made
    ``submit()``-style executor (owned by the caller) instead of an internal
    process pool — with a process executor the caller must pass a JobSpec.
    """
    seed_list = [int(seed) for seed in seeds]
    if not seed_list:
        raise ValueError("need at least one seed")
    if len(set(seed_list)) != len(seed_list):
        raise ValueError(f"duplicate seeds: {seed_list}")

    context = current_context()
    if jobs is None:
        jobs = context.jobs
    if cache is None:
        cache = context.cache

    results: dict[int, dict[str, float]] = {}
    if isinstance(run, JobSpec):
        specs = {seed: run.with_seed(seed) for seed in seed_list}
        pending = []
        for seed in seed_list:
            hit = cache.get(specs[seed]) if cache is not None else None
            if hit is not None:
                results[seed] = hit
            else:
                pending.append(seed)
        if pending:
            if executor is not None:
                futures = {executor.submit(execute_job, specs[s]): s for s in pending}
                _collect(futures, results)
            elif jobs > 1 and len(pending) > 1:
                with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                    futures = {pool.submit(execute_job, specs[s]): s for s in pending}
                    _collect(futures, results)
            else:
                for seed in pending:
                    results[seed] = execute_job(specs[seed])
            if cache is not None:
                for seed in pending:
                    cache.put(specs[seed], results[seed])
    elif executor is not None:
        futures = {executor.submit(run, seed): seed for seed in seed_list}
        _collect(futures, results)
    else:
        for seed in seed_list:
            results[seed] = dict(run(seed))
    return {seed: results[seed] for seed in seed_list}
