"""Process-pool fan-out over seeds, with caching, retries and an ambient context.

The paper's methodology (median of 5 seeded runs per point) is embarrassingly
parallel; :func:`map_over_seeds` is the single place that parallelism lives.
Determinism is preserved by construction:

* every seed's simulation builds its own ``Scenario(seed=...)`` with a
  private RNG — no state is shared across seeds in either mode;
* results are keyed by seed, never by completion order;
* workers receive a pickle-safe :class:`~repro.runtime.jobspec.JobSpec`
  (module path + kwargs), so the exact same function runs with the exact
  same arguments whether in-process or in a pool worker.

Fault tolerance lives in :class:`WorkerPool` (the repro.faults harness
plane): per-job wall-clock timeouts enforced by a watchdog that SIGKILLs
hung workers, bounded retries with exponential backoff + deterministic
jitter (:class:`~repro.runtime.retry.RetryPolicy`), transparent rebuild of a
broken process pool, and graceful degradation to serial in-process execution
when the pool keeps dying.  A retried job re-runs the identical JobSpec, so
its metrics are bit-identical to an undisturbed run — retries change wall
clock, never results.

Experiments themselves stay oblivious: they build JobSpecs and the ambient
:class:`ExecutionContext` (installed by the CLI's ``--jobs`` flag or
``benchmarks/run_all.py``) decides whether those fan out.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.runtime.cache import ResultCache
from repro.runtime.jobspec import JobSpec
from repro.runtime.retry import ExecutionReport, JobTimeoutError, RetryPolicy

#: Watchdog poll interval while futures are in flight with a timeout armed.
_POLL_S = 0.05


class JobExecutionError(RuntimeError):
    """One or more jobs exhausted their retry budget.

    ``failures`` maps the job key (the seed, for :func:`map_over_seeds`) to
    the last error message; successful sibling jobs were already cached by
    the caller before this was raised.
    """

    def __init__(self, failures: Mapping[Any, str]):
        self.failures = dict(failures)
        detail = "; ".join(f"[{key}] {message}" for key, message in self.failures.items())
        super().__init__(
            f"{len(self.failures)} job(s) failed after retries: {detail}"
        )


@dataclass
class ExecutionContext:
    """Ambient execution policy: worker count, result cache, retry policy."""

    jobs: int = 1
    cache: ResultCache | None = None
    retry: RetryPolicy | None = None


_context = ExecutionContext()


def current_context() -> ExecutionContext:
    return _context


@contextmanager
def execution(
    jobs: int = 1,
    cache: ResultCache | None = None,
    retry: RetryPolicy | None = None,
) -> Iterator[ExecutionContext]:
    """Install an :class:`ExecutionContext` for the duration of a block."""
    global _context
    previous = _context
    _context = ExecutionContext(jobs=max(1, int(jobs)), cache=cache, retry=retry)
    try:
        yield _context
    finally:
        _context = previous


def _ambient_selection() -> tuple | None:
    """Snapshot the ambient backend/channel for shipping to a worker.

    ContextVars do not cross process boundaries: without this, a campaign
    running under ``use_channel("sinr")`` (or a non-reference backend) with
    ``--jobs N`` would silently compute pairwise results in the workers
    while the parent caches them under the sinr namespace.  Returns None
    when both selections are the defaults, keeping the common submit
    payload unchanged.
    """
    from repro.phy.channel import DEFAULT_CHANNEL, current_channel
    from repro.sim.backend import current_backend

    backend = current_backend()
    channel = current_channel()
    if backend.is_reference and channel == DEFAULT_CHANNEL:
        return None
    return (backend.name, channel)


def execute_job(spec: JobSpec, ambient: tuple | None = None) -> dict[str, float]:
    """Worker entry point: run one seeded job (module-level, picklable).

    ``ambient`` re-establishes the submitting process's backend/channel
    selection (:func:`_ambient_selection`) inside the worker.
    """
    if ambient is None:
        return spec.run()
    from repro.phy.channel import use_channel
    from repro.sim.backend import use_backend

    backend_name, channel = ambient
    with use_backend(backend_name), use_channel(channel):
        return spec.run()


def _collect(futures: dict[Future, int], results: dict[int, dict[str, float]]) -> None:
    """Drain futures as they complete, keying results by seed."""
    pending = set(futures)
    while pending:
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            results[futures[future]] = dict(future.result())


class _JobState:
    """Book-keeping for one job across its attempts inside a WorkerPool run."""

    __slots__ = (
        "spec",
        "attempts",
        "future",
        "started",
        "deadline",
        "next_due",
        "finished",
    )

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.attempts = 0  # attempts that ran and failed with the job's own error
        self.future: Future | None = None
        self.started: float | None = None  # monotonic time first seen running
        self.deadline: float | None = None
        self.next_due = 0.0  # monotonic time before which backoff blocks resubmit
        self.finished = False


class WorkerPool:
    """Fault-tolerant job fan-out: process pool + watchdog + retry + fallback.

    Owns (and rebuilds) a :class:`ProcessPoolExecutor`.  ``run`` executes a
    batch of :class:`JobSpec` jobs under the configured
    :class:`~repro.runtime.retry.RetryPolicy` and returns
    ``(results, failures)`` — it never raises on job failure, so a campaign
    can record the failure and move on.  The pool survives:

    * **hung jobs** — with ``retry.timeout_s`` set, a watchdog SIGKILLs the
      workers once a job overruns its wall-clock budget (the clock starts
      when the job is first observed *running*); the timeout consumes one of
      the job's attempts, innocent co-scheduled jobs are resubmitted free;
    * **killed workers** — a broken pool is torn down and rebuilt; in-flight
      jobs are resubmitted without consuming their attempt budget (bounded
      globally by ``retry.max_pool_rebuilds``);
    * **a pool that keeps dying** — after ``max_pool_rebuilds`` spontaneous
      breaks the pool degrades to serial in-process execution, which cannot
      lose workers (timeouts are then unenforceable: a hung job hangs the
      run, the honest single-process behavior).

    Thread-compatibility: one ``run`` at a time per pool (the campaign
    runner's sequential point loop satisfies this trivially).
    """

    def __init__(self, jobs: int = 1, retry: RetryPolicy | None = None) -> None:
        self.jobs = max(1, int(jobs))
        self.retry = retry if retry is not None else RetryPolicy()
        self.rebuilds = 0  # spontaneous pool breaks (counts toward degradation)
        self.worker_kills = 0  # deliberate watchdog kills (does not)
        self.degraded = False
        self._executor: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------ lifecycle --

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def worker_pids(self) -> list[int]:
        """PIDs of live worker processes (chaos harness hook)."""
        executor = self._executor
        if executor is None:
            return []
        processes = getattr(executor, "_processes", None) or {}
        return [
            proc.pid
            for proc in list(processes.values())
            if proc.pid is not None and proc.is_alive()
        ]

    def inflight_count(self) -> int:
        """Jobs submitted and not yet settled (chaos harness hook)."""
        executor = self._executor
        if executor is None:
            return 0
        return len(getattr(executor, "_pending_work_items", None) or {})

    def _kill_workers(self) -> int:
        """SIGKILL every worker of the current executor; returns the count."""
        executor = self._executor
        if executor is None:
            return 0
        processes = list((getattr(executor, "_processes", None) or {}).values())
        killed = 0
        for proc in processes:
            try:
                if proc.is_alive():
                    proc.kill()
                    killed += 1
            except Exception:  # noqa: BLE001 - already-dead / platform quirks
                pass
        for proc in processes:
            try:
                proc.join(timeout=1.0)
            except Exception:  # noqa: BLE001
                pass
        return killed

    def _discard_executor(self) -> None:
        executor = self._executor
        self._executor = None
        if executor is not None:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # noqa: BLE001 - broken pools may refuse politely
                pass

    def shutdown(self) -> None:
        """Release the worker processes (idempotent)."""
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ run --

    def run(
        self,
        specs: Mapping[Any, JobSpec],
        report: ExecutionReport | None = None,
    ) -> tuple[dict[Any, dict[str, float]], dict[Any, str]]:
        """Execute every spec; returns ``(results, failures)`` keyed like specs."""
        if report is None:
            report = ExecutionReport()
        states = {key: _JobState(spec) for key, spec in specs.items()}
        results: dict[Any, dict[str, float]] = {}
        failures: dict[Any, str] = {}
        if self.jobs <= 1 or self.degraded:
            if self.degraded:
                report.degraded_to_serial = True
            self._run_serial(states, results, failures, report)
        else:
            self._run_parallel(states, results, failures, report)
        return results, failures

    # ------------------------------------------------------- parallel drive --

    def _run_parallel(
        self,
        states: dict[Any, _JobState],
        results: dict[Any, dict[str, float]],
        failures: dict[Any, str],
        report: ExecutionReport,
    ) -> None:
        retry = self.retry
        inflight: dict[Future, Any] = {}
        while True:
            remaining = [key for key, st in states.items() if not st.finished]
            if not remaining:
                return
            if self.degraded:
                report.degraded_to_serial = True
                self._run_serial(states, results, failures, report)
                return
            executor = self._ensure_executor()

            now = time.monotonic()
            backoff_pending = False
            broke = False
            for key in remaining:
                st = states[key]
                if st.future is not None:
                    continue
                if now < st.next_due:
                    backoff_pending = True
                    continue
                try:
                    st.future = executor.submit(
                        execute_job, st.spec, _ambient_selection()
                    )
                except (BrokenExecutor, RuntimeError):
                    self._on_pool_break(states, inflight, report)
                    broke = True
                    break
                st.started = None
                st.deadline = None
                inflight[st.future] = key
            if broke:
                continue

            if not inflight:
                # Everything runnable is waiting out a backoff window.
                due = min(
                    st.next_due
                    for key, st in states.items()
                    if not st.finished and st.future is None
                )
                delay = due - time.monotonic()
                if delay > 0:
                    time.sleep(min(delay, 0.25))
                continue

            if retry.timeout_s is not None:
                poll: float | None = _POLL_S
            elif backoff_pending:
                poll = 0.1
            else:
                poll = None  # nothing to watch: block until a future settles
            done, _ = wait(set(inflight), timeout=poll, return_when=FIRST_COMPLETED)

            for future in done:
                key = inflight.pop(future)
                st = states[key]
                st.future = None
                try:
                    outcome = dict(future.result())
                except BrokenExecutor:
                    # The pool died under this job; resubmission is free.
                    # (Recorded here: the future is already out of `inflight`,
                    # so _on_pool_break won't see it.)
                    st.next_due = 0.0
                    job = report.job(key)
                    job.retries += 1
                    job.errors.append(
                        "PoolBrokenError: a worker process died; job resubmitted"
                    )
                    broke = True
                except Exception as exc:  # noqa: BLE001 - job's own failure
                    self._record_failure(key, st, exc, failures, report)
                else:
                    results[key] = outcome
                    st.finished = True
                    report.job(key).ok = True
            if broke:
                self._on_pool_break(states, inflight, report)
                continue

            if retry.timeout_s is not None and inflight:
                self._watchdog(states, inflight, failures, report)

    def _watchdog(
        self,
        states: dict[Any, _JobState],
        inflight: dict[Future, Any],
        failures: dict[Any, str],
        report: ExecutionReport,
    ) -> None:
        """Kill the workers once any running job overruns its deadline."""
        retry = self.retry
        now = time.monotonic()
        overdue: list[Any] = []
        for future, key in inflight.items():
            st = states[key]
            if st.started is None:
                if future.running():
                    st.started = now
                    st.deadline = now + retry.timeout_s  # type: ignore[operator]
            elif st.deadline is not None and now >= st.deadline:
                overdue.append(key)
        if not overdue:
            return
        # ProcessPoolExecutor cannot cancel a running call; the only way to
        # reclaim the worker is to kill it (taking the pool down with it).
        killed = self._kill_workers()
        self.worker_kills += killed
        report.worker_kills += killed
        self._discard_executor()
        for future, key in list(inflight.items()):
            st = states[key]
            st.future = None
            if key in overdue:
                exc = JobTimeoutError(
                    f"job exceeded timeout_s={retry.timeout_s} and its worker "
                    "was killed"
                )
                self._record_failure(key, st, exc, failures, report, timeout=True)
            else:
                # Innocent bystander of the teardown: resubmit free of charge.
                report.job(key).retries += 1
                st.next_due = 0.0
        inflight.clear()

    def _on_pool_break(
        self,
        states: dict[Any, _JobState],
        inflight: dict[Future, Any],
        report: ExecutionReport,
    ) -> None:
        """The pool died spontaneously: rebuild (or degrade) and resubmit."""
        self._kill_workers()  # reap any stragglers of the broken pool
        self._discard_executor()
        self.rebuilds += 1
        report.pool_rebuilds += 1
        for future, key in list(inflight.items()):
            st = states[key]
            st.future = None
            st.next_due = 0.0
            job = report.job(key)
            job.retries += 1
            job.errors.append(
                "PoolBrokenError: a worker process died; job resubmitted"
            )
        inflight.clear()
        if self.rebuilds > self.retry.max_pool_rebuilds:
            self.degraded = True
            report.degraded_to_serial = True

    # --------------------------------------------------------- serial drive --

    def _run_serial(
        self,
        states: dict[Any, _JobState],
        results: dict[Any, dict[str, float]],
        failures: dict[Any, str],
        report: ExecutionReport,
    ) -> None:
        """In-process execution honoring the retry budget (no timeout kill)."""
        for key, st in states.items():
            if st.finished:
                continue
            while True:
                delay = st.next_due - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                try:
                    outcome = dict(execute_job(st.spec))
                except Exception as exc:  # noqa: BLE001 - job's own failure
                    self._record_failure(key, st, exc, failures, report)
                    if st.finished:
                        break
                    continue
                results[key] = outcome
                st.finished = True
                report.job(key).ok = True
                break

    # ----------------------------------------------------------- accounting --

    def _record_failure(
        self,
        key: Any,
        st: _JobState,
        exc: BaseException,
        failures: dict[Any, str],
        report: ExecutionReport,
        timeout: bool = False,
    ) -> None:
        retry = self.retry
        st.attempts += 1
        job = report.job(key)
        job.attempts += 1
        if timeout:
            job.timeouts += 1
        message = f"{type(exc).__name__}: {exc}"
        job.errors.append(message)
        if st.attempts >= retry.max_attempts or not retry.retryable(exc):
            st.finished = True
            failures[key] = message
            return
        job.retries += 1
        st.next_due = time.monotonic() + retry.backoff_s(st.attempts, key)


def map_over_seeds(
    run: JobSpec | Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    executor: Any | None = None,
    pool: WorkerPool | None = None,
    retry: RetryPolicy | None = None,
    report: ExecutionReport | None = None,
) -> dict[int, dict[str, float]]:
    """Run one seeded job per seed; return ``{seed: metrics}`` in seed order.

    ``run`` is either a :class:`JobSpec` (parallel- and cache-capable) or a
    plain callable (runs serially in-process — closures cannot cross a
    process boundary).  ``jobs``/``cache``/``retry`` default to the ambient
    :func:`execution` context.  ``pool`` reuses a caller-owned
    :class:`WorkerPool` (timeouts, retries, broken-pool recovery); without
    one, JobSpec fan-out builds an ephemeral WorkerPool.  ``executor``
    injects a bare ``submit()``-style executor instead (no fault tolerance;
    with a process executor the caller must pass a JobSpec).  When any seed
    exhausts its retry budget, successful sibling seeds are cached first and
    a :class:`JobExecutionError` carrying ``{seed: error}`` is raised.
    ``report`` (an :class:`~repro.runtime.retry.ExecutionReport`) collects
    retry/timeout accounting for the caller's manifest.
    """
    seed_list = [int(seed) for seed in seeds]
    if not seed_list:
        raise ValueError("need at least one seed")
    if len(set(seed_list)) != len(seed_list):
        raise ValueError(f"duplicate seeds: {seed_list}")

    context = current_context()
    if jobs is None:
        jobs = context.jobs
    if cache is None:
        cache = context.cache
    if retry is None:
        retry = context.retry

    results: dict[int, dict[str, float]] = {}
    if isinstance(run, JobSpec):
        specs = {seed: run.with_seed(seed) for seed in seed_list}
        pending: list[int] = []
        waiting: list[int] = []  # another process claimed these entries
        claims: dict[int, Any] = {}
        for seed in seed_list:
            hit = cache.get(specs[seed]) if cache is not None else None
            if hit is not None:
                results[seed] = hit
                continue
            if cache is not None:
                claim = cache.try_claim(specs[seed])
                if claim is None:
                    waiting.append(seed)
                    continue
                claims[seed] = claim
            pending.append(seed)
        failures: dict[Any, str] = {}
        try:
            if pending:
                if executor is not None:
                    ambient = _ambient_selection()
                    futures = {
                        executor.submit(execute_job, specs[s], ambient): s
                        for s in pending
                    }
                    _collect(futures, results)
                    if cache is not None:
                        for seed in pending:
                            cache.put(specs[seed], results[seed])
                else:
                    if pool is None:
                        owned = WorkerPool(jobs=min(jobs, len(pending)), retry=retry)
                    else:
                        owned = None
                    active = pool if pool is not None else owned
                    try:
                        ran, failures = active.run(
                            {seed: specs[seed] for seed in pending}, report=report
                        )
                    finally:
                        if owned is not None:
                            owned.shutdown()
                    results.update(ran)
                    if cache is not None:
                        for seed in pending:
                            if seed in ran:
                                cache.put(specs[seed], ran[seed])
        finally:
            for claim in claims.values():
                claim.release()
        # Entries a concurrent process claimed: wait for its store instead of
        # recomputing.  If the holder crashed or never publishes, (re)claim
        # and compute in-process — duplicated work at worst, never a wrong or
        # torn result (stores are atomic and keyed identically).
        for seed in waiting:
            outcome = cache.wait_for(specs[seed])
            if outcome is None:
                claim = cache.try_claim(specs[seed])
                try:
                    outcome = dict(execute_job(specs[seed]))
                    cache.put(specs[seed], outcome)
                finally:
                    if claim is not None:
                        claim.release()
            results[seed] = outcome
        if failures:
            raise JobExecutionError(failures)
    elif executor is not None:
        futures = {executor.submit(run, seed): seed for seed in seed_list}
        _collect(futures, results)
    else:
        for seed in seed_list:
            results[seed] = dict(run(seed))
    return {seed: results[seed] for seed in seed_list}
