"""Retry, timeout and backoff policy for fan-out job execution.

One :class:`RetryPolicy` governs how :class:`repro.runtime.pool.WorkerPool`
reacts when a job misbehaves:

* a job that raises a *retryable* exception is re-run after an exponential
  backoff with deterministic jitter, up to ``max_attempts`` total attempts;
* a job that exceeds ``timeout_s`` of wall clock is killed (its worker
  process is SIGKILLed by the watchdog) and the timeout consumes one
  attempt;
* a broken process pool is rebuilt up to ``max_pool_rebuilds`` times; after
  that the pool degrades to serial in-process execution, which cannot lose
  workers (but also cannot enforce timeouts — a hung job then hangs the
  run, which is the honest fallback behavior).

Determinism note: the jitter is *deterministic* — seeded from the job key
and attempt number — so two identical campaign runs retry on an identical
schedule.  Nothing here touches simulation RNG streams; retries re-run the
exact same :class:`~repro.runtime.jobspec.JobSpec`, so a retried job returns
bit-identical metrics to an undisturbed one.

:class:`ExecutionReport` accumulates what actually happened (per-job
attempts, retries, errors; pool rebuilds; degradation) so callers — the
campaign runner foremost — can persist the retry budget spent into
``manifest.json``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any


class JobTimeoutError(RuntimeError):
    """A job exceeded the per-job wall-clock budget and was killed."""


class PoolBrokenError(RuntimeError):
    """The process pool died under a job (worker killed, interpreter lost)."""


#: Exception types that indicate a deterministic caller error — retrying the
#: identical JobSpec can only reproduce them, so the budget is not wasted.
NON_RETRYABLE = (ValueError, TypeError, KeyError, AttributeError)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before declaring a job failed."""

    #: Total attempts per job (1 = no retry).
    max_attempts: int = 3
    #: Per-job wall clock budget; None disables the watchdog.  The clock
    #: starts when the job is first observed *running* (not while queued
    #: behind other jobs), so a deep queue cannot fake a timeout.
    timeout_s: float | None = None
    #: First backoff delay; subsequent delays multiply by ``backoff_factor``.
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    #: Jitter fraction added on top of the exponential delay (0 disables).
    jitter: float = 0.1
    #: Process-pool rebuilds tolerated before degrading to serial execution.
    max_pool_rebuilds: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    def retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth another attempt of the same job."""
        return not isinstance(exc, NON_RETRYABLE)

    def backoff_s(self, attempt: int, key: Any = None) -> float:
        """Delay before attempt ``attempt + 1`` (``attempt`` >= 1 completed).

        Exponential with a bounded ceiling plus *deterministic* jitter: the
        jitter RNG is seeded from ``(key, attempt)``, so identical reruns
        back off identically while distinct jobs still de-synchronize.
        """
        delay = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1),
        )
        if self.jitter > 0:
            rng = random.Random(f"{key!r}:{attempt}")
            delay *= 1.0 + self.jitter * rng.random()
        return delay


@dataclass
class JobReport:
    """What happened to one job across all its attempts."""

    key: Any
    attempts: int = 0  # attempts that ran and failed with the job's own error
    retries: int = 0  # total re-runs for any reason (errors + pool breaks)
    timeouts: int = 0
    ok: bool = False
    errors: list[str] = field(default_factory=list)

    @property
    def last_error(self) -> str | None:
        return self.errors[-1] if self.errors else None


@dataclass
class ExecutionReport:
    """Aggregate fault/retry accounting for one ``WorkerPool.run`` call."""

    jobs: dict[Any, JobReport] = field(default_factory=dict)
    pool_rebuilds: int = 0
    worker_kills: int = 0
    degraded_to_serial: bool = False

    def job(self, key: Any) -> JobReport:
        report = self.jobs.get(key)
        if report is None:
            report = self.jobs[key] = JobReport(key=key)
        return report

    @property
    def total_retries(self) -> int:
        return sum(job.retries for job in self.jobs.values())

    @property
    def total_timeouts(self) -> int:
        return sum(job.timeouts for job in self.jobs.values())

    @property
    def last_error(self) -> str | None:
        """Most recent error message across all jobs (for status surfaces)."""
        last: str | None = None
        for job in self.jobs.values():
            if job.errors:
                last = job.errors[-1]
        return last

    def as_dict(self) -> dict[str, Any]:
        """Plain-data summary for manifests / CLI output."""
        return {
            "retries": self.total_retries,
            "timeouts": self.total_timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "worker_kills": self.worker_kills,
            "degraded_to_serial": self.degraded_to_serial,
            "last_error": self.last_error,
        }
