"""On-disk result cache for seeded simulation points.

Entries live under ``results/.cache/`` (one JSON file per point) and are
keyed by a digest of (runner path, canonical kwargs, seed, code-version
token), so a repeated ``benchmarks/run_all.py`` invocation skips every
already-computed point while any code change invalidates the whole cache at
once.

Every entry carries a checksum over its result payload.  A corrupted,
truncated or checksum-mismatched entry is *quarantined* (moved aside into
``<root>/quarantine/``) and treated as a miss — the engine recomputes and
rewrites a clean entry.  The cache can never poison results and never
raises on bad entries; ``stats()['quarantined']`` counts the incidents.
Writes go through the fsync-ing atomic helper in :mod:`repro.runtime.io`,
so a SIGKILL mid-store leaves either the old entry or the new one.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from functools import lru_cache
from pathlib import Path

from repro.runtime.io import atomic_write_text
from repro.runtime.jobspec import JobSpec

#: Default cache location, relative to the repository's results directory.
DEFAULT_CACHE_DIRNAME = ".cache"

#: Subdirectory (under the cache root) where corrupt entries are moved for
#: post-mortem inspection instead of being served or crashing the run.
QUARANTINE_DIRNAME = "quarantine"

#: Manual cache-epoch fence, mixed into :func:`code_version_token`.  Bump it
#: whenever results must be recomputed for a reason the source digest cannot
#: see — e.g. the simulation-core fast path, which is bit-exact for equal
#: seeds but changed which module computes each cached quantity.
CODE_VERSION_SALT = "backend-vectorized-2"


@lru_cache(maxsize=1)
def _source_token() -> str:
    """Digest of salt + every ``repro`` source file (backend-independent)."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    digest.update(CODE_VERSION_SALT.encode())
    digest.update(b"\0")
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def code_version_token() -> str:
    """Digest of every ``repro`` source file: the cache's version fence.

    Any edit anywhere in the package changes the token, so stale results can
    never be served after a code change.  Coarse but safe — and cheap enough
    to compute once per process (the source digest is memoized).
    ``CODE_VERSION_SALT`` is folded in first, so an epoch bump invalidates
    every entry even with identical sources.

    The ambient simulation backend's ``cache_key`` is folded in last: a
    backend that is bit-exact against the reference contributes an empty key
    (equal seeds produce equal floats, so scalar and vectorized runs share
    entries interchangeably), while a backend that registered its own golden
    set gets its own cache namespace — per the equivalence contract in
    :mod:`repro.sim.backend`, it may never serve reference-keyed results.
    """
    from repro.sim.backend import current_backend

    token = _source_token()
    backend_key = current_backend().cache_key
    if not backend_key:
        return token
    digest = hashlib.sha256(f"{token}:{backend_key}".encode())
    return digest.hexdigest()[:16]


def result_checksum(result: dict) -> str:
    """Checksum of a result payload (canonical JSON, order-independent)."""
    blob = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class ResultCache:
    """Filesystem cache of ``{metric: value}`` dicts, one file per JobSpec."""

    def __init__(self, root: str | Path, version: str | None = None) -> None:
        self.root = Path(root)
        self.version = version if version is not None else code_version_token()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0
        self.quarantined = 0

    def path_for(self, spec: JobSpec) -> Path:
        return self.root / f"{spec.cache_key(self.version)}.json"

    def get(self, spec: JobSpec) -> dict[str, float] | None:
        """Cached result for ``spec``, or None (corruption counts as a miss)."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            result = payload["result"]
            if not isinstance(result, dict):
                raise ValueError("cache entry result is not a dict")
            stored = payload["checksum"]
            computed = result_checksum(result)
            if stored != computed:
                raise ValueError(
                    f"checksum mismatch (stored {stored}, computed {computed})"
                )
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, KeyError, ValueError, TypeError) as exc:
            self.errors += 1
            self.misses += 1
            self._quarantine(path, exc)
            return None
        self.hits += 1
        return dict(result)

    def _quarantine(self, path: Path, exc: Exception) -> None:
        """Move a corrupt entry aside (never served again, kept for debugging)."""
        destination = self.root / QUARANTINE_DIRNAME / path.name
        moved = False
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
            moved = True
        except OSError:
            try:  # cannot move (e.g. dir vanished): drop it so it can't recur
                path.unlink()
            except OSError:
                pass
        self.quarantined += 1
        where = f"quarantined to {destination.parent.name}/" if moved else "removed"
        warnings.warn(
            f"ignoring corrupted cache entry {path.name}: {exc}; "
            f"{where}, recomputing",
            RuntimeWarning,
            stacklevel=3,
        )

    def put(self, spec: JobSpec, result: dict[str, float]) -> None:
        """Store a result durably and atomically (fsync + rename)."""
        path = self.path_for(spec)
        result = dict(result)
        payload = {
            "runner": spec.runner,
            "seed": spec.seed,
            "version": self.version,
            "checksum": result_checksum(result),
            "result": result,
        }
        atomic_write_text(path, json.dumps(payload, sort_keys=True))
        self.stores += 1

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
            "quarantined": self.quarantined,
        }
