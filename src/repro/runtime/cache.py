"""On-disk result cache for seeded simulation points.

Entries live under ``results/.cache/`` (one JSON file per point) and are
keyed by a digest of (runner path, canonical kwargs, seed, code-version
token), so a repeated ``benchmarks/run_all.py`` invocation skips every
already-computed point while any code change invalidates the whole cache at
once.  Corrupted or unreadable entries are treated as misses (with a
warning) and recomputed — the cache can never poison results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from functools import lru_cache
from pathlib import Path

from repro.runtime.jobspec import JobSpec

#: Default cache location, relative to the repository's results directory.
DEFAULT_CACHE_DIRNAME = ".cache"

#: Manual cache-epoch fence, mixed into :func:`code_version_token`.  Bump it
#: whenever results must be recomputed for a reason the source digest cannot
#: see — e.g. the simulation-core fast path, which is bit-exact for equal
#: seeds but changed which module computes each cached quantity.
CODE_VERSION_SALT = "core-fastpath-1"


@lru_cache(maxsize=1)
def code_version_token() -> str:
    """Digest of every ``repro`` source file: the cache's version fence.

    Any edit anywhere in the package changes the token, so stale results can
    never be served after a code change.  Coarse but safe — and cheap enough
    to compute once per process.  ``CODE_VERSION_SALT`` is folded in first,
    so an epoch bump invalidates every entry even with identical sources.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    digest.update(CODE_VERSION_SALT.encode())
    digest.update(b"\0")
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


class ResultCache:
    """Filesystem cache of ``{metric: value}`` dicts, one file per JobSpec."""

    def __init__(self, root: str | Path, version: str | None = None) -> None:
        self.root = Path(root)
        self.version = version if version is not None else code_version_token()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0

    def path_for(self, spec: JobSpec) -> Path:
        return self.root / f"{spec.cache_key(self.version)}.json"

    def get(self, spec: JobSpec) -> dict[str, float] | None:
        """Cached result for ``spec``, or None (corruption counts as a miss)."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            result = payload["result"]
            if not isinstance(result, dict):
                raise ValueError("cache entry result is not a dict")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, KeyError, ValueError, TypeError) as exc:
            self.errors += 1
            self.misses += 1
            warnings.warn(
                f"ignoring corrupted cache entry {path.name}: {exc}; recomputing",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        self.hits += 1
        return dict(result)

    def put(self, spec: JobSpec, result: dict[str, float]) -> None:
        """Store a result atomically (temp file + rename)."""
        path = self.path_for(spec)
        payload = {
            "runner": spec.runner,
            "seed": spec.seed,
            "version": self.version,
            "result": dict(result),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
        }
