"""On-disk result cache for seeded simulation points.

Entries live under ``results/.cache/`` (one JSON file per point) and are
keyed by a digest of (runner path, canonical kwargs, seed, code-version
token), so a repeated ``benchmarks/run_all.py`` invocation skips every
already-computed point while any code change invalidates the whole cache at
once.

Every entry carries a checksum over its result payload.  A corrupted,
truncated or checksum-mismatched entry is *quarantined* (moved aside into
``<root>/quarantine/``) and treated as a miss — the engine recomputes and
rewrites a clean entry.  The cache can never poison results and never
raises on bad entries; ``stats()['quarantined']`` counts the incidents.
Writes go through the fsync-ing atomic helper in :mod:`repro.runtime.io`,
so a SIGKILL mid-store leaves either the old entry or the new one.

Cross-process coordination: several processes may share one cache root (the
fleet tier points every shard worker at ``<out>/cache``).  Atomic writes
already make concurrent stores safe — the race only *wastes* work, never
tears an entry — so the per-entry locks here are purely advisory:
:meth:`ResultCache.try_claim` plants an ``O_EXCL`` lock file before an
expensive computation and :meth:`ResultCache.wait_for` lets the losing
process block until the winner publishes the entry instead of recomputing
it.  A claim whose holder died (stale pid, or lock older than
``lock_stale_s``) is broken and the entry recomputed — a crashed shard can
delay a sibling, never wedge it.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from functools import lru_cache
from pathlib import Path

from repro.runtime.io import atomic_write_text
from repro.runtime.jobspec import JobSpec

#: Default cache location, relative to the repository's results directory.
DEFAULT_CACHE_DIRNAME = ".cache"

#: Subdirectory (under the cache root) where corrupt entries are moved for
#: post-mortem inspection instead of being served or crashing the run.
QUARANTINE_DIRNAME = "quarantine"

#: Subdirectory (under the cache root) holding advisory per-entry locks.
LOCKS_DIRNAME = "locks"

#: Manual cache-epoch fence, mixed into :func:`code_version_token`.  Bump it
#: whenever results must be recomputed for a reason the source digest cannot
#: see — e.g. the simulation-core fast path, which is bit-exact for equal
#: seeds but changed which module computes each cached quantity.
CODE_VERSION_SALT = "channel-sinr-3"


@lru_cache(maxsize=1)
def _source_token() -> str:
    """Digest of salt + every ``repro`` source file (backend-independent)."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    digest.update(CODE_VERSION_SALT.encode())
    digest.update(b"\0")
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def code_version_token() -> str:
    """Digest of every ``repro`` source file: the cache's version fence.

    Any edit anywhere in the package changes the token, so stale results can
    never be served after a code change.  Coarse but safe — and cheap enough
    to compute once per process (the source digest is memoized).
    ``CODE_VERSION_SALT`` is folded in first, so an epoch bump invalidates
    every entry even with identical sources.

    The ambient simulation backend's and channel model's ``cache_key`` values
    are folded in last: a backend that is bit-exact against the reference (and
    the reference ``pairwise`` channel) contributes an empty key, so scalar
    and vectorized pairwise runs share entries interchangeably, while a
    backend with its own golden set — or a channel model with different
    interference semantics, like ``sinr`` — gets its own cache namespace.
    Per the equivalence contracts in :mod:`repro.sim.backend` and
    :mod:`repro.phy.channel`, results computed under different semantics may
    never be served interchangeably.
    """
    from repro.phy.channel import current_channel
    from repro.sim.backend import current_backend

    token = _source_token()
    keys = [current_backend().cache_key, current_channel().cache_key]
    extra = ":".join(k for k in keys if k)
    if not extra:
        return token
    digest = hashlib.sha256(f"{token}:{extra}".encode())
    return digest.hexdigest()[:16]


def result_checksum(result: dict) -> str:
    """Checksum of a result payload (canonical JSON, order-independent)."""
    blob = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class EntryClaim:
    """Advisory ownership of one cache entry while it is being computed.

    Created by :meth:`ResultCache.try_claim`; :meth:`release` removes the
    lock file (idempotent, and a no-op on someone else's lock — the path is
    only ever unlinked by the claim object that created it).
    """

    __slots__ = ("path", "_owned")

    def __init__(self, path: Path) -> None:
        self.path = path
        self._owned = True

    def release(self) -> None:
        if not self._owned:
            return
        self._owned = False
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "EntryClaim":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.release()


class ResultCache:
    """Filesystem cache of ``{metric: value}`` dicts, one file per JobSpec."""

    def __init__(
        self,
        root: str | Path,
        version: str | None = None,
        lock_stale_s: float = 900.0,
    ) -> None:
        self.root = Path(root)
        self.version = version if version is not None else code_version_token()
        #: Age past which a lock whose holder cannot be probed is presumed
        #: abandoned (holders of *known-dead* pids are broken immediately).
        self.lock_stale_s = lock_stale_s
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0
        self.quarantined = 0
        self.claims = 0
        self.claim_conflicts = 0
        self.lock_breaks = 0
        self.waits = 0

    def path_for(self, spec: JobSpec) -> Path:
        return self.root / f"{spec.cache_key(self.version)}.json"

    def lock_path_for(self, spec: JobSpec) -> Path:
        return self.root / LOCKS_DIRNAME / f"{spec.cache_key(self.version)}.lock"

    def _read_entry(self, path: Path) -> dict[str, float] | None:
        """Read + verify one entry; corruption quarantines and returns None.

        Does not touch the hit/miss counters — :meth:`get` and
        :meth:`wait_for` account for their own outcomes.
        """
        try:
            payload = json.loads(path.read_text())
            result = payload["result"]
            if not isinstance(result, dict):
                raise ValueError("cache entry result is not a dict")
            stored = payload["checksum"]
            computed = result_checksum(result)
            if stored != computed:
                raise ValueError(
                    f"checksum mismatch (stored {stored}, computed {computed})"
                )
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, KeyError, ValueError, TypeError) as exc:
            self.errors += 1
            self._quarantine(path, exc)
            return None
        return dict(result)

    def get(self, spec: JobSpec) -> dict[str, float] | None:
        """Cached result for ``spec``, or None (corruption counts as a miss)."""
        result = self._read_entry(self.path_for(spec))
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    # ------------------------------------------------------ advisory locks --

    def try_claim(self, spec: JobSpec) -> EntryClaim | None:
        """Claim the right to compute ``spec``'s entry; None if already held.

        The claim is an ``O_EXCL``-created lock file carrying the holder's
        pid.  A lock whose holder is a dead process (or unreadable and older
        than ``lock_stale_s``) is broken and re-claimed, so a SIGKILLed
        worker never wedges its siblings.  Purely advisory: callers that
        skip claiming still behave correctly, they just risk computing the
        same entry twice.
        """
        path = self.lock_path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        for _attempt in (0, 1):
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                if self._lock_is_stale(path):
                    self.lock_breaks += 1
                    try:
                        path.unlink()
                    except OSError:
                        pass
                    continue  # retry the O_EXCL create once
                self.claim_conflicts += 1
                return None
            except OSError:
                return None  # cannot lock (exotic fs): fall back to no claim
            with os.fdopen(fd, "w") as handle:
                handle.write(str(os.getpid()))
            self.claims += 1
            return EntryClaim(path)
        self.claim_conflicts += 1
        return None

    def _lock_is_stale(self, path: Path) -> bool:
        """Whether a held lock's owner is provably or presumably gone."""
        try:
            pid = int(path.read_text().strip())
        except (OSError, ValueError):
            pid = None  # torn/unreadable lock: age decides below
        if pid is not None:
            if pid == os.getpid():
                return False  # our own claim (another thread of this process)
            try:
                os.kill(pid, 0)
                return False  # holder is alive
            except ProcessLookupError:
                return True  # holder died without releasing
            except OSError:
                pass  # cannot probe (e.g. other user's pid): age decides
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return False  # lock vanished: released, not stale
        return age > self.lock_stale_s

    def wait_for(
        self,
        spec: JobSpec,
        timeout_s: float | None = None,
        poll_s: float = 0.05,
    ) -> dict[str, float] | None:
        """Wait for another process's claim on ``spec`` to publish the entry.

        Returns the entry as soon as it appears (a hit).  Returns None — a
        miss; the caller should compute the entry itself — when the lock is
        released or goes stale without an entry appearing (the holder
        crashed mid-compute) or ``timeout_s`` (default ``lock_stale_s``)
        elapses.
        """
        path = self.path_for(spec)
        lock = self.lock_path_for(spec)
        deadline = time.monotonic() + (
            timeout_s if timeout_s is not None else self.lock_stale_s
        )
        self.waits += 1
        while True:
            result = self._read_entry(path)
            if result is not None:
                self.hits += 1
                return result
            if not lock.exists() or self._lock_is_stale(lock):
                # The holder is gone.  One more read closes the race where
                # it published the entry between our read and its release.
                result = self._read_entry(path)
                if result is not None:
                    self.hits += 1
                    return result
                self.misses += 1
                return None
            if time.monotonic() >= deadline:
                self.misses += 1
                return None
            time.sleep(poll_s)

    def _quarantine(self, path: Path, exc: Exception) -> None:
        """Move a corrupt entry aside (never served again, kept for debugging)."""
        destination = self.root / QUARANTINE_DIRNAME / path.name
        moved = False
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
            moved = True
        except OSError:
            try:  # cannot move (e.g. dir vanished): drop it so it can't recur
                path.unlink()
            except OSError:
                pass
        self.quarantined += 1
        where = f"quarantined to {destination.parent.name}/" if moved else "removed"
        warnings.warn(
            f"ignoring corrupted cache entry {path.name}: {exc}; "
            f"{where}, recomputing",
            RuntimeWarning,
            stacklevel=3,
        )

    def put(self, spec: JobSpec, result: dict[str, float]) -> None:
        """Store a result durably and atomically (fsync + rename)."""
        path = self.path_for(spec)
        result = dict(result)
        payload = {
            "runner": spec.runner,
            "seed": spec.seed,
            "version": self.version,
            "checksum": result_checksum(result),
            "result": result,
        }
        atomic_write_text(path, json.dumps(payload, sort_keys=True))
        self.stores += 1

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
            "quarantined": self.quarantined,
            "claims": self.claims,
            "claim_conflicts": self.claim_conflicts,
            "lock_breaks": self.lock_breaks,
            "waits": self.waits,
        }
