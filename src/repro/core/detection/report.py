"""Shared detection bookkeeping for all GRC detectors."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass(frozen=True)
class DetectionEvent:
    """One misbehavior detection."""

    time_us: float
    detector: str  # e.g. "nav", "rssi-spoof", "cross-layer", "fake-ack"
    observer: str  # node that detected
    offender: str  # node (or claimed node) the evidence points at
    detail: str = ""


@dataclass
class DetectionReport:
    """Accumulates detections across detectors and nodes for one run."""

    events: list[DetectionEvent] = field(default_factory=list)
    max_events: int = 100_000

    def record(
        self, time_us: float, detector: str, observer: str, offender: str, detail: str = ""
    ) -> None:
        if len(self.events) < self.max_events:
            self.events.append(
                DetectionEvent(time_us, detector, observer, offender, detail)
            )

    def count(self, detector: str | None = None, offender: str | None = None) -> int:
        return sum(
            1
            for e in self.events
            if (detector is None or e.detector == detector)
            and (offender is None or e.offender == offender)
        )

    def offenders(self, detector: str | None = None) -> Counter:
        """Detections per offender — the output an operator would act on."""
        return Counter(
            e.offender
            for e in self.events
            if detector is None or e.detector == detector
        )

    def __bool__(self) -> bool:
        return bool(self.events)
