"""Inflated-NAV detection and correction (Section VII-A).

Two cases, exactly as the paper describes:

* A validator **within range of the sender** overheard the RTS of the current
  exchange, so it knows the correct CTS NAV (RTS NAV minus SIFS and the CTS
  airtime) and can clamp precisely.
* A validator **out of the sender's range** bounds the reservation using the
  largest Internet packet (Ethernet MTU, 1500 bytes by default).

ACK NAV must be zero without fragmentation; data-frame NAV must be
SIFS + ACK.  Anything above expectation (plus a small tolerance) is recorded
as a detection and replaced by the expected value, which is what the
validating node then uses for its own virtual carrier sense.
"""

from __future__ import annotations

from repro.core.detection.report import DetectionReport
from repro.mac.frames import Frame, FrameKind, max_cts_nav, rts_duration
from repro.phy.params import PhyParams


class NavValidator:
    """Per-node NAV validation state (installed as ``mac.nav_validator``)."""

    def __init__(
        self,
        phy: PhyParams,
        node_name: str,
        report: DetectionReport | None = None,
        mtu_bytes: int = 1500,
        tolerance_us: float = 5.0,
    ) -> None:
        self.phy = phy
        self.node_name = node_name
        self.report = report if report is not None else DetectionReport()
        self.mtu_bytes = mtu_bytes
        self.tolerance_us = tolerance_us
        self.corrections = 0
        # Responder name -> (expected CTS NAV, expiry time): filled from
        # overheard RTS frames of exchanges in progress.
        self._expected_cts: dict[str, tuple[float, float]] = {}

    # ------------------------------------------------------------------------

    def observe_and_validate(self, frame: Frame, now: float, rssi_db: float) -> float:
        """Return the NAV value this node should actually honor for ``frame``."""
        kind = frame.kind
        if kind is FrameKind.RTS:
            self._note_rts(frame, now)
            expected = rts_duration(self.phy, self.mtu_bytes)
        elif kind is FrameKind.CTS:
            expected = self._expected_cts_nav(frame, now)
        elif kind is FrameKind.DATA:
            expected = self.phy.sifs + self.phy.ack_time
        else:  # ACK: zero without fragmentation
            expected = 0.0

        if frame.duration > expected + self.tolerance_us:
            self.corrections += 1
            self.report.record(
                now,
                "nav",
                self.node_name,
                frame.src,
                f"{kind.value} NAV {frame.duration:.0f}us > expected {expected:.0f}us",
            )
            return expected
        return frame.duration

    # ------------------------------------------------------------------------

    def _note_rts(self, rts: Frame, now: float) -> None:
        # The RTS NAV itself may be inflated (TCP greedy receivers transmit
        # RTS for their TCP ACKs), so bound it before deriving the CTS
        # expectation from it.
        claimed = min(rts.duration, rts_duration(self.phy, self.mtu_bytes))
        expected_cts = max(0.0, claimed - self.phy.sifs - self.phy.cts_time)
        self._expected_cts[rts.dst] = (expected_cts, now + claimed + self.tolerance_us)

    def _expected_cts_nav(self, cts: Frame, now: float) -> float:
        entry = self._expected_cts.get(cts.src)
        if entry is not None:
            expected, expires = entry
            if now <= expires:
                return expected
            del self._expected_cts[cts.src]
        # Out of the sender's range: fall back to the MTU bound.
        return max_cts_nav(self.phy, self.mtu_bytes)
