"""Streaming (online) misbehavior detection over frame-trace events.

The GRC detectors in :mod:`nav <repro.core.detection.nav>` / :mod:`spoof
<repro.core.detection.spoof>` / :mod:`fake <repro.core.detection.fake>` live
inside the MAC and see receptions; the *offline* analysis path
(:mod:`repro.core.detection.offline`) sees a complete
:class:`~repro.stats.trace.TraceRecord` list after the run.  Neither scales
to the ROADMAP north-star of watching production traffic continuously: the
offline pass retains the full trace, and a full trace grows without bound.

This module rebuilds trace-level detection as a **streaming pipeline**:
each :class:`StreamingDetector` consumes one :class:`TraceRecord` at a time,
emits zero or more :class:`~repro.core.detection.report.DetectionEvent`\\ s,
and keeps only bounded sliding-window state — ``state_size()`` never exceeds
``bound()``, which the differential harness (:mod:`repro.detect.diff`)
asserts as a memory high-water mark.  Detector state is snapshottable to
plain JSON-able data, so a monitor can checkpoint/restore mid-stream and a
trace can be replayed in arbitrary chunks with identical output (the
chunking-invariance property test in tests/test_streaming_detection.py).

The correctness contract is *event-identity with the offline analyzers* on
every trace: ``repro detect diff`` compares canonicalized event lines from
both implementations on the committed golden traces and on fuzzed
scenarios, exactly as the PR-6 backend gate compares scalar vs vectorized
frame traces.

Live wiring: :class:`DetectionTap` wraps ``medium.transmit`` (the same seam
:class:`~repro.stats.trace.FrameTracer` uses) so the pipeline runs *during*
simulation without retaining records; :func:`live_detection` is the ambient
opt-in — every :class:`~repro.net.scenario.Scenario` built inside the
context attaches a tap, mirroring how :func:`repro.obs.capture` attaches
telemetry.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterable, Iterator

from repro.core.detection.report import DetectionEvent, DetectionReport
from repro.mac.frames import max_cts_nav, rts_duration
from repro.phy.params import PhyParams, dot11b

__all__ = [
    "StreamingDetector",
    "StreamingNavDetector",
    "StreamingImpersonationDetector",
    "StreamingRtsFloodDetector",
    "StreamingDetectionPipeline",
    "DetectionTap",
    "LiveDetectionSession",
    "live_detection",
    "current_live_detection",
    "default_pipeline",
]

#: Observer name recorded by trace-level detectors: they watch the medium
#: itself (like the paper's "any node can run the scheme" monitor), not one
#: station's receptions.
TRACE_OBSERVER = "monitor"


class StreamingDetector:
    """One incremental detector: feed events in, get detections out.

    Subclasses implement :meth:`feed` (and the state protocol); the base
    class pins down the contract:

    * ``feed(record)`` must be **chunking-invariant**: the emitted event
      sequence depends only on the records fed so far, never on call
      boundaries.
    * ``snapshot()`` returns plain JSON-able data; ``restore(state)`` on a
      fresh instance resumes the stream with identical future output.
    * ``state_size()`` (retained items) must never exceed ``bound()`` —
      the constant-memory promise the diff harness asserts.
    """

    #: Detector label used in emitted events (e.g. ``"nav"``).
    name: str = "streaming"

    def feed(self, record: Any) -> list[DetectionEvent]:
        raise NotImplementedError

    def snapshot(self) -> dict[str, Any]:
        return {}

    def restore(self, state: dict[str, Any]) -> None:
        if state:
            raise ValueError(f"{type(self).__name__} expected empty state")

    def state_size(self) -> int:
        """Number of retained state items (window entries, table rows)."""
        return 0

    def bound(self) -> int:
        """Hard upper bound on :meth:`state_size` — the memory contract."""
        return 0


class StreamingNavDetector(StreamingDetector):
    """Trace-level NAV-inflation detection (the paper's Section VII-A rule).

    Mirrors :class:`~repro.core.detection.nav.NavValidator` but consumes the
    transmission stream instead of one station's receptions: every frame's
    claimed NAV is checked against the kind-specific expectation, with CTS
    expectations derived from the most recent overheard RTS of the exchange.

    State is one ``responder -> (expected CTS NAV, expiry)`` entry per
    in-flight RTS/CTS exchange.  Expired entries are purged on every feed;
    purging is output-neutral because an expired entry and an absent one
    both fall back to the MTU bound — which is what keeps the table bounded
    by the number of exchanges that can overlap one maximum NAV interval.
    """

    name = "nav"

    def __init__(
        self,
        phy: PhyParams | None = None,
        observer: str = TRACE_OBSERVER,
        mtu_bytes: int = 1500,
        tolerance_us: float = 5.0,
        max_tracked: int = 4096,
    ) -> None:
        self.phy = phy if phy is not None else dot11b()
        self.observer = observer
        self.mtu_bytes = mtu_bytes
        self.tolerance_us = tolerance_us
        self.max_tracked = max_tracked
        self._expected_cts: dict[str, tuple[float, float]] = {}
        # Cache the two per-PHY constants; they are pure functions of phy.
        self._rts_expected = rts_duration(self.phy, mtu_bytes)
        self._cts_fallback = max_cts_nav(self.phy, mtu_bytes)

    def feed(self, record: Any) -> list[DetectionEvent]:
        now = record.time_us
        kind = record.kind
        if kind == "RTS":
            self._purge(now)
            claimed = min(record.nav_us, self._rts_expected)
            expected_cts = max(0.0, claimed - self.phy.sifs - self.phy.cts_time)
            self._expected_cts[record.dst] = (
                expected_cts,
                now + claimed + self.tolerance_us,
            )
            expected = self._rts_expected
        elif kind == "CTS":
            entry = self._expected_cts.get(record.src)
            if entry is not None and now <= entry[1]:
                expected = entry[0]
            else:
                if entry is not None:
                    del self._expected_cts[record.src]
                expected = self._cts_fallback
        elif kind == "DATA":
            expected = self.phy.sifs + self.phy.ack_time
        else:  # ACK: zero without fragmentation
            expected = 0.0
        if record.nav_us > expected + self.tolerance_us:
            return [
                DetectionEvent(
                    now,
                    self.name,
                    self.observer,
                    record.src,
                    f"{kind} NAV {record.nav_us:.0f}us > expected {expected:.0f}us",
                )
            ]
        return []

    def _purge(self, now: float) -> None:
        if self._expected_cts:
            expired = [r for r, (_, exp) in self._expected_cts.items() if exp < now]
            for responder in expired:
                del self._expected_cts[responder]

    def snapshot(self) -> dict[str, Any]:
        return {
            "expected_cts": {
                r: [expected, expires]
                for r, (expected, expires) in self._expected_cts.items()
            }
        }

    def restore(self, state: dict[str, Any]) -> None:
        self._expected_cts = {
            r: (float(expected), float(expires))
            for r, (expected, expires) in state.get("expected_cts", {}).items()
        }

    def state_size(self) -> int:
        return len(self._expected_cts)

    def bound(self) -> int:
        return self.max_tracked


class StreamingImpersonationDetector(StreamingDetector):
    """Frames whose claimed source differs from the transmitting radio.

    The streaming counterpart of
    :meth:`repro.stats.trace.FrameTracer.impersonations` — the omniscient
    view of misbehavior 2 (spoofed ACKs), usable wherever the monitor can
    attribute transmissions to radios (simulation, or a testbed sniffer
    with per-antenna attribution).  Stateless.
    """

    name = "impersonation"

    def __init__(self, observer: str = TRACE_OBSERVER) -> None:
        self.observer = observer

    def feed(self, record: Any) -> list[DetectionEvent]:
        if record.src != record.sender:
            return [
                DetectionEvent(
                    record.time_us,
                    self.name,
                    self.observer,
                    record.sender,
                    f"{record.kind} claims src {record.src}",
                )
            ]
        return []


class StreamingRtsFloodDetector(StreamingDetector):
    """RTS-flood detection: too many *unanswered* RTS in a sliding window.

    The attack (see :class:`repro.faults.rtsflood.RtsFloodConfig`) transmits
    RTS frames carrying a large NAV to a station that will never reply, so
    every overhearer defers for the claimed reservation while the flooder
    pays only the RTS airtime.  Honest senders also emit RTS bursts under
    contention, but theirs are followed by DATA; the discriminating
    statistic is therefore ``#RTS - #DATA`` per sender over a sliding
    window.  When the excess exceeds ``threshold`` the sender is flagged,
    then the alarm re-arms after ``cooldown_us`` (one detection per
    sustained burst, not one per frame).

    The threshold is the ROC sweep axis of the ``ext_rts_roc`` campaign:
    low thresholds catch slow floods but flag honest collision bursts
    (false positives), high thresholds are specific but slow.
    """

    name = "rts-flood"

    def __init__(
        self,
        observer: str = TRACE_OBSERVER,
        window_us: float = 100_000.0,
        threshold: int = 12,
        cooldown_us: float = 100_000.0,
        max_window_frames: int = 4096,
        max_tracked_senders: int = 1024,
    ) -> None:
        if window_us <= 0:
            raise ValueError(f"window_us must be positive, got {window_us}")
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.observer = observer
        self.window_us = window_us
        self.threshold = threshold
        self.cooldown_us = cooldown_us
        self.max_window_frames = max_window_frames
        self.max_tracked_senders = max_tracked_senders
        self._rts: dict[str, deque[float]] = {}
        self._data: dict[str, deque[float]] = {}
        self._rearm_at: dict[str, float] = {}

    def feed(self, record: Any) -> list[DetectionEvent]:
        kind = record.kind
        if kind not in ("RTS", "DATA"):
            return []
        now = record.time_us
        sender = record.sender
        table = self._rts if kind == "RTS" else self._data
        window = table.get(sender)
        if window is None:
            window = deque(maxlen=self.max_window_frames)
            table[sender] = window
        window.append(now)
        horizon = now - self.window_us
        self._trim(self._rts.get(sender), horizon)
        self._trim(self._data.get(sender), horizon)
        if kind != "RTS":
            return []
        rts_count = len(window)
        data_count = len(self._data.get(sender, ()))
        excess = rts_count - data_count
        if excess <= self.threshold:
            return []
        rearm = self._rearm_at.get(sender, 0.0)
        if now < rearm:
            return []
        self._rearm_at[sender] = now + self.cooldown_us
        return [
            DetectionEvent(
                now,
                self.name,
                self.observer,
                sender,
                f"{excess} unanswered RTS in {self.window_us:.0f}us window "
                f"(threshold {self.threshold})",
            )
        ]

    @staticmethod
    def _trim(window: deque | None, horizon: float) -> None:
        if window:
            while window and window[0] <= horizon:
                window.popleft()

    def snapshot(self) -> dict[str, Any]:
        return {
            "rts": {s: list(w) for s, w in self._rts.items() if w},
            "data": {s: list(w) for s, w in self._data.items() if w},
            "rearm_at": dict(self._rearm_at),
        }

    def restore(self, state: dict[str, Any]) -> None:
        self._rts = {
            s: deque(times, maxlen=self.max_window_frames)
            for s, times in state.get("rts", {}).items()
        }
        self._data = {
            s: deque(times, maxlen=self.max_window_frames)
            for s, times in state.get("data", {}).items()
        }
        self._rearm_at = dict(state.get("rearm_at", {}))

    def state_size(self) -> int:
        return (
            sum(len(w) for w in self._rts.values())
            + sum(len(w) for w in self._data.values())
            + len(self._rearm_at)
        )

    def bound(self) -> int:
        # Each sender holds at most two full windows plus one re-arm stamp.
        return self.max_tracked_senders * (2 * self.max_window_frames + 1)


class StreamingDetectionPipeline:
    """Fans one event stream out to several detectors; accumulates a report.

    Also tracks the **memory high-water mark** across all detectors — the
    number the diff harness asserts against the summed bounds, turning the
    constant-memory promise into a checkable invariant rather than a code
    comment.
    """

    def __init__(
        self,
        detectors: Iterable[StreamingDetector],
        report: DetectionReport | None = None,
    ) -> None:
        self.detectors = list(detectors)
        if not self.detectors:
            raise ValueError("pipeline needs at least one detector")
        self.report = report if report is not None else DetectionReport()
        self.records_seen = 0
        self.high_water = 0

    def feed(self, record: Any) -> list[DetectionEvent]:
        self.records_seen += 1
        emitted: list[DetectionEvent] = []
        for detector in self.detectors:
            emitted.extend(detector.feed(record))
        if emitted:
            events = self.report.events
            for event in emitted:
                if len(events) < self.report.max_events:
                    events.append(event)
        size = sum(d.state_size() for d in self.detectors)
        if size > self.high_water:
            self.high_water = size
        return emitted

    def feed_many(self, records: Iterable[Any]) -> None:
        for record in records:
            self.feed(record)

    @property
    def events(self) -> list[DetectionEvent]:
        return self.report.events

    def bound(self) -> int:
        return sum(d.bound() for d in self.detectors)

    def snapshot(self) -> dict[str, Any]:
        """Checkpoint all detector state (not the accumulated report)."""
        return {
            "records_seen": self.records_seen,
            "detectors": [d.snapshot() for d in self.detectors],
        }

    def restore(self, state: dict[str, Any]) -> None:
        states = state.get("detectors", [])
        if len(states) != len(self.detectors):
            raise ValueError(
                f"snapshot has {len(states)} detector states, "
                f"pipeline has {len(self.detectors)}"
            )
        self.records_seen = int(state.get("records_seen", 0))
        for detector, detector_state in zip(self.detectors, states):
            detector.restore(detector_state)


def default_pipeline(
    phy: PhyParams | None = None,
    report: DetectionReport | None = None,
    nav_tolerance_us: float = 5.0,
    rts_flood_threshold: int = 12,
    rts_flood_window_us: float = 100_000.0,
) -> StreamingDetectionPipeline:
    """The standard trace-level detector set (NAV + impersonation + flood)."""
    return StreamingDetectionPipeline(
        [
            StreamingNavDetector(phy, tolerance_us=nav_tolerance_us),
            StreamingImpersonationDetector(),
            StreamingRtsFloodDetector(
                threshold=rts_flood_threshold, window_us=rts_flood_window_us
            ),
        ],
        report=report,
    )


class DetectionTap:
    """Feeds a pipeline live from ``medium.transmit`` — no trace retention.

    Same wrap seam as :class:`~repro.stats.trace.FrameTracer`, but the
    record is constructed, fed and dropped; memory stays bounded by the
    pipeline's windows however long the run.  The tap only *observes* (no
    RNG draws, no MAC interaction), so attaching it never changes the
    simulation — goodputs and traces are byte-identical with or without it.
    """

    def __init__(self, medium: Any, pipeline: StreamingDetectionPipeline) -> None:
        from repro.stats.trace import TraceRecord

        self.pipeline = pipeline
        self._record_cls = TraceRecord
        self._medium = medium
        self._original_transmit = medium.transmit
        medium.transmit = self._tapped_transmit

    def _tapped_transmit(self, sender: Any, frame: Any, duration: float) -> None:
        self.pipeline.feed(
            self._record_cls(
                time_us=self._medium.sim.now,
                sender=sender.name,
                kind=frame.kind.value,
                src=frame.src,
                dst=frame.dst,
                nav_us=frame.duration,
                size_bytes=frame.size_bytes,
                rate_mbps=getattr(frame, "rate", None),
                airtime_us=duration,
            )
        )
        self._original_transmit(sender, frame, duration)

    def detach(self) -> None:
        self._medium.transmit = self._original_transmit


# ------------------------------------------------- ambient live detection --


class LiveDetectionSession:
    """Collects the pipelines of every scenario built inside the context."""

    def __init__(
        self, pipeline_factory: "Callable[[PhyParams], StreamingDetectionPipeline] | None" = None
    ) -> None:
        self._factory = pipeline_factory
        self.pipelines: list[StreamingDetectionPipeline] = []

    def make_pipeline(self, phy: PhyParams) -> StreamingDetectionPipeline:
        pipeline = (
            self._factory(phy) if self._factory is not None else default_pipeline(phy)
        )
        self.pipelines.append(pipeline)
        return pipeline

    def total_events(self) -> int:
        return sum(len(p.events) for p in self.pipelines)

    def summary(self) -> dict[str, Any]:
        """Flat roll-up for attaching to experiment results."""
        by_detector: dict[str, int] = {}
        for pipeline in self.pipelines:
            for event in pipeline.events:
                by_detector[event.detector] = by_detector.get(event.detector, 0) + 1
        return {
            "scenarios": len(self.pipelines),
            "events": self.total_events(),
            "by_detector": dict(sorted(by_detector.items())),
            "high_water": max((p.high_water for p in self.pipelines), default=0),
        }


_live_detection: ContextVar[LiveDetectionSession | None] = ContextVar(
    "repro_live_detection", default=None
)


def current_live_detection() -> LiveDetectionSession | None:
    """The ambient live-detection session, or None when not inside one."""
    return _live_detection.get()


@contextmanager
def live_detection(
    session: LiveDetectionSession | None = None,
) -> Iterator[LiveDetectionSession]:
    """Ambient opt-in: scenarios built inside attach a streaming tap.

    Mirrors :func:`repro.obs.capture` / :func:`repro.sim.backend.use_backend`
    — selection is ambient so experiment runners and campaign builders pick
    it up without signature changes (:class:`~repro.net.scenario.Scenario`
    checks :func:`current_live_detection` at construction time).
    """
    if session is None:
        session = LiveDetectionSession()
    token = _live_detection.set(session)
    try:
        yield session
    finally:
        _live_detection.reset(token)
