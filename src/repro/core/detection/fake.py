"""Fake-ACK detection (Section VII-C).

The sender compares its MAC-layer per-transmission loss rate toward a
receiver with the application-layer loss rate measured by active probing
(ping).  A receiver that fakes ACKs for corrupted frames makes the MAC loss
look near-zero while probes keep failing (corrupted probes produce no reply),
so ``applicationLoss >> MACLoss^(maxRetries+1) + threshold`` exposes it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.detection.report import DetectionReport
from repro.sim.engine import Simulator
from repro.transport.packets import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.dcf import DcfMac
    from repro.net.node import Node


class Prober:
    """Active application-layer loss probe (the paper's "ping").

    ``Prober`` runs at the sender; a :class:`ProbeResponder` must be bound on
    the probed node.  Probes ride the MAC like any data frame (including MAC
    retransmissions), so their loss rate *is* the application loss rate the
    detector needs.
    """

    def __init__(
        self,
        sim: Simulator,
        node: "Node",
        target: str,
        interval_us: float = 20_000.0,
        payload_bytes: int = 64,
        reply_grace_us: float = 1_000_000.0,
    ) -> None:
        self.sim = sim
        self.node = node
        self.target = target
        self.interval_us = interval_us
        self.payload_bytes = payload_bytes
        self.reply_grace_us = reply_grace_us
        self.flow_id = f"probe:{node.name}->{target}"
        self.sent = 0
        self.replies = 0
        self._sent_at: dict[int, float] = {}
        self._seq = 0
        self._stopped = False
        node.bind_agent(self.flow_id, self)

    def start(self, at: float = 0.0) -> None:
        self.sim.schedule_at(max(at, self.sim.now), self._probe)

    def stop(self) -> None:
        self._stopped = True

    def _probe(self) -> None:
        if self._stopped:
            return
        packet = Packet(
            PacketKind.PROBE,
            self.flow_id,
            self.node.name,
            self.target,
            seq=self._seq,
            payload_bytes=self.payload_bytes,
            created_at=self.sim.now,
        )
        self._sent_at[self._seq] = self.sim.now
        self._seq += 1
        self.sent += 1
        self.node.send_packet(packet)
        self.sim.schedule(self.interval_us, self._probe)

    def receive(self, packet: Packet) -> None:
        if packet.kind is PacketKind.PROBE_REPLY and packet.seq in self._sent_at:
            del self._sent_at[packet.seq]
            self.replies += 1

    def application_loss_rate(self) -> float:
        """Fraction of sufficiently old probes that never got a reply."""
        deadline = self.sim.now - self.reply_grace_us
        mature_missing = sum(1 for t in self._sent_at.values() if t <= deadline)
        mature_total = self.replies + mature_missing
        if mature_total == 0:
            return 0.0
        return mature_missing / mature_total


class ProbeResponder:
    """Echoes probe packets; bind on the probed (possibly greedy) node."""

    def __init__(self, node: "Node", prober_flow_id: str) -> None:
        self.node = node
        self.replies_sent = 0
        node.bind_agent(prober_flow_id, self)

    def receive(self, packet: Packet) -> None:
        if packet.kind is not PacketKind.PROBE:
            return
        reply = Packet(
            PacketKind.PROBE_REPLY,
            packet.flow_id,
            self.node.name,
            packet.src,
            seq=packet.seq,
            payload_bytes=packet.payload_bytes,
            created_at=packet.created_at,
        )
        self.replies_sent += 1
        self.node.send_packet(reply)


class FakeAckDetector:
    """Compares MAC loss with probed application loss toward one receiver."""

    def __init__(
        self,
        mac: "DcfMac",
        prober: Prober,
        target: str,
        report: DetectionReport | None = None,
        threshold: float = 0.05,
        min_probes: int = 20,
    ) -> None:
        self.mac = mac
        self.prober = prober
        self.target = target
        self.report = report if report is not None else DetectionReport()
        self.threshold = threshold
        self.min_probes = min_probes
        self.detected = False

    def expected_application_loss(self) -> float:
        """``MACLoss^(maxRetries+1)`` under independent per-transmission loss."""
        mac_loss = self.mac.stats.mac_loss_rate(self.target)
        retries = (
            self.mac.phy.long_retry_limit
            if self.mac.rts_enabled
            else self.mac.phy.short_retry_limit
        )
        return mac_loss ** (retries + 1)

    def evaluate(self, now: float) -> bool:
        """Run the consistency check; True (and recorded) when inconsistent."""
        if self.prober.sent < self.min_probes:
            return False
        app_loss = self.prober.application_loss_rate()
        expected = self.expected_application_loss()
        if app_loss > expected + self.threshold:
            if not self.detected:
                self.detected = True
                self.report.record(
                    now,
                    "fake-ack",
                    self.mac.name,
                    self.target,
                    f"application loss {app_loss:.3f} > expected {expected:.3f} "
                    f"+ threshold {self.threshold}",
                )
            return True
        return False
