"""Offline (whole-trace) misbehavior analysis — the streaming reference.

Batch counterparts of the :mod:`repro.core.detection.streaming` detectors:
each analyzer takes a complete :class:`~repro.stats.trace.TraceRecord` list
and evaluates every frame with random access to the rest of the trace
(index scans, per-sender timelines, bisect lookups) instead of incremental
sliding windows.  The two implementations are deliberately **independent**
— different algorithms, different state — which is what makes the
equivalence gate in :mod:`repro.detect.diff` meaningful: a bug has to be
made twice, in two shapes, to slip through, the same philosophy as the
PR-6 scalar-vs-vectorized backend contract.

Semantics are those of the paper's detectors (NAV expectation rules of
Section VII-A; the omniscient impersonation view behind misbehavior 2) plus
the RTS-flood rule of the first attack-zoo entry.  Detection output is a
:class:`~repro.core.detection.report.DetectionReport`; event-identity with
the streaming pipeline is canonicalized through
:func:`repro.detect.diff.canonical_event_lines`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterable, Sequence

from repro.core.detection.report import DetectionEvent, DetectionReport
from repro.core.detection.streaming import TRACE_OBSERVER
from repro.mac.frames import max_cts_nav, rts_duration
from repro.phy.params import PhyParams, dot11b

__all__ = [
    "analyze_trace",
    "offline_nav_events",
    "offline_impersonation_events",
    "offline_rts_flood_events",
]


def offline_nav_events(
    records: Sequence[Any],
    phy: PhyParams | None = None,
    observer: str = TRACE_OBSERVER,
    mtu_bytes: int = 1500,
    tolerance_us: float = 5.0,
) -> list[DetectionEvent]:
    """NAV-inflation detections over a complete trace.

    For every CTS the expectation comes from the *latest preceding* RTS
    addressed to its transmitter — looked up in a per-responder index of RTS
    positions built in one pre-pass (the streaming detector instead carries
    a live ``responder -> expectation`` table).  An RTS whose reservation
    (bounded by the MTU rule) has already expired yields the MTU fallback,
    matching the expiry semantics of the online table.
    """
    phy = phy if phy is not None else dot11b()
    rts_expected = rts_duration(phy, mtu_bytes)
    cts_fallback = max_cts_nav(phy, mtu_bytes)
    data_expected = phy.sifs + phy.ack_time
    # Pre-pass: trace positions of every RTS, indexed by the responder it
    # addresses.  Positions are trace indices, so "latest preceding" is a
    # bisect over indices even when timestamps collide.
    rts_index: dict[str, list[int]] = {}
    for i, record in enumerate(records):
        if record.kind == "RTS":
            rts_index.setdefault(record.dst, []).append(i)
    events: list[DetectionEvent] = []
    for i, record in enumerate(records):
        kind = record.kind
        if kind == "RTS":
            expected = rts_expected
        elif kind == "CTS":
            expected = cts_fallback
            positions = rts_index.get(record.src)
            if positions:
                at = bisect_left(positions, i) - 1
                if at >= 0:
                    rts = records[positions[at]]
                    claimed = min(rts.nav_us, rts_expected)
                    if record.time_us <= rts.time_us + claimed + tolerance_us:
                        expected = max(0.0, claimed - phy.sifs - phy.cts_time)
        elif kind == "DATA":
            expected = data_expected
        else:
            expected = 0.0
        if record.nav_us > expected + tolerance_us:
            events.append(
                DetectionEvent(
                    record.time_us,
                    "nav",
                    observer,
                    record.src,
                    f"{kind} NAV {record.nav_us:.0f}us > expected {expected:.0f}us",
                )
            )
    return events


def offline_impersonation_events(
    records: Sequence[Any], observer: str = TRACE_OBSERVER
) -> list[DetectionEvent]:
    """Frames whose claimed source differs from the transmitting radio."""
    return [
        DetectionEvent(
            r.time_us,
            "impersonation",
            observer,
            r.sender,
            f"{r.kind} claims src {r.src}",
        )
        for r in records
        if r.src != r.sender
    ]


def offline_rts_flood_events(
    records: Sequence[Any],
    observer: str = TRACE_OBSERVER,
    window_us: float = 100_000.0,
    threshold: int = 12,
    cooldown_us: float = 100_000.0,
    max_window_frames: int = 4096,
) -> list[DetectionEvent]:
    """RTS-flood detections: excess unanswered RTS per sender and window.

    Builds one RTS and one DATA timeline per sender, then walks each
    sender's RTS timeline evaluating the window ``(t - window_us, t]`` with
    bisect — counting at most the last ``max_window_frames`` frames of each
    kind, which replicates the online detector's deque capacity.  The
    cooldown re-arm is a per-sender forward scan.
    """
    if window_us <= 0:
        raise ValueError(f"window_us must be positive, got {window_us}")
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    rts_times: dict[str, list[float]] = {}
    data_times: dict[str, list[float]] = {}
    for record in records:
        if record.kind == "RTS":
            rts_times.setdefault(record.sender, []).append(record.time_us)
        elif record.kind == "DATA":
            data_times.setdefault(record.sender, []).append(record.time_us)

    def in_window(times: list[float], upto: int, now: float) -> int:
        """Frames in ``(now - window_us, now]`` among ``times[:upto]``,
        capped at the newest ``max_window_frames`` (the deque capacity)."""
        lo = bisect_right(times, now - window_us, 0, upto)
        return min(upto - lo, max_window_frames)

    events: list[DetectionEvent] = []
    for sender, timeline in rts_times.items():
        data = data_times.get(sender, [])
        rearm_at = 0.0
        for k, now in enumerate(timeline):
            excess = in_window(timeline, k + 1, now) - in_window(
                data, bisect_right(data, now), now
            )
            if excess <= threshold or now < rearm_at:
                continue
            rearm_at = now + cooldown_us
            events.append(
                DetectionEvent(
                    now,
                    "rts-flood",
                    observer,
                    sender,
                    f"{excess} unanswered RTS in {window_us:.0f}us window "
                    f"(threshold {threshold})",
                )
            )
    return events


def analyze_trace(
    records: Iterable[Any],
    phy: PhyParams | None = None,
    observer: str = TRACE_OBSERVER,
    nav_tolerance_us: float = 5.0,
    rts_flood_threshold: int = 12,
    rts_flood_window_us: float = 100_000.0,
    report: DetectionReport | None = None,
) -> DetectionReport:
    """Run every offline analyzer over a trace; aggregate one report.

    Parameter names and defaults match :func:`streaming.default_pipeline
    <repro.core.detection.streaming.default_pipeline>` exactly — the diff
    harness runs both from the same knob set.
    """
    records = list(records)
    report = report if report is not None else DetectionReport()
    all_events = (
        offline_nav_events(records, phy, observer, tolerance_us=nav_tolerance_us)
        + offline_impersonation_events(records, observer)
        + offline_rts_flood_events(
            records,
            observer,
            window_us=rts_flood_window_us,
            threshold=rts_flood_threshold,
        )
    )
    for event in all_events:
        if len(report.events) < report.max_events:
            report.events.append(event)
    return report
