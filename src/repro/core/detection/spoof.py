"""Spoofed-ACK detection (Section VII-B).

:class:`RssiSpoofDetector` implements the paper's primary scheme: the sender
keeps the median RSSI of frames *known* to come from each receiver (its TCP
ACKs, which ride as data frames and cannot be MAC-spoofed) and flags a MAC ACK
whose RSSI deviates from that median by more than a threshold (1 dB achieves
both low false positives and low false negatives in the paper's Figure 22).
A flagged ACK is ignored, so the sender retransmits at the MAC layer as it
should — the mitigation that restores fairness in Figure 24.

:class:`CrossLayerSpoofDetector` is the fallback for highly mobile clients:
it flags a flow when TCP keeps retransmitting segments for which a MAC-layer
ACK was received, which under a small wireline loss rate indicates spoofing.
"""

from __future__ import annotations

from collections import deque
from statistics import median
from typing import Any

from repro.core.detection.report import DetectionReport
from repro.mac.frames import Frame


class RssiSpoofDetector:
    """Per-sender RSSI-deviation detector (installed as ``mac.ack_inspector``)."""

    def __init__(
        self,
        node_name: str,
        report: DetectionReport | None = None,
        threshold_db: float = 1.0,
        history: int = 64,
        min_samples: int = 4,
        capture_margin_db: float = 10.0,
    ) -> None:
        self.node_name = node_name
        self.report = report if report is not None else DetectionReport()
        self.threshold_db = threshold_db
        self.min_samples = min_samples
        self.history = history
        #: 10*log10 of the capture threshold.  An ACK this much *weaker* than
        #: the true receiver's reference can be safely ignored: had the true
        #: receiver transmitted, its ACK would have captured the spoofed one
        #: (Section VII-B's recovery rule).
        self.capture_margin_db = capture_margin_db
        self._rssi: dict[str, deque[float]] = {}
        self.flagged = 0
        self.detected_only = 0
        self.passed = 0

    def observe_data(self, src: str, rssi_db: float, now: float) -> None:
        """Record the RSSI of a data frame received from ``src``.

        Data frames carry the transmitter's real address (spoofing them would
        not pay off for a greedy receiver), so they anchor the per-receiver
        RSSI reference the paper calls ``RSS_N``.
        """
        samples = self._rssi.get(src)
        if samples is None:
            samples = deque(maxlen=self.history)
            self._rssi[src] = samples
        samples.append(rssi_db)

    def reference_rssi(self, src: str) -> float | None:
        samples = self._rssi.get(src)
        if not samples or len(samples) < self.min_samples:
            return None
        return median(samples)

    def is_spoofed(self, ack: Frame, rssi_db: float, now: float) -> bool:
        """Vet an incoming MAC ACK claimed to come from ``ack.src``.

        Returns True — telling the MAC to ignore the ACK and retransmit —
        only when that is provably safe: the ACK deviates from the reference
        *and* is weaker by at least the capture margin, so a genuine ACK from
        the true receiver would have captured it (meaning the receiver did
        not transmit one).  A deviating but not safely-ignorable ACK is still
        recorded as a detection.
        """
        reference = self.reference_rssi(ack.src)
        if reference is None:
            self.passed += 1
            return False
        if abs(rssi_db - reference) > self.threshold_db:
            # The ACK *claims* to come from ack.src; the actual transmitter
            # is unknown to the sender (802.11 ACKs carry no transmitter
            # address), so the offender is recorded as an impersonator of
            # the claimed station.  Operators can localize it from the
            # flagged frames' RSSI, as the paper suggests.
            self.report.record(
                now,
                "rssi-spoof",
                self.node_name,
                f"impersonator-of-{ack.src}",
                f"ACK RSSI {rssi_db:.2f}dB vs median {reference:.2f}dB",
            )
            if reference - rssi_db >= self.capture_margin_db:
                self.flagged += 1
                return True
            self.detected_only += 1
            return False
        self.passed += 1
        return False


class CrossLayerSpoofDetector:
    """Correlates MAC-layer ACKs with TCP retransmissions for one flow.

    Wire it to a sending node:  MAC success callbacks feed
    :meth:`on_mac_acked`, and the TCP sender's ``on_retransmit`` hook feeds
    :meth:`on_tcp_retransmit`.  When more than ``min_events`` retransmitted
    segments had already been MAC-ACKed, and they are more than
    ``suspicious_fraction`` of all retransmissions, the flow's receiver is
    reported (wireline loss being much smaller than wireless loss, a correctly
    ACKed segment should essentially never need a TCP retransmission).
    """

    def __init__(
        self,
        node_name: str,
        flow_id: str,
        offender: str,
        report: DetectionReport | None = None,
        min_events: int = 5,
        suspicious_fraction: float = 0.5,
        window: int = 4096,
    ) -> None:
        self.node_name = node_name
        self.flow_id = flow_id
        self.offender = offender
        self.report = report if report is not None else DetectionReport()
        self.min_events = min_events
        self.suspicious_fraction = suspicious_fraction
        self._acked_seqs: deque[int] = deque(maxlen=window)
        self._acked_set: set[int] = set()
        self.retransmits = 0
        self.retransmits_of_acked = 0
        self.detected = False

    def on_mac_acked(self, packet: Any, dst: str) -> None:
        """The MAC reports an MSDU as acknowledged."""
        seq = getattr(packet, "seq", None)
        kind = getattr(packet, "kind", None)
        if seq is None or (kind is not None and "data" not in str(kind.value)):
            return
        if len(self._acked_seqs) == self._acked_seqs.maxlen:
            self._acked_set.discard(self._acked_seqs[0])
        self._acked_seqs.append(seq)
        self._acked_set.add(seq)

    def on_tcp_retransmit(self, seq: int, now: float) -> None:
        self.retransmits += 1
        if seq not in self._acked_set:
            return
        self.retransmits_of_acked += 1
        if (
            not self.detected
            and self.retransmits_of_acked >= self.min_events
            and self.retransmits_of_acked
            >= self.suspicious_fraction * self.retransmits
        ):
            self.detected = True
            self.report.record(
                now,
                "cross-layer",
                self.node_name,
                self.offender,
                f"{self.retransmits_of_acked}/{self.retransmits} TCP retransmissions "
                "were of MAC-ACKed segments",
            )
