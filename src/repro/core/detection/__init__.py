"""Greedy Receiver Countermeasure (GRC) — detection and mitigation (Sec. VII).

The scheme can run at any node; the more nodes run it, the higher the
likelihood of detection.  Components:

* :class:`NavValidator` — detects and corrects inflated NAV using overheard
  exchange state (exact expectation) or the 1500-byte MTU bound.
* :class:`RssiSpoofDetector` — flags MAC ACKs whose RSSI deviates from the
  claimed receiver's median RSSI; the sender ignores flagged ACKs so MAC
  retransmission happens as it should.
* :class:`CrossLayerSpoofDetector` — for mobile clients with unstable RSSI:
  flags flows where TCP keeps retransmitting segments whose MAC ACK arrived.
* :class:`FakeAckDetector` — compares per-transmission MAC loss with probed
  application loss; fake ACKs make application loss far exceed
  ``MACLoss^(maxRetries+1)``.

Two additional flavors analyze **traces** rather than hooking the MAC:

* :mod:`repro.core.detection.streaming` — incremental, constant-memory
  detectors that consume :class:`~repro.stats.trace.TraceRecord` events one
  at a time (live via :class:`~repro.core.detection.streaming.DetectionTap`,
  or replayed from JSONL).
* :mod:`repro.core.detection.offline` — independent batch analyzers over
  complete traces; the reference the streaming pipeline is diffed against
  (:mod:`repro.detect.diff`).
"""

from repro.core.detection.report import DetectionEvent, DetectionReport
from repro.core.detection.nav import NavValidator
from repro.core.detection.spoof import CrossLayerSpoofDetector, RssiSpoofDetector
from repro.core.detection.fake import FakeAckDetector, ProbeResponder, Prober
from repro.core.detection.monitor import MisbehaviorMonitor, OffenderVerdict
from repro.core.detection.offline import analyze_trace
from repro.core.detection.streaming import (
    DetectionTap,
    LiveDetectionSession,
    StreamingDetectionPipeline,
    StreamingDetector,
    StreamingImpersonationDetector,
    StreamingNavDetector,
    StreamingRtsFloodDetector,
    current_live_detection,
    default_pipeline,
    live_detection,
)

__all__ = [
    "DetectionEvent",
    "DetectionReport",
    "NavValidator",
    "RssiSpoofDetector",
    "CrossLayerSpoofDetector",
    "FakeAckDetector",
    "Prober",
    "ProbeResponder",
    "MisbehaviorMonitor",
    "OffenderVerdict",
    "analyze_trace",
    "DetectionTap",
    "LiveDetectionSession",
    "StreamingDetectionPipeline",
    "StreamingDetector",
    "StreamingImpersonationDetector",
    "StreamingNavDetector",
    "StreamingRtsFloodDetector",
    "current_live_detection",
    "default_pipeline",
    "live_detection",
]
