"""Operator-facing aggregation of GRC detections.

A raw :class:`~repro.core.detection.report.DetectionReport` is a stream of
per-frame events; an operator acts on *verdicts*: which station misbehaves,
with what evidence, how persistently, seen by how many observers.  The paper
notes the scheme "can be implemented at any node" and that more observers
mean higher detection likelihood — :class:`MisbehaviorMonitor` is where the
observations converge.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.detection.report import DetectionEvent, DetectionReport


@dataclass(frozen=True)
class OffenderVerdict:
    """Aggregated evidence against one station."""

    offender: str
    total_detections: int
    by_detector: dict[str, int]
    observers: tuple[str, ...]
    first_seen_us: float
    last_seen_us: float
    rate_per_s: float  # detections per second over the active span

    @property
    def corroborated(self) -> bool:
        """Seen by more than one observer or more than one detector type."""
        return len(self.observers) > 1 or len(self.by_detector) > 1


class MisbehaviorMonitor:
    """Turns detection events into ranked per-offender verdicts."""

    def __init__(
        self,
        report: DetectionReport,
        min_detections: int = 3,
        min_rate_per_s: float = 0.0,
    ) -> None:
        if min_detections < 1:
            raise ValueError("min_detections must be >= 1")
        self.report = report
        self.min_detections = min_detections
        self.min_rate_per_s = min_rate_per_s

    def verdicts(self, now_us: float | None = None) -> list[OffenderVerdict]:
        """Ranked verdicts (most detections first) passing the thresholds."""
        events_by_offender: dict[str, list[DetectionEvent]] = {}
        for event in self.report.events:
            events_by_offender.setdefault(event.offender, []).append(event)
        out = []
        for offender, events in events_by_offender.items():
            if len(events) < self.min_detections:
                continue
            first = min(e.time_us for e in events)
            last = max(e.time_us for e in events)
            span_s = max((last - first) / 1e6, 1e-9)
            rate = len(events) / span_s if len(events) > 1 else float(len(events))
            if rate < self.min_rate_per_s:
                continue
            out.append(
                OffenderVerdict(
                    offender=offender,
                    total_detections=len(events),
                    by_detector=dict(Counter(e.detector for e in events)),
                    observers=tuple(sorted({e.observer for e in events})),
                    first_seen_us=first,
                    last_seen_us=last,
                    rate_per_s=rate,
                )
            )
        out.sort(key=lambda v: v.total_detections, reverse=True)
        return out

    def to_text(self, now_us: float | None = None) -> str:
        """Render an operator summary."""
        verdicts = self.verdicts(now_us)
        if not verdicts:
            return "no misbehavior detected\n"
        lines = []
        for v in verdicts:
            detectors = ", ".join(f"{d}:{n}" for d, n in sorted(v.by_detector.items()))
            flag = " [corroborated]" if v.corroborated else ""
            lines.append(
                f"{v.offender}: {v.total_detections} detections "
                f"({detectors}) by {len(v.observers)} observer(s), "
                f"{v.rate_per_s:.1f}/s over "
                f"{(v.last_seen_us - v.first_seen_us) / 1e6:.2f}s{flag}"
            )
        return "\n".join(lines) + "\n"
