"""Greedy receiver misbehaviors (Section IV).

A greedy receiver cannot transmit data, but it controls the feedback frames of
802.11 — and, under TCP, the RTS/DATA frames that carry its TCP ACKs.
:class:`GreedyReceiverPolicy` implements the paper's three misbehaviors on top
of the standard :class:`repro.mac.policy.ReceiverPolicy` hook surface:

1. **NAV inflation**: add ``nav_inflation_us`` to the duration field of the
   configured frame kinds (up to the protocol cap of 32767 us).
2. **ACK spoofing**: transmit MAC ACKs on behalf of other receivers whose
   data frames this station overhears in promiscuous mode.
3. **Fake ACKs**: acknowledge corrupted data frames addressed to this station
   so its sender never backs off.

Every misbehavior applies only with probability ``greedy_percentage`` per
opportunity, modeling a stealthy attacker (the paper's "GP" knob).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.mac.frames import Frame, FrameKind
from repro.mac.policy import ReceiverPolicy
from repro.phy.params import MAX_NAV_US


@dataclass(frozen=True)
class GreedyConfig:
    """Knobs of a greedy receiver.

    ``greedy_percentage`` (0-100) gates NAV inflation; ``spoof_percentage``
    and ``fake_percentage`` gate misbehaviors 2 and 3 independently, matching
    the per-misbehavior GP sweeps in the paper's evaluation.
    """

    nav_inflation_us: float = 0.0
    inflate_frames: frozenset[FrameKind] = frozenset({FrameKind.CTS})
    greedy_percentage: float = 100.0
    spoof_acks: bool = False
    spoof_percentage: float = 100.0
    spoof_victims: frozenset[str] | None = None  # None: spoof for any receiver
    fake_acks: bool = False
    fake_percentage: float = 100.0

    def __post_init__(self) -> None:
        for name in ("greedy_percentage", "spoof_percentage", "fake_percentage"):
            value = getattr(self, name)
            if not 0.0 <= value <= 100.0:
                raise ValueError(f"{name} must be in [0, 100], got {value}")
        if self.nav_inflation_us < 0:
            raise ValueError("NAV inflation must be non-negative")

    @staticmethod
    def nav_inflator(
        inflation_us: float,
        frames: frozenset[FrameKind] | set[FrameKind] = frozenset({FrameKind.CTS}),
        greedy_percentage: float = 100.0,
    ) -> "GreedyConfig":
        """Misbehavior 1 shorthand."""
        return GreedyConfig(
            nav_inflation_us=inflation_us,
            inflate_frames=frozenset(frames),
            greedy_percentage=greedy_percentage,
        )

    @staticmethod
    def ack_spoofer(
        spoof_percentage: float = 100.0,
        victims: frozenset[str] | set[str] | None = None,
    ) -> "GreedyConfig":
        """Misbehavior 2 shorthand."""
        return GreedyConfig(
            spoof_acks=True,
            spoof_percentage=spoof_percentage,
            spoof_victims=frozenset(victims) if victims is not None else None,
        )

    @staticmethod
    def ack_faker(fake_percentage: float = 100.0) -> "GreedyConfig":
        """Misbehavior 3 shorthand."""
        return GreedyConfig(fake_acks=True, fake_percentage=fake_percentage)


#: All frame kinds a TCP greedy receiver can inflate (Section IV-A: CTS and
#: ACK always; RTS and DATA when sending TCP ACKs).
ALL_FRAMES = frozenset(
    {FrameKind.RTS, FrameKind.CTS, FrameKind.DATA, FrameKind.ACK}
)


class GreedyReceiverPolicy(ReceiverPolicy):
    """A receiver that manipulates 802.11 feedback for more goodput."""

    def __init__(self, config: GreedyConfig, rng: random.Random) -> None:
        self.config = config
        self.rng = rng
        self.nav_inflations = 0
        self.spoofs = 0
        self.fakes = 0

    def _roll(self, percentage: float) -> bool:
        if percentage >= 100.0:
            return True
        if percentage <= 0.0:
            return False
        return self.rng.random() * 100.0 < percentage

    def outgoing_nav(self, frame: Frame) -> float:
        cfg = self.config
        if (
            cfg.nav_inflation_us > 0
            and frame.kind in cfg.inflate_frames
            and self._roll(cfg.greedy_percentage)
        ):
            self.nav_inflations += 1
            return min(frame.duration + cfg.nav_inflation_us, float(MAX_NAV_US))
        return frame.duration

    def should_spoof_ack(self, data_frame: Frame) -> bool:
        cfg = self.config
        if not cfg.spoof_acks:
            return False
        if cfg.spoof_victims is not None and data_frame.dst not in cfg.spoof_victims:
            return False
        if not self._roll(cfg.spoof_percentage):
            return False
        self.spoofs += 1
        return True

    def should_fake_ack(self, corrupted_frame: Frame) -> bool:
        cfg = self.config
        if not cfg.fake_acks or not self._roll(cfg.fake_percentage):
            return False
        self.fakes += 1
        return True
