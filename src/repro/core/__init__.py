"""The paper's contribution: greedy-receiver misbehaviors and their detection.

* :mod:`repro.core.greedy` — the three misbehaviors of Section IV as a
  :class:`repro.mac.policy.ReceiverPolicy`: NAV inflation, ACK spoofing, and
  fake ACKs, each gated by a configurable greedy percentage.
* :mod:`repro.core.detection` — the Greedy Receiver Countermeasure (GRC) of
  Section VII: NAV validation, RSSI-based and cross-layer spoofed-ACK
  detection, and the MAC-vs-application loss check for fake ACKs.
* :mod:`repro.core.model` — the analytic sending-probability model of
  Equations (1)-(2) (Section V-A).
"""

from repro.core.greedy import GreedyConfig, GreedyReceiverPolicy
from repro.core.detection import (
    CrossLayerSpoofDetector,
    DetectionEvent,
    DetectionReport,
    FakeAckDetector,
    NavValidator,
    RssiSpoofDetector,
)
from repro.core.model import backoff_pmf, sending_probabilities, sending_ratio

__all__ = [
    "GreedyConfig",
    "GreedyReceiverPolicy",
    "NavValidator",
    "RssiSpoofDetector",
    "CrossLayerSpoofDetector",
    "FakeAckDetector",
    "DetectionEvent",
    "DetectionReport",
    "backoff_pmf",
    "sending_probabilities",
    "sending_ratio",
]
