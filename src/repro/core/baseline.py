"""Baseline: sender-side MAC misbehavior (the prior work the paper contrasts).

Kyasanur & Vaidya showed that a *selfish sender* gains bandwidth by drawing
backoff from a smaller contention window than the standard requires; DOMINO
detects exactly that.  The paper's thesis is that **receivers** — who never
control a backoff — can do comparable damage through feedback manipulation.

This module configures a selfish sender on top of the same DCF MAC (via its
``cw_min`` / ``cw_max`` overrides) so experiments can compare the two attack
surfaces head to head (``repro.experiments.ext_sender_baseline``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mac.dcf import DcfMac


@dataclass(frozen=True)
class SelfishSenderConfig:
    """Contention-window cheating parameters.

    ``cw_factor`` scales the standard CW bounds down; 0.25 means the cheater
    contends as if both CW_min and CW_max were a quarter of the standard
    values (the aggressive end of what DOMINO's authors studied).
    """

    cw_factor: float = 0.25

    def __post_init__(self) -> None:
        if not 0 < self.cw_factor <= 1:
            raise ValueError("cw_factor must be in (0, 1]")

    def cw_min_for(self, standard_cw_min: int) -> int:
        return max(1, int(standard_cw_min * self.cw_factor))

    def cw_max_for(self, standard_cw_max: int) -> int:
        return max(1, int(standard_cw_max * self.cw_factor))


def make_selfish(mac: DcfMac, config: SelfishSenderConfig) -> None:
    """Turn an existing (already honest) MAC into a selfish sender."""
    mac.cw_min = config.cw_min_for(mac.phy.cw_min)
    mac.cw_max = config.cw_max_for(mac.phy.cw_max)
    mac.cw = mac.cw_min
