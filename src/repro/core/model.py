"""Analytic model of NAV inflation under UDP (Section V-A, Equations 1-2).

Two saturated senders GS and NS contend; GS's receiver inflates NAV by ``v``
timeslots, so GS effectively starts its countdown ``v`` slots earlier.  With
``B_S`` the backoff drawn by sender ``S`` (uniform over ``[0, CW_S]``):

* GS transmits in a round when ``B_GS <= B_NS + v + 1``,
* NS transmits when ``B_NS <= B_GS - v + 1``

(the +/-1 window accounts for the one-slot signal-measurement granularity:
stations whose countdowns reach zero within one slot of each other both
transmit and collide).  The model takes the *measured* contention-window
distributions from simulation — the paper does exactly this — and predicts
the RTS sending ratio of the two senders, validated in Figure 3.
"""

from __future__ import annotations

from collections.abc import Mapping


def backoff_pmf(cw_distribution: Mapping[int, float]) -> dict[int, float]:
    """PMF of the backoff counter for a CW mixture.

    ``cw_distribution`` maps CW values to probabilities (as produced by
    :meth:`repro.mac.stats.MacStats.cw_distribution`); the backoff is uniform
    over ``[0, CW]`` given CW.
    """
    pmf: dict[int, float] = {}
    for cw, p_cw in cw_distribution.items():
        if cw < 0:
            raise ValueError(f"negative CW: {cw}")
        weight = p_cw / (cw + 1)
        for i in range(cw + 1):
            pmf[i] = pmf.get(i, 0.0) + weight
    return pmf


def _tail_ge(pmf: Mapping[int, float], threshold: float) -> float:
    """Pr[B >= threshold] for an integer-valued PMF."""
    return sum(p for value, p in pmf.items() if value >= threshold)


def _cdf_le(pmf: Mapping[int, float], threshold: float) -> float:
    """Pr[B <= threshold]."""
    return sum(p for value, p in pmf.items() if value <= threshold)


def sending_probabilities(
    cw_dist_gs: Mapping[int, float],
    cw_dist_ns: Mapping[int, float],
    v_slots: float,
) -> tuple[float, float]:
    """Equations (1) and (2): per-round transmission probabilities.

    Returns ``(Pr[GS sends], Pr[NS sends])``.  ``v_slots`` is the NAV
    inflation expressed in backoff slots.
    """
    if not cw_dist_gs or not cw_dist_ns:
        raise ValueError("CW distributions must be non-empty")
    pmf_gs = backoff_pmf(cw_dist_gs)
    pmf_ns = backoff_pmf(cw_dist_ns)
    p_gs = 0.0
    p_ns = 0.0
    for i, p_bgs in pmf_gs.items():
        # Eq (1): GS sends when B_GS <= B_NS + v + 1, i.e. B_NS >= i - v - 1.
        p_gs += p_bgs * _tail_ge(pmf_ns, i - v_slots - 1)
        # Eq (2): NS sends when B_NS <= B_GS - v + 1.
        p_ns += p_bgs * _cdf_le(pmf_ns, i - v_slots + 1)
    return p_gs, p_ns


def sending_ratio(
    cw_dist_gs: Mapping[int, float],
    cw_dist_ns: Mapping[int, float],
    v_slots: float,
) -> tuple[float, float]:
    """Normalized share of transmission opportunities (GS share, NS share).

    This is the quantity Figure 3 plots as the "RTS sending ratio".
    """
    p_gs, p_ns = sending_probabilities(cw_dist_gs, cw_dist_ns, v_slots)
    total = p_gs + p_ns
    if total <= 0:
        return 0.5, 0.5
    return p_gs / total, p_ns / total
