"""Distance-based propagation: received power, ranges, and RSSI.

We use a power-law path loss (``rss = tx_power / d^exponent``) which, with
exponent 4, matches the two-ray ground model ns-2 uses at WLAN distances.
Reception and carrier-sense thresholds are derived from the desired
communication and interference ranges (55 m and 99 m in the paper's
Figure 23 topology).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Propagation speed in meters per microsecond.
SPEED_OF_LIGHT_M_PER_US = 299.792458


@dataclass(frozen=True)
class PathLossModel:
    """Power-law path loss with a minimum reference distance."""

    exponent: float = 4.0
    reference_distance: float = 1.0  # meters; closer nodes are clamped to this

    def rss(self, tx_power: float, distance: float) -> float:
        """Received signal strength (linear units) at ``distance`` meters."""
        d = max(distance, self.reference_distance)
        return tx_power / d**self.exponent

    def range_for_threshold(self, tx_power: float, threshold: float) -> float:
        """Distance at which the received power drops to ``threshold``."""
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        return (tx_power / threshold) ** (1.0 / self.exponent)

    def threshold_for_range(self, tx_power: float, distance: float) -> float:
        """Received-power threshold corresponding to a reception range."""
        if distance <= 0:
            raise ValueError("range must be positive")
        return tx_power / distance**self.exponent


def rss_to_db(rss: float, noise_floor: float = 1e-9) -> float:
    """Convert linear received power to a dB figure above the noise floor.

    This is the quantity the paper calls RSSI (``10 log10((S+I)/N)``).
    """
    if rss <= 0:
        return -math.inf
    return 10.0 * math.log10(rss / noise_floor)


def distance(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Euclidean distance between two 2-D positions in meters."""
    return math.hypot(a[0] - b[0], a[1] - b[1])
