"""Channel-model registry and the unified :class:`ChannelConfig`.

A *channel model* decides how concurrent transmissions interact at a
receiver.  Two models ship today:

* ``pairwise`` — the reference reach-list medium
  (:class:`repro.phy.medium.Medium`): binary decode/sense thresholds per
  link, capture decided by the pairwise power ratio of exactly two signals.
  This is the code path every committed golden trace was captured on.
* ``sinr`` — the interference medium (:class:`repro.phy.medium.SinrMedium`):
  each receiver accumulates the power of *all* concurrent transmissions plus
  a noise floor, and a frame survives only while its signal-to-interference-
  plus-noise ratio clears the PHY's per-rate threshold.  Hidden terminals,
  asymmetric links and dense multi-AP hotspots become expressible.

**The equivalence contract** (DESIGN.md §15) mirrors the backend seam: the
``pairwise`` model must replay every committed golden trace byte-for-byte
(including when selected through the deprecated ``Scenario(ranges=...)``
kwargs), while ``sinr`` takes its own golden set, its own result-cache
namespace (:attr:`ChannelConfig.cache_key` is folded into
:func:`repro.runtime.cache.code_version_token`), and cross-backend
``repro diff`` coverage — the interference sum must itself be bit-identical
between the scalar and vectorized backends.

Selection is *ambient*, exactly like :mod:`repro.sim.backend`: experiment
runners and the perf harness build scenarios deep inside helpers, so the
active :class:`ChannelConfig` travels in a :class:`~contextvars.ContextVar`
(:func:`use_channel`) and ``Scenario(channel=...)`` accepts an explicit
override.  A config whose ``model`` is ``None`` *inherits* the ambient
model while pinning its other knobs — internal call sites write
``ChannelConfig(ranges=(55.0, 99.0))`` and still honor ``--channel sinr``.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace
from typing import Iterator

#: Registered channel model names -> one-line description.  The medium
#: classes themselves are looked up in :mod:`repro.net.scenario` (importing
#: them here would cycle through the phy package).
CHANNEL_MODELS: dict[str, str] = {
    "pairwise": "reference reach-list medium: binary thresholds, pairwise capture "
    "(golden traces captured here)",
    "sinr": "interference medium: aggregate concurrent power + noise floor, "
    "capture by per-rate SINR margin (own golden set)",
}


def channel_names() -> list[str]:
    """Registered channel model names, registration order."""
    return list(CHANNEL_MODELS)


@dataclass(frozen=True)
class GaussianJitter:
    """Picklable RSSI jitter: zero-mean Gaussian in dB on the medium's RNG.

    Replaces the old closure in :class:`repro.net.scenario.Scenario` — a
    lambda cannot cross the process-pool path (PR 1 fan-out), a frozen
    dataclass can.  Draw-identical to the closure it replaces: exactly one
    ``rng.gauss(0.0, sigma)`` per delivered frame.
    """

    sigma_db: float

    def __call__(self, rng: random.Random) -> float:
        return rng.gauss(0.0, self.sigma_db)


@dataclass(frozen=True)
class ChannelConfig:
    """Everything that shapes the wireless channel, as plain frozen data.

    Replaces the scattered ``ranges=`` / ``default_ber=`` /
    ``rssi_jitter_db=`` :class:`~repro.net.scenario.Scenario` kwargs with one
    value that canonicalises for job specs and campaign points.
    """

    #: Channel model name (``"pairwise"`` or ``"sinr"``), or ``None`` to
    #: inherit the model of the ambient selection (:func:`use_channel`)
    #: while keeping this config's other knobs.
    model: str | None = None
    #: ``(comm_range_m, interference_range_m)`` fed to
    #: ``Medium.configure_ranges`` (e.g. the paper's 55 m / 99 m), or None
    #: for the default "everyone decodes everyone" thresholds.
    ranges: tuple[float, float] | None = None
    #: Noise floor in linear power units (``sinr`` model only).  The default
    #: keeps ``sinr_threshold * noise_floor`` well below the reception
    #: threshold of the paper's 55 m communication range (1/55^4 ~ 1.1e-7),
    #: so the zero-interference SINR decision reduces to the pairwise
    #: decodability decision (the §15 equivalence contract).
    noise_floor: float = 1e-10
    #: Path-loss exponent for :class:`repro.phy.propagation.PathLossModel`.
    path_loss_exponent: float = 4.0
    #: Base SINR margin for the ``sinr`` model (linear).  ``None`` uses the
    #: PHY's ``capture_threshold`` so both models share one capture knob.
    capture_margin: float | None = None
    #: Default bit-error rate for :class:`repro.phy.error.BitErrorModel`.
    default_ber: float = 0.0
    #: Standard deviation (dB) of Gaussian RSSI jitter; 0 disables jitter.
    rssi_jitter_db: float = 0.0

    def __post_init__(self) -> None:
        if self.model is not None and self.model not in CHANNEL_MODELS:
            raise KeyError(
                f"unknown channel model {self.model!r}; "
                f"known models: {channel_names()}"
            )
        if not self.noise_floor > 0:
            raise ValueError(f"noise_floor must be > 0, got {self.noise_floor}")
        if not self.path_loss_exponent > 0:
            raise ValueError(
                f"path_loss_exponent must be > 0, got {self.path_loss_exponent}"
            )
        if self.capture_margin is not None and self.capture_margin < 1.0:
            raise ValueError(
                f"capture_margin must be >= 1 (linear), got {self.capture_margin}"
            )
        if not 0.0 <= self.default_ber < 1.0:
            raise ValueError(f"default_ber must be in [0, 1), got {self.default_ber}")
        if self.rssi_jitter_db < 0:
            raise ValueError(
                f"rssi_jitter_db must be >= 0, got {self.rssi_jitter_db}"
            )
        if self.ranges is not None:
            comm, interference = self.ranges
            if not 0 < comm <= interference:
                raise ValueError(
                    "ranges must satisfy 0 < comm_range <= interference_range, "
                    f"got {self.ranges}"
                )

    @property
    def cache_key(self) -> str:
        """Token folded into the result-cache version for this channel.

        The ``pairwise`` model is the reference the existing caches were
        populated under, so it keeps the bare token; any other model gets
        its own namespace — results computed under different interference
        semantics must never be served interchangeably.
        """
        model = self.model
        return "" if model in (None, "pairwise") else f"channel={model}"

    def jitter(self) -> GaussianJitter | None:
        """The RSSI-jitter callable for this config, or None when disabled."""
        if self.rssi_jitter_db > 0:
            return GaussianJitter(self.rssi_jitter_db)
        return None


#: The default channel: the reference pairwise medium with the historical
#: Scenario defaults (no ranges, no BER, no jitter).
DEFAULT_CHANNEL = ChannelConfig(model="pairwise")

#: The ambient channel: what :class:`~repro.net.scenario.Scenario` builds
#: when no explicit ``channel=`` is given.
_ACTIVE: ContextVar[ChannelConfig] = ContextVar("channel", default=DEFAULT_CHANNEL)


def current_channel() -> ChannelConfig:
    """The ambient channel (``pairwise`` unless inside :func:`use_channel`)."""
    return _ACTIVE.get()


def resolve_channel(channel: "ChannelConfig | str | None") -> ChannelConfig:
    """Accept a :class:`ChannelConfig`, a model name, or None (the ambient).

    A config with ``model=None`` inherits the ambient *model* but keeps its
    own knobs — that is how internal call sites pin e.g. the paper's 55/99 m
    ranges without also pinning the interference semantics.
    """
    if channel is None:
        return current_channel()
    if isinstance(channel, str):
        if channel not in CHANNEL_MODELS:
            raise KeyError(
                f"unknown channel model {channel!r}; known models: {channel_names()}"
            )
        ambient = current_channel()
        if ambient.model == channel:
            return ambient  # keep the ambient config's knobs
        return replace(ambient, model=channel)
    if not isinstance(channel, ChannelConfig):
        raise TypeError(
            "channel must be ChannelConfig, model name or None, "
            f"got {type(channel).__name__}"
        )
    if channel.model is None:
        return replace(channel, model=current_channel().model)
    return channel


@contextmanager
def use_channel(channel: "ChannelConfig | str | None") -> Iterator[ChannelConfig]:
    """Select the ambient channel for the duration of the ``with`` block.

    >>> from repro.phy.channel import use_channel, current_channel
    >>> with use_channel("sinr"):
    ...     current_channel().model
    'sinr'
    >>> current_channel().model
    'pairwise'
    """
    resolved = resolve_channel(channel)
    if resolved.model is None:  # pragma: no cover - resolve always pins a model
        resolved = replace(resolved, model=DEFAULT_CHANNEL.model)
    token = _ACTIVE.set(resolved)
    try:
        yield resolved
    finally:
        _ACTIVE.reset(token)


__all__ = [
    "CHANNEL_MODELS",
    "ChannelConfig",
    "DEFAULT_CHANNEL",
    "GaussianJitter",
    "channel_names",
    "current_channel",
    "resolve_channel",
    "use_channel",
]
