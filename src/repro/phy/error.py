"""Random-error frame loss model, calibrated to the paper's Table III.

The paper injects random errors of rate "BER" in ns-2.  Back-solving the
paper's Table III shows ns-2's error model applied the rate per *byte*,
over the frame body plus a 24-byte PLCP-preamble equivalent: at rate 2e-4 an
ACK/CTS FER of 7.519e-3 corresponds to exactly 38 byte-units (14-byte frame +
24), and the RTS FER of 8.762e-3 to 44 units (20 + 24).  We adopt the same
semantic — ``FER = 1 - (1 - rate)^(size_bytes + plcp)`` — so that the
loss-rate axes of Figures 11-17 and 24 line up with the paper's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache

#: PLCP preamble + header expressed in the byte-units of ns-2's error model
#: (192 us at 1 Mbps = 24 bytes for 802.11b long preamble).
PLCP_BYTES = 24


def frame_error_rate(ber: float, size_bytes: int, plcp_bytes: int = PLCP_BYTES) -> float:
    """FER of a ``size_bytes`` frame under independent per-byte errors.

    ``ber`` is the paper's error rate (applied per byte-unit, see module
    docstring); reproduces the paper's Table III for the standard frames.
    Memoized: a scenario uses a handful of (BER, size) pairs but rolls them
    per frame, so the ``pow`` is looked up, not recomputed (the closed form
    is :func:`frame_error_rate_formula`, pinned to the cache by
    ``tests/test_phy_error.py``).
    """
    if ber < 0 or ber > 1:
        raise ValueError(f"BER must be in [0, 1], got {ber}")
    if size_bytes < 0:
        raise ValueError(f"frame size must be non-negative, got {size_bytes}")
    return _fer_cached(ber, size_bytes, plcp_bytes)


def frame_error_rate_formula(
    ber: float, size_bytes: int, plcp_bytes: int = PLCP_BYTES
) -> float:
    """The uncached closed form — the reference the lookup table must match."""
    return 1.0 - (1.0 - ber) ** (size_bytes + plcp_bytes)


@lru_cache(maxsize=4096)
def _fer_cached(ber: float, size_bytes: int, plcp_bytes: int) -> float:
    return frame_error_rate_formula(ber, size_bytes, plcp_bytes)


@dataclass
class BitErrorModel:
    """Per-link BER table with a default, used by :class:`repro.phy.Medium`.

    Control/data frames are corrupted independently with probability
    ``frame_error_rate(ber, size)``.  A direct per-link *frame* error rate can
    also be set (used for Table V's "data error rate 0.2/0.5/0.8" scenarios);
    it applies to data frames only, leaving short control frames clean, which
    mirrors how loss was induced in the paper's experiments.
    """

    default_ber: float = 0.0
    _link_ber: dict[tuple[str, str], float] = field(default_factory=dict)
    _link_fer: dict[tuple[str, str], float] = field(default_factory=dict)
    # Per-link, per-PHY-rate BER: higher modulations need more SNR, so the
    # same link gets lossier as a rate-adapting sender steps up.  Used by the
    # auto-rate extension; falls back to the rate-independent tables above.
    _rate_ber: dict[tuple[str, str], dict[float, float]] = field(default_factory=dict)
    #: Bumped on every table mutation.  Consumers that flatten the tables
    #: into per-link caches (``VectorizedMedium``'s corruption-plan cache)
    #: key their validity on ``(id(model), _epoch, default_ber)`` so a
    #: mid-run ``set_ber``/``set_data_fer``/``set_rate_profile`` can never
    #: serve a stale probability.
    _epoch: int = 0

    def set_ber(self, src: str, dst: str, ber: float) -> None:
        """Set the bit error rate of the directed link ``src -> dst``."""
        if not 0 <= ber <= 1:
            raise ValueError(f"BER must be in [0, 1], got {ber}")
        self._epoch += 1
        self._link_ber[(src, dst)] = ber

    def set_ber_symmetric(self, a: str, b: str, ber: float) -> None:
        """Set the same BER in both directions between ``a`` and ``b``."""
        self.set_ber(a, b, ber)
        self.set_ber(b, a, ber)

    def set_data_fer(self, src: str, dst: str, fer: float) -> None:
        """Set a direct data-frame error rate for the link ``src -> dst``."""
        if not 0 <= fer <= 1:
            raise ValueError(f"FER must be in [0, 1], got {fer}")
        self._epoch += 1
        self._link_fer[(src, dst)] = fer

    def set_rate_profile(
        self, src: str, dst: str, ber_by_rate: dict[float, float]
    ) -> None:
        """Set per-rate BERs for a link (e.g. clean at 1-2 Mbps, lossy at 11).

        Only consulted for frames that carry an explicit PHY rate (data frames
        from a rate-adapting sender); control frames at the basic rate use the
        profile's lowest-rate entry when present.
        """
        for rate, ber in ber_by_rate.items():
            if rate <= 0:
                raise ValueError(f"rate must be positive, got {rate}")
            if not 0 <= ber <= 1:
                raise ValueError(f"BER must be in [0, 1], got {ber}")
        self._epoch += 1
        self._rate_ber[(src, dst)] = dict(ber_by_rate)

    def ber(self, src: str, dst: str, rate: float | None = None) -> float:
        """Effective error rate of a link, honoring any per-rate profile."""
        profile = self._rate_ber.get((src, dst))
        if profile is not None:
            if rate is not None and rate in profile:
                return profile[rate]
            if rate is None and profile:
                return profile[min(profile)]  # basic-rate control frames
        return self._link_ber.get((src, dst), self.default_ber)

    @property
    def trivial(self) -> bool:
        """True when no link can ever corrupt a frame (no RNG draw needed).

        The clean-channel fast path: NAV-inflation scenarios configure no
        error model at all, so the per-frame corruption roll reduces to this
        four-attribute check instead of table lookups plus a FER evaluation.
        """
        return not (
            self._link_fer or self._link_ber or self._rate_ber or self.default_ber
        )

    def is_corrupted(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        is_data: bool,
        rng: random.Random,
        rate: float | None = None,
    ) -> bool:
        """Roll whether a frame on ``src -> dst`` arrives corrupted."""
        fer = self._link_fer.get((src, dst))
        if fer is not None:
            if not is_data:
                return False
            return rng.random() < fer
        ber = self.ber(src, dst, rate)
        if ber <= 0.0:
            return False
        return rng.random() < frame_error_rate(ber, size_bytes)

    def corruption_plan(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        is_data: bool,
        rate: float | None = None,
    ) -> float | None:
        """The draw :meth:`is_corrupted` would make, as cacheable data.

        Returns ``None`` when the frame is clean *without consuming a
        uniform* (no error configured, or a control frame on a
        ``set_data_fer`` link), otherwise the probability ``p`` such that the
        frame is corrupted iff the next uniform is ``< p``.  The distinction
        matters for bit-exactness: a link with ``fer=0.0`` set explicitly
        still consumes one draw per data frame (``p = 0.0``), exactly like
        the scalar path.  ``tests/test_vectorized_phy.py`` pins plan and
        roll to each other across the configuration space.
        """
        fer = self._link_fer.get((src, dst))
        if fer is not None:
            return fer if is_data else None
        ber = self.ber(src, dst, rate)
        if ber <= 0.0:
            return None
        return frame_error_rate(ber, size_bytes)


def set_ber_all_pairs(model: "BitErrorModel", names: list[str], ber: float) -> None:
    """Set the same BER on every directed link among ``names``."""
    for a in names:
        for b in names:
            if a != b:
                model.set_ber(a, b, ber)
