"""Physical-layer substrate: timing parameters, airtime, propagation, medium.

The PHY models what the paper's ns-2 setup provides: 802.11b (11 Mbps) and
802.11a (6 Mbps) timing, a broadcast medium with communication and
interference ranges, the capture effect, and independent-bit-error frame
corruption.
"""

from repro.phy.params import PhyParams, dot11a, dot11b
from repro.phy.error import frame_error_rate, BitErrorModel
from repro.phy.propagation import PathLossModel
from repro.phy.medium import Medium, Radio

__all__ = [
    "PhyParams",
    "dot11a",
    "dot11b",
    "frame_error_rate",
    "BitErrorModel",
    "PathLossModel",
    "Medium",
    "Radio",
]
