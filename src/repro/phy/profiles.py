"""Named PHY profiles: the single lookup shared by every plain-data caller.

``experiments/common.py`` (runner kwargs) and ``campaign/spec.py`` (TOML
specs) both accept a PHY by name; this module is the one place those names
are defined so the two paths can never drift apart
(tests/test_experiment_api.py pins the equivalence).
"""

from __future__ import annotations

from typing import Callable

from repro.phy.params import PhyParams, dot11a, dot11b

#: Profile name -> zero-argument factory producing the PhyParams.
PHY_PROFILES: dict[str, Callable[[], PhyParams]] = {
    "dot11b": dot11b,
    "dot11a": dot11a,
}


def profile_names() -> list[str]:
    """Sorted names accepted wherever a PHY can be given as a string."""
    return sorted(PHY_PROFILES)


def resolve_phy(phy: PhyParams | str | None) -> PhyParams | None:
    """Accept a :class:`PhyParams`, a profile name or None (scenario default).

    Profile names ("dot11b", "dot11a") let TOML campaign specs and other
    plain-data callers select a PHY without constructing objects.
    """
    if phy is None or isinstance(phy, PhyParams):
        return phy
    if isinstance(phy, str):
        factory = PHY_PROFILES.get(phy)
        if factory is None:
            raise ValueError(
                f"unknown PHY profile {phy!r}; known: {sorted(PHY_PROFILES)}"
            )
        return factory()
    raise TypeError(f"phy must be PhyParams, profile name or None, got {type(phy).__name__}")
