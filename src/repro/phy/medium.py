"""Broadcast wireless medium with ranges, capture effect, and corruption.

Every attached :class:`Radio` hears every transmission whose received power
exceeds its carrier-sense threshold; it can *decode* a frame when the power
also exceeds the reception threshold.  A radio locks onto the first decodable
frame (it cannot re-synchronize mid-frame); overlapping arrivals either
corrupt the locked frame or — when one signal is stronger by the capture
threshold — are resolved by capture, exactly the semantics the paper relies on
for ACK spoofing (Section IV-B).

Corrupted frames are *delivered* to the MAC with a ``corrupted`` flag (and a
model of whether the MAC address fields survived, per the paper's Table I)
instead of being silently dropped, so that fake-ACK misbehavior and EIFS
deferral can react to them.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.phy.error import BitErrorModel
from repro.phy.params import PhyParams
from repro.phy.propagation import (
    SPEED_OF_LIGHT_M_PER_US,
    PathLossModel,
    distance,
    rss_to_db,
)
from repro.sim.engine import Simulator
from repro.sim.rng import BatchedUniform

#: Table I of the paper: fraction of corrupted frames whose destination MAC
#: address survives, and — among those — whose source address also survives.
ADDRESS_SURVIVAL = {
    "802.11b": (1351 / 1367, 1282 / 1351),
    "802.11a": (6197 / 7376, 5663 / 6197),
}


class _Transmission:
    """One frame in flight."""

    __slots__ = ("sender", "frame", "start", "end")

    def __init__(self, sender: "Radio", frame: Any, start: float, end: float):
        self.sender = sender
        self.frame = frame
        self.start = start
        self.end = end


class _Lock:
    """Reception lock: the transmission a radio is currently decoding."""

    __slots__ = ("tx", "rss", "collided")

    def __init__(self, tx: _Transmission, rss: float):
        self.tx = tx
        self.rss = rss
        self.collided = False


class Radio:
    """A half-duplex radio attached to one :class:`Medium`.

    The owning MAC registers itself as ``radio.mac`` and must provide
    ``phy_busy()``, ``phy_idle()``, ``phy_tx_done()`` and
    ``phy_receive(frame, corrupted, addr_ok, rssi_db)``.
    """

    def __init__(
        self,
        medium: "Medium",
        name: str,
        position: tuple[float, float] = (0.0, 0.0),
        tx_power: float = 1.0,
    ) -> None:
        self.medium = medium
        self.name = name
        self.position = position
        self.tx_power = tx_power
        self.mac: Any = None
        self.transmitting = False
        self._tx_end_time = 0.0
        self._energy: set[_Transmission] = set()
        self._lock: Optional[_Lock] = None
        medium._attach(self)

    # -- transmit path -----------------------------------------------------

    def transmit(self, frame: Any, duration: float) -> None:
        """Put ``frame`` on the air for ``duration`` microseconds."""
        self.medium.transmit(self, frame, duration)

    # -- carrier sense -----------------------------------------------------

    @property
    def carrier_busy(self) -> bool:
        """Physical carrier sense: energy above threshold or self-transmit."""
        return self.transmitting or bool(self._energy)

    def _notify_if_transition(self, was_busy: bool) -> None:
        # Inline of ``carrier_busy`` — this runs once per frame per radio.
        now_busy = self.transmitting or bool(self._energy)
        if self.mac is None or was_busy == now_busy:
            return
        if now_busy:
            self.mac.phy_busy()
        else:
            self.mac.phy_idle()

    # -- medium callbacks ----------------------------------------------------

    def _on_tx_start(self, tx: _Transmission, rss: float, decodable: bool) -> None:
        was_busy = self.transmitting or bool(self._energy)
        self._energy.add(tx)
        if not self.transmitting and decodable:
            if self._lock is None:
                self._lock = _Lock(tx, rss)
            else:
                self._resolve_overlap(tx, rss)
        elif self._lock is not None and not self.transmitting:
            # Sub-decodable interference still corrupts an ongoing reception
            # unless the locked signal captures it.
            if not self.medium._captures(self._lock.rss, rss):
                self._lock.collided = True
        # Inline notify: energy was just added, so the carrier is now busy —
        # a transition happened exactly when it was idle before.
        if not was_busy and self.mac is not None:
            self.mac.phy_busy()

    def _resolve_overlap(self, tx: _Transmission, rss: float) -> None:
        lock = self._lock
        assert lock is not None
        if self.medium._captures(lock.rss, rss):
            return  # locked frame is strong enough to survive untouched
        if self.medium._captures(rss, lock.rss):
            self._lock = _Lock(tx, rss)  # newcomer captures the receiver
            return
        lock.collided = True  # comparable power: garbles the locked frame

    def _on_tx_end(self, tx: _Transmission, rss: float) -> None:
        was_busy = self.transmitting or bool(self._energy)
        self._energy.discard(tx)
        lock = self._lock
        if lock is not None and lock.tx is tx:
            self._lock = None
            self.medium._deliver(tx, self, lock)
        # Inline of _notify_if_transition (runs once per frame per radio).
        now_busy = self.transmitting or bool(self._energy)
        if was_busy != now_busy and self.mac is not None:
            if now_busy:
                self.mac.phy_busy()
            else:
                self.mac.phy_idle()

    def _begin_transmit(self, end_time: float) -> None:
        was_busy = self.transmitting or bool(self._energy)
        self.transmitting = True
        self._tx_end_time = end_time
        self._lock = None  # half duplex: any reception in progress is lost
        self._notify_if_transition(was_busy)

    def _end_transmit(self) -> None:
        was_busy = True  # we were transmitting until this instant
        self.transmitting = False
        self._notify_if_transition(was_busy)
        if self.mac is not None:
            self.mac.phy_tx_done()


class Medium:
    """The shared broadcast channel."""

    #: Radio flavor attached by :meth:`repro.net.scenario.Scenario.add_wireless_node`
    #: — SINR media override this with :class:`SinrRadio`.
    radio_class: type[Radio] = Radio

    def __init__(
        self,
        sim: Simulator,
        phy: PhyParams,
        rng: random.Random,
        error_model: BitErrorModel | None = None,
        pathloss: PathLossModel | None = None,
        capture_enabled: bool = True,
        propagation_delay: bool = True,
        rssi_jitter: Callable[[random.Random], float] | None = None,
    ) -> None:
        self.sim = sim
        self.phy = phy
        self.rng = rng
        self.error_model = error_model or BitErrorModel()
        self.pathloss = pathloss or PathLossModel()
        self.capture_enabled = capture_enabled
        self.propagation_delay = propagation_delay
        self.rssi_jitter = rssi_jitter
        self.radios: list[Radio] = []
        # With no explicit ranges every node hears and decodes everyone.
        self.rx_threshold: float = 0.0
        self.cs_threshold: float = 0.0
        p_dst, p_src = ADDRESS_SURVIVAL.get(phy.name, (1.0, 1.0))
        self.addr_dst_survival = p_dst
        self.addr_src_survival = p_src
        self.frames_sent = 0
        #: Telemetry registry (:mod:`repro.obs`) or None.  Hooks are guarded
        #: with ``is not None`` so a telemetry-off run takes the exact
        #: pre-instrumentation path (golden traces stay byte-identical).
        self.obs: Any = None
        #: Channel fault injector (:class:`repro.faults.FaultInjector`) or
        #: None.  Same zero-cost discipline as ``obs``: the delivery hook is
        #: ``is not None`` guarded and fault models draw only from their own
        #: dedicated RNG streams, so a fault-free run is byte-identical.
        self.faults: Any = None
        # Batched uniform draws for the corruption / address-survival rolls.
        # When a jitter callable shares the stream (it draws Gaussians
        # directly from ``rng``), fall back to draw-on-demand (batch=1) so
        # the interleaving of uniform and Gaussian draws is untouched.
        self._uniform = BatchedUniform(rng, batch=256 if rssi_jitter is None else 1)
        # sender -> [(receiver, rss, propagation delay in us), ...] for every
        # other radio, in attach order.  Positions and the path-loss model are
        # fixed once traffic starts, so the per-frame geometry math is
        # computed once per sender (thresholds stay per-frame comparisons:
        # they may be reconfigured at any time via ``configure_ranges``).
        self._reach: dict[Radio, list[tuple[Radio, float, float]]] = {}
        # rss (linear) -> dB, memoized: each link contributes one value.
        self._rss_db: dict[float, float] = {}

    # -- topology ------------------------------------------------------------

    def _attach(self, radio: Radio) -> None:
        if any(r.name == radio.name for r in self.radios):
            raise ValueError(f"duplicate radio name: {radio.name}")
        self.radios.append(radio)
        self._reach.clear()  # topology changed: recompute link geometry

    def configure_ranges(
        self, comm_range_m: float, interference_range_m: float, tx_power: float = 1.0
    ) -> None:
        """Derive thresholds so nodes decode within ``comm_range_m`` and sense
        (and collide) within ``interference_range_m`` — e.g. the paper's
        Figure 23 topology uses 55 m and 99 m."""
        if interference_range_m < comm_range_m:
            raise ValueError("interference range must be >= communication range")
        self.rx_threshold = self.pathloss.threshold_for_range(tx_power, comm_range_m)
        self.cs_threshold = self.pathloss.threshold_for_range(
            tx_power, interference_range_m
        )

    def rss_between(self, sender: Radio, receiver: Radio) -> float:
        """Received signal strength (linear) of ``sender`` at ``receiver``."""
        d = distance(sender.position, receiver.position)
        return self.pathloss.rss(sender.tx_power, d)

    def _captures(self, strong: float, weak: float) -> bool:
        if not self.capture_enabled:
            return False
        if weak <= 0:
            return True
        return strong / weak >= self.phy.capture_threshold

    # -- transmission ----------------------------------------------------------

    def _reach_from(self, sender: Radio) -> list[tuple[Radio, float, float]]:
        """Cached (receiver, rss, propagation delay) list for ``sender``."""
        reach = self._reach.get(sender)
        if reach is None:
            rss_fn = self.pathloss.rss
            tx_power = sender.tx_power
            reach = []
            for receiver in self.radios:
                if receiver is sender:
                    continue
                d = distance(sender.position, receiver.position)
                delay = d / SPEED_OF_LIGHT_M_PER_US if self.propagation_delay else 0.0
                reach.append((receiver, rss_fn(tx_power, d), delay))
            self._reach[sender] = reach
        return reach

    def transmit(self, sender: Radio, frame: Any, duration: float) -> None:
        """Broadcast ``frame`` from ``sender`` for ``duration`` microseconds."""
        if sender.transmitting:
            raise RuntimeError(f"{sender.name}: already transmitting")
        if duration <= 0:
            raise ValueError(f"non-positive airtime: {duration}")
        sim = self.sim
        tx = _Transmission(sender, frame, sim.now, sim.now + duration)
        self.frames_sent += 1
        obs = self.obs
        if obs is not None:
            obs.inc(f"phy.{sender.name}.tx_frames")
            obs.inc(f"phy.{sender.name}.tx_airtime_us", duration)
        sender._begin_transmit(tx.end)
        call_after = sim.call_after
        call_after(duration, sender._end_transmit)
        cs_threshold = self.cs_threshold
        rx_threshold = self.rx_threshold
        for receiver, rss, delay in self._reach_from(sender):
            if rss < cs_threshold:
                continue  # out of interference range: hears nothing
            call_after(delay, receiver._on_tx_start, tx, rss, rss >= rx_threshold)
            call_after(duration + delay, receiver._on_tx_end, tx, rss)

    def _deliver(self, tx: _Transmission, receiver: Radio, lock: _Lock) -> None:
        frame = tx.frame
        corrupted = lock.collided
        if not corrupted and not self.error_model.trivial:
            corrupted = self.error_model.is_corrupted(
                tx.sender.name,
                receiver.name,
                frame.size_bytes,
                frame.kind.name == "DATA",
                self._uniform,
                rate=getattr(frame, "rate", None),
            )
        addr_ok = True
        if corrupted:
            uniform = self._uniform
            addr_ok = (
                uniform.random() < self.addr_dst_survival
                and uniform.random() < self.addr_src_survival
            )
        faults = self.faults
        if faults is not None:
            corrupted, addr_ok = faults.on_deliver(
                tx, receiver, frame, corrupted, addr_ok
            )
        obs = self.obs
        if obs is not None:
            name = receiver.name
            obs.inc(f"phy.{name}.rx_frames")
            if corrupted:
                obs.inc(f"phy.{name}.rx_corrupted")
                if lock.collided:
                    obs.inc(f"phy.{name}.rx_collisions")
                else:
                    obs.inc(f"phy.{name}.rx_fer_drops")
        rss = lock.rss
        rssi_db = self._rss_db.get(rss)
        if rssi_db is None:
            rssi_db = self._rss_db[rss] = rss_to_db(rss)
        if self.rssi_jitter is not None:
            rssi_db += self.rssi_jitter(self.rng)
        if receiver.mac is not None:
            receiver.mac.phy_receive(frame, corrupted, addr_ok, rssi_db)


#: Sentinel distinguishing "no cached plan yet" from a cached ``None``
#: (clean without a draw) in :class:`VectorizedMedium`'s plan cache.
_NO_PLAN = object()


class VectorizedMedium(Medium):
    """:class:`Medium` with batch-precomputed hot paths (``vectorized`` backend).

    Observable behavior is **bit-identical** to the base class — the golden
    traces and :mod:`repro.perf.diff` enforce it.  Three substitutions:

    * Per-frame corruption/address uniforms come from
      :class:`repro.sim.rng.NumpyBlockUniform` (MT19937 state transplanted
      into numpy; block refills replay the scalar stream exactly).  With an
      RSSI-jitter callable the medium keeps the scalar draw-on-demand
      wrapper, because jitter interleaves Gaussian draws on the same stream.
    * ``transmit`` iterates a **prefiltered hearer table**
      (:func:`repro.phy.vectorized.hearer_table`): the per-receiver
      threshold comparisons move out of the per-frame loop into one numpy
      compare per ``(sender, thresholds)``, and the ``_on_tx_start`` /
      ``_on_tx_end`` bound methods are hoisted once per entry.
    * ``_deliver`` replaces the table-walk in
      :meth:`BitErrorModel.is_corrupted` with a flat **corruption-plan
      cache** keyed ``(src, dst, size, is_data, rate)``, invalidated by the
      error model's mutation epoch so mid-run ``set_ber``/``set_data_fer``
      (and wholesale model replacement) stay correct.
    """

    def __init__(self, *args: Any, rng_block: int = 4096, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if self.rssi_jitter is None:
            from repro.sim.rng import NumpyBlockUniform

            self._uniform = NumpyBlockUniform(self.rng, block=rng_block)
        # sender -> [(on_tx_start, on_tx_end, rss, delay, decodable)] with
        # sub-cs receivers already dropped; valid for _hearers_key thresholds.
        self._hearers: dict[Radio, list[tuple]] = {}
        self._hearers_key = (self.cs_threshold, self.rx_threshold)
        # (src, dst, size, is_data, rate) -> corruption probability or None.
        self._plan: dict[tuple, Any] = {}
        self._plan_key: tuple | None = None

    def _attach(self, radio: Radio) -> None:
        super()._attach(radio)
        self._hearers.clear()

    def _hearers_from(self, sender: Radio) -> list[tuple]:
        key = (self.cs_threshold, self.rx_threshold)
        if key != self._hearers_key:  # configure_ranges() ran mid-scenario
            self._hearers.clear()
            self._hearers_key = key
        hearers = self._hearers.get(sender)
        if hearers is None:
            from repro.phy.vectorized import hearer_table

            hearers = [
                (receiver._on_tx_start, receiver._on_tx_end, rss, delay, decodable)
                for receiver, rss, delay, decodable in hearer_table(
                    self._reach_from(sender), key[0], key[1]
                )
            ]
            self._hearers[sender] = hearers
        return hearers

    def transmit(self, sender: Radio, frame: Any, duration: float) -> None:
        # Mirror of Medium.transmit with the threshold filter precomputed.
        if sender.transmitting:
            raise RuntimeError(f"{sender.name}: already transmitting")
        if duration <= 0:
            raise ValueError(f"non-positive airtime: {duration}")
        sim = self.sim
        tx = _Transmission(sender, frame, sim.now, sim.now + duration)
        self.frames_sent += 1
        obs = self.obs
        if obs is not None:
            obs.inc(f"phy.{sender.name}.tx_frames")
            obs.inc(f"phy.{sender.name}.tx_airtime_us", duration)
        sender._begin_transmit(tx.end)
        call_after = sim.call_after
        call_after(duration, sender._end_transmit)
        for on_tx_start, on_tx_end, rss, delay, decodable in self._hearers_from(
            sender
        ):
            call_after(delay, on_tx_start, tx, rss, decodable)
            call_after(duration + delay, on_tx_end, tx, rss)

    def _deliver(self, tx: _Transmission, receiver: Radio, lock: _Lock) -> None:
        # Mirror of Medium._deliver with the corruption roll cached flat.
        frame = tx.frame
        corrupted = lock.collided
        if not corrupted and not self.error_model.trivial:
            model = self.error_model
            model_key = (id(model), model._epoch, model.default_ber)
            if model_key != self._plan_key:
                self._plan.clear()
                self._plan_key = model_key
            plan_key = (
                tx.sender.name,
                receiver.name,
                frame.size_bytes,
                frame.kind.name == "DATA",
                getattr(frame, "rate", None),
            )
            plan = self._plan.get(plan_key, _NO_PLAN)
            if plan is _NO_PLAN:
                plan = self._plan[plan_key] = model.corruption_plan(*plan_key)
            if plan is not None:
                corrupted = self._uniform.random() < plan
        addr_ok = True
        if corrupted:
            uniform = self._uniform
            addr_ok = (
                uniform.random() < self.addr_dst_survival
                and uniform.random() < self.addr_src_survival
            )
        faults = self.faults
        if faults is not None:
            corrupted, addr_ok = faults.on_deliver(
                tx, receiver, frame, corrupted, addr_ok
            )
        obs = self.obs
        if obs is not None:
            name = receiver.name
            obs.inc(f"phy.{name}.rx_frames")
            if corrupted:
                obs.inc(f"phy.{name}.rx_corrupted")
                if lock.collided:
                    obs.inc(f"phy.{name}.rx_collisions")
                else:
                    obs.inc(f"phy.{name}.rx_fer_drops")
        rss = lock.rss
        rssi_db = self._rss_db.get(rss)
        if rssi_db is None:
            rssi_db = self._rss_db[rss] = rss_to_db(rss)
        if self.rssi_jitter is not None:
            rssi_db += self.rssi_jitter(self.rng)
        if receiver.mac is not None:
            receiver.mac.phy_receive(frame, corrupted, addr_ok, rssi_db)


class SinrRadio(Radio):
    """Radio whose reception decisions come from an SINR margin.

    Tracks the received power of every audible concurrent transmission
    (``_rss``, insertion-ordered alongside ``_energy``) and re-evaluates the
    locked frame's signal-to-interference-plus-noise ratio whenever an
    overlapping transmission *starts*.  Interference only ever increases at
    a start and decreases at an end, and a radio cannot re-synchronize
    mid-frame, so a frame that clears its margin at every overlap start has
    held it for its whole airtime — no check is needed at transmission end,
    and the ``collided`` flag stays sticky exactly as in the pairwise model.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        # Power of every audible in-flight transmission, in arrival order.
        # Plain insertion-ordered dict: the deterministic left-to-right
        # interference sum must be identical across backends, which holds
        # because both schedule ``_on_tx_start`` in reach-list order.
        self._rss: dict[_Transmission, float] = {}
        super().__init__(*args, **kwargs)

    def _on_tx_start(self, tx: _Transmission, rss: float, decodable: bool) -> None:
        was_busy = self.transmitting or bool(self._energy)
        self._energy.add(tx)
        self._rss[tx] = rss
        if not self.transmitting:
            medium = self.medium
            lock = self._lock
            if lock is None:
                if decodable and medium._sinr_ok(self, tx, rss):
                    self._lock = _Lock(tx, rss)
            elif lock.collided or not medium._sinr_ok(self, lock.tx, lock.rss):
                # The locked frame is doomed (already garbled, or the
                # newcomer pushed it below its margin).  The newcomer takes
                # the receiver only if it clears its own margin *including*
                # the doomed frame's power — SINR capture.
                if decodable and medium._sinr_ok(self, tx, rss):
                    self._lock = _Lock(tx, rss)
                elif not lock.collided:
                    lock.collided = True
        # Inline notify, as in the base class: energy was just added.
        if not was_busy and self.mac is not None:
            self.mac.phy_busy()

    def _on_tx_end(self, tx: _Transmission, rss: float) -> None:
        was_busy = self.transmitting or bool(self._energy)
        self._energy.discard(tx)
        self._rss.pop(tx, None)
        lock = self._lock
        if lock is not None and lock.tx is tx:
            self._lock = None
            self.medium._deliver(tx, self, lock)
        now_busy = self.transmitting or bool(self._energy)
        if was_busy != now_busy and self.mac is not None:
            if now_busy:
                self.mac.phy_busy()
            else:
                self.mac.phy_idle()


class _SinrMixin:
    """SINR decision logic shared by the scalar and vectorized media.

    Reception is gated on ``rss >= threshold * (noise_floor + interference)``
    where *interference* is the summed power of every other audible
    transmission at the receiver, and *threshold* is the PHY's per-rate
    margin (:meth:`repro.phy.params.PhyParams.sinr_threshold`).  The
    pairwise ``capture_enabled`` flag is unused here — capture is what the
    SINR comparison itself decides.  Transmissions below the carrier-sense
    threshold are never scheduled at a receiver (same pruning as the
    pairwise model), so they do not contribute interference; the cs
    threshold is the model's interference-accounting floor.
    """

    radio_class = SinrRadio

    def __init__(
        self,
        *args: Any,
        noise_floor: float = 1e-10,
        capture_margin: float | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        #: Linear noise power added to the interference sum.
        self.noise_floor = float(noise_floor)
        #: Base SINR margin; None falls back to ``phy.capture_threshold``.
        self.capture_margin = capture_margin
        # rate -> threshold, resolved once per distinct rate seen.
        self._sinr_thresholds: dict[float, float] = {}

    def _sinr_threshold_for(self, frame: Any) -> float:
        # Control frames fly at the basic rate (their airtime already does);
        # data frames use their explicit rate or the PHY default.
        if frame.kind.name == "DATA":
            rate = getattr(frame, "rate", None)
            if rate is None:
                rate = self.phy.data_rate
        else:
            rate = self.phy.basic_rate
        threshold = self._sinr_thresholds.get(rate)
        if threshold is None:
            threshold = self._sinr_thresholds[rate] = self.phy.sinr_threshold(
                rate, self.capture_margin
            )
        return threshold

    def _sinr_ok(self, radio: SinrRadio, tx: _Transmission, rss: float) -> bool:
        """Does ``tx`` clear its SINR margin at ``radio`` right now?

        The multiply form avoids a division, and the left-to-right python
        sum over the insertion-ordered ``_rss`` dict is deterministic and
        backend-identical (:func:`repro.phy.vectorized.sinr_array` is the
        batch analysis twin, pinned element-exact in tests).
        """
        interference = 0.0
        for other, power in radio._rss.items():
            if other is not tx:
                interference += power
        return rss >= self._sinr_threshold_for(tx.frame) * (
            self.noise_floor + interference
        )


class SinrMedium(_SinrMixin, Medium):
    """:class:`Medium` with SINR-based reception (``channel model "sinr"``).

    Carrier sense, corruption/FER rolls, address survival, fault hooks and
    delivery are all inherited unchanged — the model only replaces *which
    overlaps corrupt or capture*, via :class:`SinrRadio`.  Golden traces for
    this model live in their own committed set (the pairwise set stays the
    reference; DESIGN.md §15).
    """


class VectorizedSinrMedium(_SinrMixin, VectorizedMedium):
    """:class:`VectorizedMedium` with SINR-based reception.

    Bit-identical to :class:`SinrMedium` — the hearer tables preserve
    reach-list order, so ``_on_tx_start`` arrival order (and with it the
    interference-sum order) matches the scalar medium exactly; the
    cross-backend differential harness enforces it on the SINR golden set.
    """
