"""Broadcast wireless medium with ranges, capture effect, and corruption.

Every attached :class:`Radio` hears every transmission whose received power
exceeds its carrier-sense threshold; it can *decode* a frame when the power
also exceeds the reception threshold.  A radio locks onto the first decodable
frame (it cannot re-synchronize mid-frame); overlapping arrivals either
corrupt the locked frame or — when one signal is stronger by the capture
threshold — are resolved by capture, exactly the semantics the paper relies on
for ACK spoofing (Section IV-B).

Corrupted frames are *delivered* to the MAC with a ``corrupted`` flag (and a
model of whether the MAC address fields survived, per the paper's Table I)
instead of being silently dropped, so that fake-ACK misbehavior and EIFS
deferral can react to them.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.phy.error import BitErrorModel
from repro.phy.params import PhyParams
from repro.phy.propagation import (
    SPEED_OF_LIGHT_M_PER_US,
    PathLossModel,
    distance,
    rss_to_db,
)
from repro.sim.engine import Simulator

#: Table I of the paper: fraction of corrupted frames whose destination MAC
#: address survives, and — among those — whose source address also survives.
ADDRESS_SURVIVAL = {
    "802.11b": (1351 / 1367, 1282 / 1351),
    "802.11a": (6197 / 7376, 5663 / 6197),
}


class _Transmission:
    """One frame in flight."""

    __slots__ = ("sender", "frame", "start", "end")

    def __init__(self, sender: "Radio", frame: Any, start: float, end: float):
        self.sender = sender
        self.frame = frame
        self.start = start
        self.end = end


class _Lock:
    """Reception lock: the transmission a radio is currently decoding."""

    __slots__ = ("tx", "rss", "collided")

    def __init__(self, tx: _Transmission, rss: float):
        self.tx = tx
        self.rss = rss
        self.collided = False


class Radio:
    """A half-duplex radio attached to one :class:`Medium`.

    The owning MAC registers itself as ``radio.mac`` and must provide
    ``phy_busy()``, ``phy_idle()``, ``phy_tx_done()`` and
    ``phy_receive(frame, corrupted, addr_ok, rssi_db)``.
    """

    def __init__(
        self,
        medium: "Medium",
        name: str,
        position: tuple[float, float] = (0.0, 0.0),
        tx_power: float = 1.0,
    ) -> None:
        self.medium = medium
        self.name = name
        self.position = position
        self.tx_power = tx_power
        self.mac: Any = None
        self.transmitting = False
        self._tx_end_time = 0.0
        self._energy: set[_Transmission] = set()
        self._lock: Optional[_Lock] = None
        medium._attach(self)

    # -- transmit path -----------------------------------------------------

    def transmit(self, frame: Any, duration: float) -> None:
        """Put ``frame`` on the air for ``duration`` microseconds."""
        self.medium.transmit(self, frame, duration)

    # -- carrier sense -----------------------------------------------------

    @property
    def carrier_busy(self) -> bool:
        """Physical carrier sense: energy above threshold or self-transmit."""
        return self.transmitting or bool(self._energy)

    def _notify_if_transition(self, was_busy: bool) -> None:
        now_busy = self.carrier_busy
        if self.mac is None or was_busy == now_busy:
            return
        if now_busy:
            self.mac.phy_busy()
        else:
            self.mac.phy_idle()

    # -- medium callbacks ----------------------------------------------------

    def _on_tx_start(self, tx: _Transmission, rss: float, decodable: bool) -> None:
        was_busy = self.carrier_busy
        self._energy.add(tx)
        if not self.transmitting and decodable:
            if self._lock is None:
                self._lock = _Lock(tx, rss)
            else:
                self._resolve_overlap(tx, rss)
        elif self._lock is not None and not self.transmitting:
            # Sub-decodable interference still corrupts an ongoing reception
            # unless the locked signal captures it.
            if not self.medium._captures(self._lock.rss, rss):
                self._lock.collided = True
        self._notify_if_transition(was_busy)

    def _resolve_overlap(self, tx: _Transmission, rss: float) -> None:
        lock = self._lock
        assert lock is not None
        if self.medium._captures(lock.rss, rss):
            return  # locked frame is strong enough to survive untouched
        if self.medium._captures(rss, lock.rss):
            self._lock = _Lock(tx, rss)  # newcomer captures the receiver
            return
        lock.collided = True  # comparable power: garbles the locked frame

    def _on_tx_end(self, tx: _Transmission, rss: float) -> None:
        was_busy = self.carrier_busy
        self._energy.discard(tx)
        lock = self._lock
        if lock is not None and lock.tx is tx:
            self._lock = None
            self._deliver(tx, lock)
        self._notify_if_transition(was_busy)

    def _deliver(self, tx: _Transmission, lock: _Lock) -> None:
        self.medium._deliver(tx, self, lock)

    def _begin_transmit(self, end_time: float) -> None:
        was_busy = self.carrier_busy
        self.transmitting = True
        self._tx_end_time = end_time
        self._lock = None  # half duplex: any reception in progress is lost
        self._notify_if_transition(was_busy)

    def _end_transmit(self) -> None:
        was_busy = self.carrier_busy
        self.transmitting = False
        self._notify_if_transition(was_busy)
        if self.mac is not None:
            self.mac.phy_tx_done()


class Medium:
    """The shared broadcast channel."""

    def __init__(
        self,
        sim: Simulator,
        phy: PhyParams,
        rng: random.Random,
        error_model: BitErrorModel | None = None,
        pathloss: PathLossModel | None = None,
        capture_enabled: bool = True,
        propagation_delay: bool = True,
        rssi_jitter: Callable[[random.Random], float] | None = None,
    ) -> None:
        self.sim = sim
        self.phy = phy
        self.rng = rng
        self.error_model = error_model or BitErrorModel()
        self.pathloss = pathloss or PathLossModel()
        self.capture_enabled = capture_enabled
        self.propagation_delay = propagation_delay
        self.rssi_jitter = rssi_jitter
        self.radios: list[Radio] = []
        # With no explicit ranges every node hears and decodes everyone.
        self.rx_threshold: float = 0.0
        self.cs_threshold: float = 0.0
        p_dst, p_src = ADDRESS_SURVIVAL.get(phy.name, (1.0, 1.0))
        self.addr_dst_survival = p_dst
        self.addr_src_survival = p_src
        self.frames_sent = 0

    # -- topology ------------------------------------------------------------

    def _attach(self, radio: Radio) -> None:
        if any(r.name == radio.name for r in self.radios):
            raise ValueError(f"duplicate radio name: {radio.name}")
        self.radios.append(radio)

    def configure_ranges(
        self, comm_range_m: float, interference_range_m: float, tx_power: float = 1.0
    ) -> None:
        """Derive thresholds so nodes decode within ``comm_range_m`` and sense
        (and collide) within ``interference_range_m`` — e.g. the paper's
        Figure 23 topology uses 55 m and 99 m."""
        if interference_range_m < comm_range_m:
            raise ValueError("interference range must be >= communication range")
        self.rx_threshold = self.pathloss.threshold_for_range(tx_power, comm_range_m)
        self.cs_threshold = self.pathloss.threshold_for_range(
            tx_power, interference_range_m
        )

    def rss_between(self, sender: Radio, receiver: Radio) -> float:
        """Received signal strength (linear) of ``sender`` at ``receiver``."""
        d = distance(sender.position, receiver.position)
        return self.pathloss.rss(sender.tx_power, d)

    def _captures(self, strong: float, weak: float) -> bool:
        if not self.capture_enabled:
            return False
        if weak <= 0:
            return True
        return strong / weak >= self.phy.capture_threshold

    # -- transmission ----------------------------------------------------------

    def transmit(self, sender: Radio, frame: Any, duration: float) -> None:
        """Broadcast ``frame`` from ``sender`` for ``duration`` microseconds."""
        if sender.transmitting:
            raise RuntimeError(f"{sender.name}: already transmitting")
        if duration <= 0:
            raise ValueError(f"non-positive airtime: {duration}")
        now = self.sim.now
        tx = _Transmission(sender, frame, now, now + duration)
        self.frames_sent += 1
        sender._begin_transmit(tx.end)
        self.sim.schedule(duration, sender._end_transmit)
        for receiver in self.radios:
            if receiver is sender:
                continue
            rss = self.rss_between(sender, receiver)
            if rss < self.cs_threshold:
                continue  # out of interference range: hears nothing
            decodable = rss >= self.rx_threshold
            delay = 0.0
            if self.propagation_delay:
                d = distance(sender.position, receiver.position)
                delay = d / SPEED_OF_LIGHT_M_PER_US
            self.sim.schedule(delay, receiver._on_tx_start, tx, rss, decodable)
            self.sim.schedule(duration + delay, receiver._on_tx_end, tx, rss)

    def _deliver(self, tx: _Transmission, receiver: Radio, lock: _Lock) -> None:
        frame = tx.frame
        corrupted = lock.collided
        if not corrupted:
            corrupted = self.error_model.is_corrupted(
                tx.sender.name,
                receiver.name,
                frame.size_bytes,
                frame.kind.name == "DATA",
                self.rng,
                rate=getattr(frame, "rate", None),
            )
        addr_ok = True
        if corrupted:
            addr_ok = (
                self.rng.random() < self.addr_dst_survival
                and self.rng.random() < self.addr_src_survival
            )
        rssi_db = rss_to_db(lock.rss)
        if self.rssi_jitter is not None:
            rssi_db += self.rssi_jitter(self.rng)
        if receiver.mac is not None:
            receiver.mac.phy_receive(frame, corrupted, addr_ok, rssi_db)
