"""IEEE 802.11 PHY/MAC timing parameters and frame airtime.

Two parameter sets are provided, matching the paper's evaluation:

* :func:`dot11b` — 802.11b DSSS, 11 Mbps data rate, long preamble.
* :func:`dot11a` — 802.11a OFDM, 6 Mbps data rate.

Durations are in microseconds throughout.

Airtime is pure arithmetic on frozen parameters, so the hot accessors are
lookup tables rather than per-frame recomputation: derived interframe spaces
and control-frame airtimes are computed once per :class:`PhyParams` instance
(``functools.cached_property``), and :meth:`PhyParams.airtime` memoizes per
``(size, rate)`` — the exact closed form lives in :func:`airtime_formula`,
and ``tests/test_phy_params.py`` pins table and formula to each other across
the full rate x size domain, so the fast path cannot drift.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

#: Maximum value of the MAC duration (NAV) field, per IEEE 802.11 (Section IV-A
#: of the paper: greedy receivers can inflate NAV up to this many microseconds).
MAX_NAV_US = 32767

#: MAC frame sizes in bytes (header + FCS), per IEEE 802.11-1999.
RTS_SIZE = 20
CTS_SIZE = 14
ACK_SIZE = 14
DATA_HEADER_SIZE = 28  # 24-byte MAC header + 4-byte FCS


def airtime_formula(
    size_bytes: int,
    rate: float,
    preamble: float,
    ofdm: bool,
    ofdm_bits_per_symbol: int,
) -> float:
    """Closed-form frame airtime in us — the reference the tables must match.

    For OFDM PHYs the payload is padded to whole 4 us symbols including the
    16-bit SERVICE field and 6 tail bits, per 802.11a.
    """
    bits = 8 * size_bytes
    if ofdm:
        # Bits per symbol scales linearly with the rate relative to 6 Mbps.
        bits_per_symbol = ofdm_bits_per_symbol * (rate / 6.0)
        symbols = math.ceil((16 + 6 + bits) / bits_per_symbol)
        return preamble + 4.0 * symbols
    return preamble + bits / rate


@dataclass(frozen=True)
class PhyParams:
    """Timing and contention parameters for one 802.11 PHY flavor."""

    name: str
    slot_time: float  # us
    sifs: float  # us
    cw_min: int  # initial contention window (slots), e.g. 31 for 802.11b
    cw_max: int  # maximum contention window (slots)
    data_rate: float  # bits per microsecond (Mbps)
    basic_rate: float  # rate for control frames, bits per microsecond
    preamble: float  # PLCP preamble + header duration, us
    ofdm: bool = False  # OFDM PHYs pad transmissions to 4 us symbols
    ofdm_bits_per_symbol: int = 0
    short_retry_limit: int = 7
    long_retry_limit: int = 4
    capture_threshold: float = 10.0  # linear power ratio needed for capture

    @cached_property
    def difs(self) -> float:
        """DIFS = SIFS + 2 x slot."""
        return self.sifs + 2 * self.slot_time

    @cached_property
    def eifs(self) -> float:
        """EIFS = SIFS + ACK airtime at the basic rate + DIFS."""
        return self.sifs + self.ack_time + self.difs

    def airtime(self, size_bytes: int, rate: float | None = None) -> float:
        """Airtime in us of a frame of ``size_bytes`` at ``rate`` (Mbps).

        Memoized per ``(size, rate)``; bit-identical to
        :func:`airtime_formula` (which also documents the OFDM padding).
        """
        if rate is None:
            rate = self.data_rate
        table = self.__dict__.get("_airtime_table")
        if table is None:
            table = {}
            self.__dict__["_airtime_table"] = table
        key = (size_bytes, rate)
        value = table.get(key)
        if value is None:
            value = table[key] = airtime_formula(
                size_bytes, rate, self.preamble, self.ofdm, self.ofdm_bits_per_symbol
            )
        return value

    def sinr_threshold(self, rate: float | None = None, margin: float | None = None) -> float:
        """Minimum SINR (linear) to decode a frame sent at ``rate`` Mbps.

        ``margin`` defaults to :attr:`capture_threshold`, so the pairwise
        capture knob and the SINR margin agree at the basic rate; faster
        rates scale the requirement linearly with spectral efficiency
        (``rate / basic_rate``), never below the base margin.  Memoized per
        ``(rate, margin)`` like :meth:`airtime`.
        """
        table = self.__dict__.get("_sinr_table")
        if table is None:
            table = {}
            self.__dict__["_sinr_table"] = table
        key = (rate, margin)
        value = table.get(key)
        if value is None:
            base = margin if margin is not None else self.capture_threshold
            r = rate if rate is not None else self.data_rate
            value = table[key] = base * max(1.0, r / self.basic_rate)
        return value

    @cached_property
    def rts_time(self) -> float:
        """Airtime of an RTS frame at the basic rate."""
        return self.airtime(RTS_SIZE, self.basic_rate)

    @cached_property
    def cts_time(self) -> float:
        """Airtime of a CTS frame at the basic rate."""
        return self.airtime(CTS_SIZE, self.basic_rate)

    @cached_property
    def ack_time(self) -> float:
        """Airtime of a MAC ACK frame at the basic rate."""
        return self.airtime(ACK_SIZE, self.basic_rate)

    def data_time(self, payload_bytes: int) -> float:
        """Airtime of a data frame carrying ``payload_bytes`` of MSDU."""
        return self.airtime(DATA_HEADER_SIZE + payload_bytes, self.data_rate)

    def cts_timeout(self) -> float:
        """How long an RTS sender waits for the CTS before declaring failure."""
        return self.sifs + self.cts_time + self.slot_time + 2.0

    def ack_timeout(self) -> float:
        """How long a data sender waits for the MAC ACK."""
        return self.sifs + self.ack_time + self.slot_time + 2.0

    def __getstate__(self):
        """Pickle only the declared fields, never the memo tables.

        Keeps worker-process job payloads (PR 1 fan-out) small and ensures a
        cache entry can never smuggle stale derived values across a code
        change.
        """
        from dataclasses import fields

        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __setstate__(self, state):
        self.__dict__.update(state)


def dot11b(data_rate_mbps: float = 11.0) -> PhyParams:
    """802.11b DSSS with long preamble; control frames at 1 Mbps."""
    return PhyParams(
        name="802.11b",
        slot_time=20.0,
        sifs=10.0,
        cw_min=31,
        cw_max=1023,
        data_rate=data_rate_mbps,
        basic_rate=1.0,
        preamble=192.0,
    )


def dot11a(data_rate_mbps: float = 6.0) -> PhyParams:
    """802.11a OFDM; control frames at 6 Mbps."""
    return PhyParams(
        name="802.11a",
        slot_time=9.0,
        sifs=16.0,
        cw_min=15,
        cw_max=1023,
        data_rate=data_rate_mbps,
        basic_rate=6.0,
        preamble=20.0,
        ofdm=True,
        ofdm_bits_per_symbol=24,
    )
