"""Numpy batch kernels for the ``vectorized`` simulation backend.

Design rule: **a vectorized kernel must be bit-identical to the scalar
closed form it replaces**, because the golden-trace suite and the
cross-backend differential harness (:mod:`repro.perf.diff`) compare traces
byte-for-byte.  That rules out ``np.power`` for the FER curve: numpy's SIMD
``pow`` differs from CPython's ``float.__pow__`` (both call a pow, but not
the same one) by 1-2 ulp on a few percent of inputs — measured on this
container, ~5% of random ``(ber, size)`` pairs diverge in the last bits.
Division and ``np.ceil``, by contrast, are IEEE-exact operations, so the
airtime formula vectorizes directly.

Hence two strategies:

* :func:`airtime_array` — straight numpy translation of
  :func:`repro.phy.params.airtime_formula` (add/div/ceil only, exact).
* :func:`fer_array` — *unique-then-gather*: evaluate the scalar
  :func:`repro.phy.error.frame_error_rate` once per distinct
  ``(ber, size)`` pair and scatter with a vectorized gather.  Real traffic
  has a handful of distinct frame sizes, so this is O(distinct) scalar pows
  plus O(n) numpy indexing — batch-shaped *and* exact by construction.

``tests/test_vectorized_phy.py`` pins both element-wise (``==``, not
approx) to the scalar forms with hypothesis, including zero-length frames
and FER saturation at 1.0.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.phy.error import PLCP_BYTES, frame_error_rate

if TYPE_CHECKING:
    import numpy

    from repro.phy.params import PhyParams


def airtime_array(
    sizes: "Sequence[int] | numpy.ndarray",
    rate: float,
    preamble: float,
    ofdm: bool,
    ofdm_bits_per_symbol: int,
) -> "numpy.ndarray":
    """Vectorized :func:`repro.phy.params.airtime_formula` (bit-exact).

    ``sizes`` is an array of frame sizes in bytes; the remaining arguments
    mirror the scalar formula.  Every element equals the scalar result
    exactly: ``8 * size`` and ``16 + 6 + bits`` are integer-exact in
    float64 far beyond any frame size, and division/``ceil`` round
    identically in numpy and CPython.
    """
    import numpy as np

    bits = 8.0 * np.asarray(sizes, dtype=np.float64)
    if ofdm:
        bits_per_symbol = ofdm_bits_per_symbol * (rate / 6.0)
        symbols = np.ceil((16.0 + 6.0 + bits) / bits_per_symbol)
        return preamble + 4.0 * symbols
    return preamble + bits / rate


def phy_airtime_array(
    phy: "PhyParams", sizes: "Sequence[int] | numpy.ndarray", rate: float | None = None
) -> "numpy.ndarray":
    """:meth:`PhyParams.airtime` over an array of sizes at one rate."""
    if rate is None:
        rate = phy.data_rate
    return airtime_array(
        sizes, rate, phy.preamble, phy.ofdm, phy.ofdm_bits_per_symbol
    )


def fer_array(
    ber: "float | Sequence[float] | numpy.ndarray",
    sizes: "int | Sequence[int] | numpy.ndarray",
    plcp_bytes: int = PLCP_BYTES,
) -> "numpy.ndarray":
    """Vectorized :func:`repro.phy.error.frame_error_rate` (bit-exact).

    ``ber`` and ``sizes`` broadcast against each other.  Each distinct
    ``(ber, size)`` pair is evaluated once through the scalar (cached)
    closed form — see the module docstring for why ``np.power`` is not an
    option — then gathered back to the broadcast shape.  Raises exactly the
    scalar validation errors for out-of-range inputs.
    """
    import numpy as np

    ber_b, size_b = np.broadcast_arrays(
        np.asarray(ber, dtype=np.float64), np.asarray(sizes, dtype=np.int64)
    )
    if ber_b.size == 0:
        return np.zeros(ber_b.shape, dtype=np.float64)
    pairs = np.stack(
        [ber_b.ravel(), size_b.ravel().astype(np.float64)], axis=1
    )
    uniq, inverse = np.unique(pairs, axis=0, return_inverse=True)
    table = np.array(
        [frame_error_rate(float(b), int(s), plcp_bytes) for b, s in uniq],
        dtype=np.float64,
    )
    return table[inverse.reshape(ber_b.shape)]


def sinr_array(
    rss: "float | Sequence[float] | numpy.ndarray",
    interference: "float | Sequence[float] | numpy.ndarray",
    noise_floor: float,
) -> "numpy.ndarray":
    """Signal-to-interference-plus-noise ratio over arrays (bit-exact).

    ``rss / (noise_floor + interference)`` with broadcasting — addition and
    division are IEEE-exact, so every element equals the scalar python
    expression bit-for-bit (unlike ``np.power``; see the module docstring).
    The simulation's own decision uses the equivalent multiply form
    ``rss >= threshold * (noise_floor + interference)`` on both backends
    (shared code in :class:`repro.phy.medium._SinrMixin`); this kernel is
    the batch twin for analysis and property tests.
    """
    import numpy as np

    rss_a = np.asarray(rss, dtype=np.float64)
    interference_a = np.asarray(interference, dtype=np.float64)
    return rss_a / (noise_floor + interference_a)


def hearer_table(
    entries: "Sequence[tuple[Any, float, float]]",
    cs_threshold: float,
    rx_threshold: float,
) -> "list[tuple[Any, float, float, bool]]":
    """Prefilter a sender's reach list against the medium thresholds.

    ``entries`` is the scalar reach cache — ``(receiver, rss, delay)``
    triples — and the result keeps only receivers inside interference range,
    with the decodability flag (``rss >= rx_threshold``) precomputed.  The
    scalar ``transmit`` loop performs both comparisons per frame per
    receiver; the vectorized medium performs them once per
    ``(topology, thresholds)`` here, as one numpy compare over the RSS
    vector.  Flags are converted to plain ``bool`` — ``numpy.bool_`` must
    never reach the MAC or the trace serializer.
    """
    import numpy as np

    if not entries:
        return []
    rss = np.array([e[1] for e in entries], dtype=np.float64)
    audible = rss >= cs_threshold
    decodable = (rss >= rx_threshold).tolist()
    return [
        (receiver, link_rss, delay, decodable[i])
        for i, (receiver, link_rss, delay) in enumerate(entries)
        if audible[i]
    ]


__all__ = [
    "airtime_array",
    "fer_array",
    "hearer_table",
    "phy_airtime_array",
    "sinr_array",
]
