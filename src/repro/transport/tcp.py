"""TCP Reno sender and receiver.

A compact but faithful Reno: slow start, congestion avoidance, three-dup-ACK
fast retransmit + fast recovery, exponential RTO backoff with Karn's
algorithm.  Sequence numbers are in MSS-sized segments (as ns-2's TCP agents
count), which is also how the paper reports congestion windows (Table II).

ACK spoofing (misbehavior 2) hurts TCP precisely through this machinery: a
spoofed MAC ACK suppresses MAC retransmission, the segment loss reaches the
TCP sender as dup-ACKs or a timeout, and the congestion window collapses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.sim.engine import Event, Simulator
from repro.transport.packets import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node

US_PER_S = 1_000_000.0


class CwndTracker:
    """Time-weighted congestion-window statistics (Table II metric)."""

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._last_time = sim.now
        self._last_value = 1.0
        self._area = 0.0
        self._start = sim.now
        self.max_seen = 1.0

    def record(self, cwnd: float) -> None:
        now = self._sim.now
        self._area += self._last_value * (now - self._last_time)
        self._last_time = now
        self._last_value = cwnd
        self.max_seen = max(self.max_seen, cwnd)

    def average(self) -> float:
        elapsed = self._sim.now - self._start
        if elapsed <= 0:
            return self._last_value
        area = self._area + self._last_value * (self._sim.now - self._last_time)
        return area / elapsed


class TcpSender:
    """Reno sender with an unbounded (FTP-like) supply of data."""

    def __init__(
        self,
        sim: Simulator,
        node: "Node",
        flow_id: str,
        dst: str,
        mss: int = 1024,
        window: int = 20,
        initial_rto_us: float = 1_000_000.0,
        min_rto_us: float = 200_000.0,
        max_rto_us: float = 16_000_000.0,
    ) -> None:
        # The initial RTO is the RFC 6298 1 s: a value below the path RTT
        # causes chronic spurious timeouts that Karn's rule can never recover
        # from (retransmitted segments yield no RTT samples, so the RTO never
        # adapts upward), while a larger value lets one early loss idle the
        # flow for a large fraction of a short simulation.
        self.sim = sim
        self.node = node
        self.flow_id = flow_id
        self.dst = dst
        self.mss = mss
        self.window = window  # receiver-advertised cap, in segments
        self.min_rto_us = min_rto_us
        self.max_rto_us = max_rto_us

        self.cwnd = 1.0
        self.ssthresh = float(window)
        self.snd_una = 0  # lowest unacknowledged segment
        self.snd_nxt = 0  # next new segment to send
        self.snd_max = 0  # highest segment ever sent + 1 (survives go-back-N)
        self._dupacks = 0
        self._recover = -1  # fast-recovery high-water mark (-1: not in recovery)

        self._srtt: float | None = None
        self._rttvar = 0.0
        self._rto = initial_rto_us
        self._backoff = 1
        self._timed_seq: int | None = None  # segment being timed (Karn)
        self._timed_at = 0.0
        self._retransmitted: set[int] = set()
        self._rto_event: Event | None = None

        self.cwnd_stats = CwndTracker(sim)
        self.segments_sent = 0
        self.retransmits = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        #: Optional hook fired with (seq, now) on every TCP retransmission —
        #: used by the GRC cross-layer spoofed-ACK detector (Section VII-B).
        self.on_retransmit: "Callable[[int, float], None] | None" = None
        #: Telemetry registry (:mod:`repro.obs`) or None (guarded hooks).
        self.obs = None
        node.bind_agent(flow_id, self)

    # ------------------------------------------------------------------ API --

    def start(self, at: float = 0.0) -> None:
        self.sim.schedule_at(max(at, self.sim.now), self._try_send)

    # ------------------------------------------------------------- sending --

    def _effective_window(self) -> int:
        return int(min(self.cwnd, self.window))

    def _try_send(self) -> None:
        limit = self.snd_una + max(1, self._effective_window())
        while self.snd_nxt < limit:
            self._send_segment(self.snd_nxt, retransmit=False)
            self.snd_nxt += 1
            limit = self.snd_una + max(1, self._effective_window())

    def _send_segment(self, seq: int, retransmit: bool) -> None:
        packet = Packet(
            PacketKind.TCP_DATA,
            self.flow_id,
            self.node.name,
            self.dst,
            seq=seq,
            payload_bytes=self.mss,
            created_at=self.sim.now,
        )
        self.segments_sent += 1
        self.snd_max = max(self.snd_max, seq + 1)
        if self.obs is not None:
            self.obs.inc(f"transport.{self.node.name}.tx_segments")
            if retransmit:
                self.obs.inc(f"transport.{self.node.name}.tx_retransmits")
        if retransmit:
            self.retransmits += 1
            self._retransmitted.add(seq)
            if self.on_retransmit is not None:
                self.on_retransmit(seq, self.sim.now)
        elif self._timed_seq is None:
            self._timed_seq = seq
            self._timed_at = self.sim.now
        if self._rto_event is None:
            self._arm_rto()
        self.node.send_packet(packet)

    # ---------------------------------------------------------------- ACKs --

    def receive(self, packet: Packet) -> None:
        if packet.kind is not PacketKind.TCP_ACK:
            return
        ackno = packet.ack
        if ackno > self.snd_una:
            self._new_ack(ackno)
        elif ackno == self.snd_una:
            self._dup_ack()
        self._try_send()

    def _new_ack(self, ackno: int) -> None:
        if self._timed_seq is not None and ackno > self._timed_seq:
            if self._timed_seq not in self._retransmitted:
                self._update_rtt(self.sim.now - self._timed_at)
            self._timed_seq = None
        self._backoff = 1
        self._dupacks = 0
        self.snd_una = ackno
        self._retransmitted = {s for s in self._retransmitted if s >= ackno}
        if self._recover >= 0:
            # Reno: leave fast recovery on the first new ACK, deflate cwnd.
            self.cwnd = self.ssthresh
            self._recover = -1
        elif self.cwnd < self.ssthresh:
            self.cwnd += 1.0  # slow start
        else:
            self.cwnd += 1.0 / self.cwnd  # congestion avoidance
        self.cwnd = min(self.cwnd, float(self.window))
        self.cwnd_stats.record(self.cwnd)
        if self.snd_una == self.snd_nxt:
            self._cancel_rto()
        else:
            self._arm_rto(restart=True)

    def _dup_ack(self) -> None:
        self._dupacks += 1
        if self._recover >= 0:
            self.cwnd += 1.0  # inflate during recovery
            self.cwnd_stats.record(self.cwnd)
            return
        if self._dupacks == 3:
            self.fast_retransmits += 1
            if self.obs is not None:
                self.obs.inc(f"transport.{self.node.name}.tx_fast_retransmits")
            flight = self.snd_nxt - self.snd_una
            self.ssthresh = max(flight / 2.0, 2.0)
            self._recover = self.snd_nxt
            self._send_segment(self.snd_una, retransmit=True)
            self.cwnd = self.ssthresh + 3.0
            self.cwnd_stats.record(self.cwnd)
            self._arm_rto(restart=True)

    # ----------------------------------------------------------------- RTO --

    def _update_rtt(self, sample_us: float) -> None:
        if self._srtt is None:
            self._srtt = sample_us
            self._rttvar = sample_us / 2.0
        else:
            err = sample_us - self._srtt
            self._srtt += 0.125 * err
            self._rttvar += 0.25 * (abs(err) - self._rttvar)
        self._rto = max(self.min_rto_us, self._srtt + 4.0 * self._rttvar)
        self._rto = min(self._rto, self.max_rto_us)

    def _arm_rto(self, restart: bool = False) -> None:
        if restart:
            self._cancel_rto()
        if self._rto_event is None:
            self._rto_event = self.sim.schedule(
                self._rto * self._backoff, self._on_rto
            )

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self.sim.cancel(self._rto_event)
            self._rto_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.snd_una == self.snd_nxt:
            return  # nothing outstanding
        self.timeouts += 1
        if self.obs is not None:
            self.obs.inc(f"transport.{self.node.name}.tx_timeouts")
        self.ssthresh = max((self.snd_nxt - self.snd_una) / 2.0, 2.0)
        self.cwnd = 1.0
        self.cwnd_stats.record(self.cwnd)
        self._dupacks = 0
        self._recover = -1
        self._timed_seq = None
        self._backoff = min(self._backoff * 2, 64)
        self.snd_nxt = self.snd_una  # go-back-N from the hole
        self._send_segment(self.snd_una, retransmit=True)
        self.snd_nxt = self.snd_una + 1
        self._arm_rto()


class TcpReceiver:
    """Cumulative-ACK receiver that ACKs every received segment."""

    def __init__(self, sim: Simulator, node: "Node", flow_id: str, src: str) -> None:
        self.sim = sim
        self.node = node
        self.flow_id = flow_id
        self.src = src
        self.rcv_next = 0
        self._out_of_order: set[int] = set()
        self._received: set[int] = set()
        self.segments_received = 0  # new (non-duplicate) segments: goodput
        self.bytes_received = 0
        self.duplicates = 0
        self.acks_sent = 0
        #: Telemetry registry (:mod:`repro.obs`) or None (guarded hooks).
        self.obs = None
        node.bind_agent(flow_id, self)

    def receive(self, packet: Packet) -> None:
        if packet.kind is not PacketKind.TCP_DATA:
            return
        seq = packet.seq
        if seq in self._received or seq < self.rcv_next:
            self.duplicates += 1
        else:
            self._received.add(seq)
            self.segments_received += 1
            self.bytes_received += packet.payload_bytes
            if self.obs is not None:
                obs = self.obs
                name = self.node.name
                obs.inc(f"transport.{name}.rx_packets")
                obs.inc(f"transport.{name}.rx_bytes", packet.payload_bytes)
            if seq == self.rcv_next:
                self.rcv_next += 1
                while self.rcv_next in self._out_of_order:
                    self._out_of_order.discard(self.rcv_next)
                    self._received.discard(self.rcv_next - 1)
                    self.rcv_next += 1
            else:
                self._out_of_order.add(seq)
        self._send_ack()

    def _send_ack(self) -> None:
        ack = Packet(
            PacketKind.TCP_ACK,
            self.flow_id,
            self.node.name,
            self.src,
            ack=self.rcv_next,
            payload_bytes=0,
            created_at=self.sim.now,
        )
        self.acks_sent += 1
        self.node.send_packet(ack)

    def goodput_mbps(self, duration_us: float) -> float:
        if duration_us <= 0:
            return 0.0
        return self.bytes_received * 8 / duration_us
