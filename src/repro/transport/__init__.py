"""Transport layer: CBR/UDP and TCP Reno agents, plus end-to-end packets.

The paper evaluates every misbehavior under both UDP (constant-bit-rate
sources saturating the medium) and TCP (whose congestion control is what ACK
spoofing exploits).  Agents attach to :class:`repro.net.Node` instances and
exchange :class:`Packet` objects that ride as MAC-layer MSDUs.
"""

from repro.transport.packets import Packet, PacketKind
from repro.transport.udp import CbrSource, UdpSink
from repro.transport.tcp import TcpReceiver, TcpSender

__all__ = [
    "Packet",
    "PacketKind",
    "CbrSource",
    "UdpSink",
    "TcpSender",
    "TcpReceiver",
]
