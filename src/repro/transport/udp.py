"""Constant-bit-rate UDP traffic: source and goodput-counting sink.

The paper's UDP experiments use CBR flows "high enough to saturate the
medium", all at the same rate so that goodput differences are purely
MAC-layer effects (Section V).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.sim.engine import Simulator
from repro.transport.packets import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node

#: Microseconds per second, for rate conversions.
US_PER_S = 1_000_000.0


class CbrSource:
    """Sends ``packet_size`` byte datagrams at a constant bit rate."""

    def __init__(
        self,
        sim: Simulator,
        node: "Node",
        flow_id: str,
        dst: str,
        rate_bps: float,
        packet_size: int = 1024,
        rng: "random.Random | None" = None,
        jitter_fraction: float = 0.1,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("CBR rate must be positive")
        if not 0 <= jitter_fraction < 1:
            raise ValueError("jitter fraction must be in [0, 1)")
        self.sim = sim
        self.node = node
        self.flow_id = flow_id
        self.dst = dst
        self.packet_size = packet_size
        self.interval_us = packet_size * 8 / rate_bps * US_PER_S
        # A little emission jitter prevents same-rate CBR sources that share
        # one MAC queue from phase-locking (one flow's packets always hitting
        # a full queue) — ns-2's CBR has the same ``random_`` knob.
        self.rng = rng
        self.jitter_fraction = jitter_fraction
        self.packets_generated = 0
        self._seq = 0
        self._stopped = False
        #: Telemetry registry (:mod:`repro.obs`) or None (guarded hooks).
        self.obs = None
        node.bind_agent(flow_id, self)

    def start(self, at: float = 0.0, stop_at: float | None = None) -> None:
        self._stop_at = stop_at
        self.sim.schedule_at(max(at, self.sim.now), self._emit)

    def stop(self) -> None:
        self._stopped = True

    def _emit(self) -> None:
        if self._stopped:
            return
        if self._stop_at is not None and self.sim.now >= self._stop_at:
            return
        packet = Packet(
            PacketKind.UDP_DATA,
            self.flow_id,
            self.node.name,
            self.dst,
            seq=self._seq,
            payload_bytes=self.packet_size,
            created_at=self.sim.now,
        )
        self._seq += 1
        self.packets_generated += 1
        if self.obs is not None:
            self.obs.inc(f"transport.{self.node.name}.tx_packets")
        self.node.send_packet(packet)
        interval = self.interval_us
        if self.rng is not None and self.jitter_fraction > 0:
            spread = self.jitter_fraction
            interval *= 1.0 + self.rng.uniform(-spread, spread)
        # Never cancelled (stop() flips a flag checked on fire), so the
        # fire-and-forget scheduling fast path applies.
        self.sim.call_after(interval, self._emit)

    def receive(self, packet: Packet) -> None:  # sources ignore incoming traffic
        return


class BacklogSource:
    """Sends "as fast as possible" with backpressure, like a blocking socket.

    Keeps at most ``window`` of its own packets in the MAC queue and refills
    whenever one completes (success or drop).  This models an application
    saturating the link through a blocking UDP socket — the paper's "each AP
    sends traffic to its receiver as fast as possible" workloads — where a
    flow whose packets are *served faster* (e.g. because fake ACKs suppress
    backoff) also gets to inject more packets.
    """

    def __init__(
        self,
        sim: Simulator,
        node: "Node",
        flow_id: str,
        dst: str,
        packet_size: int = 1024,
        window: int = 2,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if node.mac is None:
            raise ValueError("BacklogSource requires a node with a MAC")
        self.sim = sim
        self.node = node
        self.flow_id = flow_id
        self.dst = dst
        self.packet_size = packet_size
        self.window = window
        self.packets_generated = 0
        self._seq = 0
        self._outstanding = 0
        self._started = False
        node.bind_agent(flow_id, self)
        self._chain_mac_callbacks()

    def _chain_mac_callbacks(self) -> None:
        mac = self.node.mac
        prev_sent, prev_dropped = mac.on_msdu_sent, mac.on_msdu_dropped

        def on_sent(payload: Packet, dst: str) -> None:
            if prev_sent is not None:
                prev_sent(payload, dst)
            self._completed(payload)

        def on_dropped(payload: Packet, dst: str) -> None:
            if prev_dropped is not None:
                prev_dropped(payload, dst)
            self._completed(payload)

        mac.on_msdu_sent = on_sent
        mac.on_msdu_dropped = on_dropped

    def start(self, at: float = 0.0) -> None:
        self._started = True
        self.sim.schedule_at(max(at, self.sim.now), self._fill)

    def _fill(self) -> None:
        while self._outstanding < self.window:
            packet = Packet(
                PacketKind.UDP_DATA,
                self.flow_id,
                self.node.name,
                self.dst,
                seq=self._seq,
                payload_bytes=self.packet_size,
                created_at=self.sim.now,
            )
            self._seq += 1
            self.packets_generated += 1
            self._outstanding += 1
            self.node.send_packet(packet)

    def _completed(self, payload: Packet) -> None:
        if getattr(payload, "flow_id", None) != self.flow_id:
            return
        self._outstanding -= 1
        if self._started:
            self._fill()

    def receive(self, packet: Packet) -> None:  # sources ignore incoming traffic
        return


class UdpSink:
    """Counts correctly received, non-duplicate datagrams (paper's goodput)."""

    def __init__(self, sim: Simulator, node: "Node", flow_id: str) -> None:
        self.sim = sim
        self.node = node
        self.flow_id = flow_id
        self.packets_received = 0
        self.bytes_received = 0
        self.first_rx: float | None = None
        self.last_rx: float | None = None
        self._seen: set[int] = set()
        #: Telemetry registry (:mod:`repro.obs`) or None (guarded hooks).
        self.obs = None
        node.bind_agent(flow_id, self)

    def receive(self, packet: Packet) -> None:
        if packet.seq in self._seen:
            return  # duplicate at the transport layer: not goodput
        self._seen.add(packet.seq)
        self.packets_received += 1
        self.bytes_received += packet.payload_bytes
        if self.obs is not None:
            obs = self.obs
            name = self.node.name
            obs.inc(f"transport.{name}.rx_packets")
            obs.inc(f"transport.{name}.rx_bytes", packet.payload_bytes)
        if self.first_rx is None:
            self.first_rx = self.sim.now
        self.last_rx = self.sim.now

    def goodput_mbps(self, duration_us: float) -> float:
        """Goodput in Mbps over a run of ``duration_us`` microseconds."""
        if duration_us <= 0:
            return 0.0
        return self.bytes_received * 8 / duration_us
