"""End-to-end packets carried as MAC MSDUs (and over wired links)."""

from __future__ import annotations

import enum
import itertools
from typing import Optional

#: Bytes of TCP/IP (or UDP/IP) header added to each payload.
HEADER_BYTES = 40

_packet_ids = itertools.count()


class PacketKind(enum.Enum):
    UDP_DATA = "udp"
    TCP_DATA = "tcp-data"
    TCP_ACK = "tcp-ack"
    PROBE = "probe"
    PROBE_REPLY = "probe-reply"


class Packet:
    """One transport packet with end-to-end addressing.

    ``src``/``dst`` are *node names* of the original sender and the final
    destination; forwarding nodes (the AP in remote-sender scenarios) use them
    for routing while the MAC layer addresses each hop.
    """

    __slots__ = (
        "kind",
        "flow_id",
        "src",
        "dst",
        "seq",
        "ack",
        "payload_bytes",
        "created_at",
        "uid",
    )

    def __init__(
        self,
        kind: PacketKind,
        flow_id: str,
        src: str,
        dst: str,
        seq: int = 0,
        ack: int = 0,
        payload_bytes: int = 0,
        created_at: float = 0.0,
    ) -> None:
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.ack = ack
        self.payload_bytes = payload_bytes
        self.created_at = created_at
        self.uid = next(_packet_ids)

    @property
    def size_bytes(self) -> int:
        """On-the-wire size: payload plus transport/IP headers."""
        return self.payload_bytes + HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.kind.value} {self.flow_id} {self.src}->{self.dst} "
            f"seq={self.seq} ack={self.ack} {self.payload_bytes}B)"
        )
