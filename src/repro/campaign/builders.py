"""Registry of parameterized hotspot scenario builders.

A *builder* is a module-level runner — ``builder(seed, duration_s, **params)
-> {metric: value}`` — that assembles one of the paper's hotspot topologies
and drives it for ``duration_s`` simulated seconds.  Builders take only
plain data (strings instead of enums, PHY profile names instead of
:class:`~repro.phy.params.PhyParams` objects), which buys two things at once:

* they are addressable by :class:`repro.runtime.JobSpec` (module path +
  JSON-stable kwargs), so campaign points fan out over worker processes and
  land in the on-disk result cache;
* every argument can be written literally in a TOML campaign spec.

Most builders delegate to the scenario runners in
:mod:`repro.experiments.common` after converting the plain-data arguments,
so a campaign point and the corresponding per-figure experiment execute the
exact same simulation — bit-identical metrics for equal seeds.  Experiment
modules are encouraged to reuse builders directly (``fig8_nav_ngr`` does).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.core.greedy import GreedyConfig
from repro.experiments import common as _common
from repro.mac.frames import FrameKind
from repro.net.scenario import Scenario, WirelessNodeSpec
from repro.phy.error import set_ber_all_pairs
from repro.phy.params import dot11b

US_PER_S = 1_000_000.0

#: Builder name -> module-level runner.  Insertion order is presentation
#: order (``repro campaign`` help, docs).
BUILDERS: dict[str, Callable[..., dict[str, float]]] = {}


def register(name: str) -> Callable[[Callable[..., dict[str, float]]], Callable[..., dict[str, float]]]:
    """Class-level decorator: publish a builder under ``name``."""

    def _register(fn: Callable[..., dict[str, float]]) -> Callable[..., dict[str, float]]:
        if name in BUILDERS:
            raise ValueError(f"duplicate builder name {name!r}")
        BUILDERS[name] = fn
        return fn

    return _register


def builder_names() -> list[str]:
    """All registered builder names, in registration order."""
    return list(BUILDERS)


def get_builder(name: str) -> Callable[..., dict[str, float]]:
    """Look a builder up by name; raises a readable ``KeyError``."""
    builder = BUILDERS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown scenario builder {name!r}; known builders: {builder_names()}"
        )
    return builder


def builder_for_experiment(experiment_id: str) -> Callable[..., dict[str, float]]:
    """The builder behind a paper artifact, via the experiment registry.

    Resolves ``experiment_id`` (e.g. ``"fig8"``) through
    :func:`repro.experiments.get_entry` and returns the registered builder
    that sweeps the same scenario family.  Raises ``KeyError`` for unknown
    ids and ``ValueError`` for artifacts with no scenario builder (analytic
    or Monte-Carlo ones such as fig3/table1).
    """
    from repro.experiments import get_entry

    entry = get_entry(experiment_id)
    if entry.builder is None:
        raise ValueError(
            f"experiment {experiment_id!r} ({entry.artifact}) has no campaign "
            "builder; it is analytic or testbed-derived"
        )
    return get_builder(entry.builder)


def _frames(names: Iterable[str | FrameKind]) -> tuple[FrameKind, ...]:
    """Convert frame-kind names ("CTS", "ACK", ...) to :class:`FrameKind`."""
    out = []
    for name in names:
        if isinstance(name, FrameKind):
            out.append(name)
            continue
        try:
            out.append(FrameKind[str(name).upper()])
        except KeyError:
            raise ValueError(
                f"unknown frame kind {name!r}; known: {[k.name for k in FrameKind]}"
            ) from None
    return tuple(out)


def _nav_from_alpha(alpha: float | None, nav_inflation_us: float | None) -> float:
    """Resolve the NAV inflation from either axis (Fig. 1 zips both).

    ``alpha`` is the paper's x-axis unit (NAV += alpha * 100 us); specs may
    zip it with the literal microsecond value for readable result tables, in
    which case the two must agree.
    """
    if alpha is not None:
        derived = float(alpha) * 100.0
        if nav_inflation_us is not None and float(nav_inflation_us) != derived:
            raise ValueError(
                f"alpha={alpha} implies nav_inflation_us={derived}, "
                f"but nav_inflation_us={nav_inflation_us} was given"
            )
        return derived
    return float(nav_inflation_us) if nav_inflation_us is not None else 0.0


# ------------------------------------------------------- NAV inflation -----


@register("nav_pairs")
def nav_pairs(
    seed: int,
    duration_s: float,
    transport: str = "udp",
    phy: str | None = None,
    nav_inflation_us: float | None = None,
    alpha: float | None = None,
    inflate_frames: Sequence[str] = ("CTS",),
    greedy_percentage: float = 100.0,
    n_pairs: int = 2,
    n_greedy: int = 1,
) -> dict[str, float]:
    """Sender->receiver pairs, the last ``n_greedy`` receivers inflating NAV
    (Figures 1, 2, 4-9).  ``alpha`` is the Fig. 1 axis: NAV += alpha*100 us."""
    return _common.run_nav_pairs(
        seed,
        duration_s,
        transport=transport,
        phy=phy,
        nav_inflation_us=_nav_from_alpha(alpha, nav_inflation_us),
        inflate_frames=_frames(inflate_frames),
        greedy_percentage=greedy_percentage,
        n_pairs=n_pairs,
        n_greedy=n_greedy,
    )


@register("nav_pairs_sorted")
def nav_pairs_sorted(
    seed: int,
    duration_s: float,
    nav_ms: float,
    n_greedy: int,
    transport: str = "tcp",
    phy: str | None = None,
) -> dict[str, float]:
    """Figure 8's per-seed view of :func:`nav_pairs`: two pairs, 0/1/2 greedy
    receivers, plus sorted ``goodput_hi``/``goodput_lo`` columns so the
    winner-takes-all outcome survives the median over seeds."""
    out = _common.run_nav_pairs(
        seed,
        duration_s,
        transport=transport,
        phy=phy,
        nav_inflation_us=nav_ms * 1000.0 if n_greedy else 0.0,
        inflate_frames=(FrameKind.CTS,),
        n_greedy=max(n_greedy, 1),
    )
    hi, lo = sorted((out["goodput_R0"], out["goodput_R1"]), reverse=True)
    return {
        "goodput_R0": out["goodput_R0"],
        "goodput_R1": out["goodput_R1"],
        "goodput_hi": hi,
        "goodput_lo": lo,
    }


@register("nav_shared_sender")
def nav_shared_sender(
    seed: int,
    duration_s: float,
    transport: str = "udp",
    phy: str | None = None,
    nav_inflation_us: float = 0.0,
    inflate_frames: Sequence[str] = ("CTS",),
    n_receivers: int = 2,
    greedy_index: int | None = None,
) -> dict[str, float]:
    """One sender, many receivers, one inflating NAV (Figure 10)."""
    return _common.run_nav_shared_sender(
        seed,
        duration_s,
        transport=transport,
        phy=phy,
        nav_inflation_us=nav_inflation_us,
        inflate_frames=_frames(inflate_frames),
        n_receivers=n_receivers,
        greedy_index=greedy_index,
    )


# --------------------------------------------------------- ACK spoofing ----


@register("spoof_tcp_pairs")
def spoof_tcp_pairs(
    seed: int,
    duration_s: float,
    ber: float,
    phy: str | None = None,
    spoof_percentage: float = 100.0,
    n_pairs: int = 2,
    n_greedy: int = 1,
    shared_ap: bool = False,
    grc: bool = False,
    grc_threshold_db: float = 1.0,
) -> dict[str, float]:
    """TCP pairs with spoofed MAC ACKs, optional GRC RSSI detection
    (Figures 11-14 and 24)."""
    return _common.run_spoof_tcp_pairs(
        seed,
        duration_s,
        ber=ber,
        phy=phy,
        spoof_percentage=spoof_percentage,
        n_pairs=n_pairs,
        n_greedy=n_greedy,
        shared_ap=shared_ap,
        grc=grc,
        grc_threshold_db=grc_threshold_db,
    )


@register("spoof_udp_shared_ap")
def spoof_udp_shared_ap(
    seed: int,
    duration_s: float,
    ber: float,
    phy: str | None = None,
    spoof_percentage: float = 100.0,
    greedy: bool = True,
) -> dict[str, float]:
    """One AP, CBR/UDP to a normal and a spoofing receiver (Figure 17)."""
    return _common.run_spoof_udp_shared_ap(
        seed,
        duration_s,
        ber=ber,
        phy=phy,
        spoof_percentage=spoof_percentage,
        greedy=greedy,
    )


@register("remote_tcp")
def remote_tcp(
    seed: int,
    duration_s: float,
    wired_delay_us: float,
    ber: float = 2e-5,
    phy: str | None = None,
    spoof_percentage: float = 0.0,
    grc: bool = False,
    window: int = 100,
) -> dict[str, float]:
    """Remote TCP senders behind a wired link to one AP (Figures 15-16)."""
    return _common.run_remote_tcp(
        seed,
        duration_s,
        wired_delay_us=wired_delay_us,
        ber=ber,
        phy=phy,
        spoof_percentage=spoof_percentage,
        grc=grc,
        window=window,
    )


# ------------------------------------------------------------ fake ACKs ----


@register("fake_hidden_terminals")
def fake_hidden_terminals(
    seed: int,
    duration_s: float,
    fake_percentages: Sequence[float] = (0.0, 100.0),
    phy: str | None = None,
) -> dict[str, float]:
    """Hidden senders whose receivers fake-ACK corrupted frames
    (Figure 18 / Table IV)."""
    return _common.run_fake_hidden_terminals(
        seed,
        duration_s,
        fake_percentages=tuple(fake_percentages),
        phy=phy,
    )


@register("fake_inherent_loss")
def fake_inherent_loss(
    seed: int,
    duration_s: float,
    data_fer: float = 0.0,
    greedy_flags: Sequence[bool] = (False, True),
    phy: str | None = None,
    ber: float | None = None,
) -> dict[str, float]:
    """Fake ACKs under inherent medium losses (Table V / Figure 19)."""
    return _common.run_fake_inherent_loss(
        seed,
        duration_s,
        data_fer=data_fer,
        greedy_flags=tuple(bool(f) for f in greedy_flags),
        phy=phy,
        ber=ber,
    )


# ------------------------------------------------------------------ GRC ----


@register("grc_nav_distance")
def grc_nav_distance(
    seed: int,
    duration_s: float,
    pair_distance_m: float,
    transport: str = "udp",
    grc: bool = True,
    nav_inflation_us: float = 31_000.0,
    phy: str | None = None,
) -> dict[str, float]:
    """GRC NAV validation vs distance between pairs (Figure 23)."""
    return _common.run_grc_nav_distance(
        seed,
        duration_s,
        pair_distance_m=pair_distance_m,
        transport=transport,
        grc=grc,
        nav_inflation_us=nav_inflation_us,
        phy=phy,
    )


# ------------------------------------------------- beyond-the-paper grid ----


@register("nav_ber_grc")
def nav_ber_grc(
    seed: int,
    duration_s: float,
    nav_inflation_us: float = 0.0,
    ber: float = 0.0,
    grc: bool = False,
    transport: str = "udp",
    phy: str | None = None,
    n_pairs: int = 2,
) -> dict[str, float]:
    """Beyond the paper: NAV inflation under link bit errors, with the GRC
    NAV validator optionally armed on the honest stations.

    The paper evaluates NAV inflation on clean channels and its GRC defense
    over distance; this grid crosses the attack with channel quality to ask
    where link noise starts masking (or amplifying) the misbehavior and
    whether the defense still restores fairness.
    """
    s = Scenario(phy=_common.resolve_phy(phy) or dot11b(), seed=seed)
    greedy = (
        GreedyConfig.nav_inflator(float(nav_inflation_us), frozenset({FrameKind.CTS}))
        if nav_inflation_us > 0
        else None
    )
    specs = [WirelessNodeSpec(f"S{i}") for i in range(n_pairs)]
    specs += [
        WirelessNodeSpec(f"R{i}", greedy=greedy if i == n_pairs - 1 else None)
        for i in range(n_pairs)
    ]
    s.add_wireless_nodes(specs)
    if ber > 0:
        set_ber_all_pairs(s.error_model, list(s.nodes), float(ber))
    if grc:
        honest = [spec.name for spec in specs if spec.greedy is None]
        s.enable_nav_validation(honest)
    sinks = []
    for i in range(n_pairs):
        if transport == "udp":
            src, sink = s.udp_flow(f"S{i}", f"R{i}")
            src.start()
            sinks.append(sink)
        else:
            snd, rcv = s.tcp_flow(f"S{i}", f"R{i}")
            snd.start()
            sinks.append(rcv)
    s.run(duration_s)
    us = duration_s * US_PER_S
    out = {f"goodput_R{i}": sink.goodput_mbps(us) for i, sink in enumerate(sinks)}
    out["nav_detections"] = float(s.report.count("nav"))
    return out


@register("bursty_nav")
def bursty_nav(
    seed: int,
    duration_s: float,
    nav_inflation_us: float = 0.0,
    p_good_to_bad: float = 0.0,
    p_bad_to_good: float = 1.0,
    fer_good: float = 0.0,
    fer_bad: float = 0.0,
) -> dict[str, float]:
    """Beyond the paper: NAV inflation over a Gilbert-Elliott bursty channel
    (repro.faults).  All-zero FERs run the clean baseline with no fault
    machinery installed."""
    from repro.experiments.ext_bursty_nav import run_bursty_nav

    return run_bursty_nav(
        seed,
        duration_s,
        nav_inflation_us=nav_inflation_us,
        p_good_to_bad=p_good_to_bad,
        p_bad_to_good=p_bad_to_good,
        fer_good=fer_good,
        fer_bad=fer_bad,
    )


@register("rts_flood_roc")
def rts_flood_roc(
    seed: int,
    duration_s: float,
    threshold: int = 12,
    flood: bool = True,
    period_us: float = 10_000.0,
    nav_us: float = 30_000.0,
    window_us: float = 100_000.0,
) -> dict[str, float]:
    """Attack zoo: RTS-flood attacker vs the streaming unanswered-RTS
    detector at one (threshold, flood on/off) operating point
    (repro.faults + repro.core.detection.streaming)."""
    from repro.experiments.ext_rts_roc import run_rts_flood_roc

    return run_rts_flood_roc(
        seed,
        duration_s,
        threshold=int(threshold),
        flood=bool(flood),
        period_us=float(period_us),
        nav_us=float(nav_us),
        window_us=float(window_us),
    )


@register("jammer_crash")
def jammer_crash(
    seed: int,
    duration_s: float,
    duty_pct: float = 0.0,
    crash: bool = False,
    jitter_us: float = 1_000.0,
) -> dict[str, float]:
    """Beyond the paper: periodic jamming at ``duty_pct``% airtime plus an
    optional mid-run crash/reboot of one sender (repro.faults)."""
    from repro.experiments.ext_jammer_crash import run_jammer_crash

    return run_jammer_crash(
        seed,
        duration_s,
        duty_pct=duty_pct,
        crash=crash,
        jitter_us=jitter_us,
    )


@register("hidden_node")
def hidden_node(
    seed: int,
    duration_s: float,
    rts: bool = False,
    channel: str = "sinr",
    phy: str | None = "dot11a",
    packet_size: int = 1024,
) -> dict[str, float]:
    """Hidden-terminal triangle: two mutually-hidden saturated UDP uplinks to
    one AP, judged by the named channel model ("sinr" or "pairwise").  The
    RTS on/off axis is the classic collapse-and-recovery comparison."""
    return _common.run_hidden_node(
        seed,
        duration_s,
        rts=bool(rts),
        channel=str(channel),
        phy=phy,
        packet_size=int(packet_size),
    )


@register("dense_hotspot_sinr")
def dense_hotspot_sinr(
    seed: int,
    duration_s: float,
    channel: str = "sinr",
    cells: int = 24,
    clients: int = 4,
    spacing_m: float = 72.0,
) -> dict[str, float]:
    """Interference-coupled multi-AP hotspot grid on the SINR medium: cells
    overlap so adjacent cells carrier-sense each other while distant cells
    stay hidden, and aggregate cross-cell interference at each AP drives
    the SINR/pairwise divergence.  Cell 0's AP inflates ACK NAVs (the
    paper's no-RTS receiver misbehavior).  Same assembly as the
    ``dense_hotspot_sinr`` perf scenario."""
    from repro.perf.scenarios import build_dense_hotspot_sinr

    built = build_dense_hotspot_sinr(
        seed,
        cells=int(cells),
        clients=int(clients),
        spacing_m=float(spacing_m),
        channel=str(channel),
    )
    built.scenario.run(duration_s)
    return built.metrics(duration_s * US_PER_S)


@register("chaos_sleeper")
def chaos_sleeper(
    seed: int,
    duration_s: float,
    work_s: float = 0.0,
    point: int = 0,
) -> dict[str, float]:
    """Chaos-harness workload: deterministic toy metrics, no simulator.

    Metrics are a pure function of ``(seed, point)``, so a retried job
    reproduces them bit-identically; ``work_s`` sleeps to widen the window
    fault injectors aim at (``duration_s`` is accepted but unused).  If the
    ``REPRO_CHAOS_HANG_ONCE`` environment variable names a directory, the
    *first* attempt of each job parks forever after dropping a flag file, so
    the pool watchdog must kill the worker; the retry finds the flag and
    completes normally.
    """
    import os
    import random
    import time
    from pathlib import Path

    hang_dir = os.environ.get("REPRO_CHAOS_HANG_ONCE", "")
    if hang_dir:
        flag = Path(hang_dir) / f"hang-{point}-{seed}.flag"
        try:
            flag.touch(exist_ok=False)
        except FileExistsError:
            pass
        else:
            time.sleep(3600.0)
    if work_s > 0:
        time.sleep(float(work_s))
    rng = random.Random(f"chaos:{point}:{seed}")
    return {
        "metric_sum": float(seed * 100 + point),
        "metric_noise": round(rng.random(), 9),
    }
