"""Declarative scenario specs and the sweep-campaign runner.

The paper's evaluation — and most extension studies — are grids over a
handful of knobs (number of GRs/NRs, NAV inflation, BER, GRC on/off).  This
package makes those grids first-class: a TOML spec names a scenario builder,
fixed parameters, sweep axes and seeds; the runner expands the Cartesian
grid, fans every seeded point out through :mod:`repro.runtime`, records a
resumable manifest, and aggregates a tidy results table.  See
DESIGN.md ("Campaign subsystem") and ``examples/campaigns/``.
"""

from repro.campaign.builders import BUILDERS, builder_names, get_builder, register
from repro.campaign.manifest import (
    BACKUP_SUFFIX,
    DONE,
    FAILED,
    PENDING,
    Manifest,
    ManifestError,
    PointState,
)
from repro.campaign.runner import (
    CampaignError,
    CampaignRun,
    aggregate,
    default_out_dir,
    load_point_results,
    manifest_path,
    metrics_fingerprint,
    point_path,
    run_campaign,
    write_reports,
)
from repro.campaign.spec import (
    CampaignSpec,
    SpecError,
    expand_grid,
    load_spec,
    point_id,
    spec_from_dict,
    spec_hash,
    spec_to_dict,
)

__all__ = [
    "BACKUP_SUFFIX",
    "BUILDERS",
    "CampaignError",
    "CampaignRun",
    "CampaignSpec",
    "DONE",
    "FAILED",
    "Manifest",
    "ManifestError",
    "PENDING",
    "PointState",
    "SpecError",
    "aggregate",
    "builder_names",
    "default_out_dir",
    "expand_grid",
    "get_builder",
    "load_point_results",
    "load_spec",
    "manifest_path",
    "metrics_fingerprint",
    "point_id",
    "point_path",
    "register",
    "run_campaign",
    "spec_from_dict",
    "spec_hash",
    "spec_to_dict",
    "write_reports",
]
