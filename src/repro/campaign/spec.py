"""Declarative campaign specifications: what to sweep, how, and over which seeds.

A campaign names a scenario *builder* from :mod:`repro.campaign.builders`,
fixes some of its parameters, sweeps others over a Cartesian grid (plus
optional zipped axes), and runs every grid point over a set of seeds for a
fixed duration.  Specs are plain data — a TOML file or a dict — so they can
be versioned next to the figures they reproduce::

    [campaign]
    name = "fig1_nav_udp"
    builder = "nav_pairs"
    seeds = [1, 2, 3, 4, 5]
    duration_s = 5.0

    [params]                  # fixed for every point
    transport = "udp"

    [sweep]                   # Cartesian axes (rightmost varies fastest)
    n_greedy = [0, 1]

    [zip]                     # axes advanced in lockstep (equal lengths)
    alpha            = [0, 3, 6]
    nav_inflation_us = [0.0, 300.0, 600.0]

    [quick]                   # optional CI-mode overrides
    seeds = [1, 2]
    duration_s = 1.5

Validation happens at load time against the builder's actual signature, so a
typo in a parameter name fails with a readable error before any simulation
runs.  :func:`expand_grid` turns a spec into the deterministic, order-stable
list of per-point parameter dicts; :func:`spec_hash` digests the resolved
spec for the run manifest (the ``--resume`` fence).
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - older interpreters
    tomllib = None  # type: ignore[assignment]

from repro.campaign.builders import builder_names, get_builder
from repro.phy.profiles import profile_names
from repro.runtime.jobspec import canonical

#: Parameters every builder receives from the campaign engine itself; specs
#: must not try to set them as scenario parameters.
RESERVED_PARAMS = ("seed", "duration_s")

_TOP_LEVEL_TABLES = ("campaign", "params", "sweep", "zip", "quick")
_CAMPAIGN_KEYS = ("name", "builder", "description", "seeds", "duration_s")
_QUICK_KEYS = ("seeds", "duration_s", "params", "sweep", "zip")


class SpecError(ValueError):
    """A campaign spec failed validation; the message says where and why."""


@dataclass(frozen=True)
class CampaignSpec:
    """One validated, resolved campaign description."""

    name: str
    builder: str
    seeds: tuple[int, ...]
    duration_s: float
    params: dict[str, Any] = field(default_factory=dict)
    sweep: dict[str, list[Any]] = field(default_factory=dict)
    zip_axes: dict[str, list[Any]] = field(default_factory=dict)
    description: str = ""
    source: str = "<dict>"

    @property
    def n_points(self) -> int:
        """Size of the expanded grid."""
        n = 1
        for values in self.sweep.values():
            n *= len(values)
        if self.zip_axes:
            n *= len(next(iter(self.zip_axes.values())))
        return n

    def axis_names(self) -> list[str]:
        """Swept parameter names, in expansion order (sweep axes, then zip)."""
        return list(self.sweep) + list(self.zip_axes)


def load_spec(path: str | Path, quick: bool = False) -> CampaignSpec:
    """Parse and validate a TOML campaign spec file."""
    path = Path(path)
    if tomllib is None:  # pragma: no cover - Python < 3.11
        raise SpecError(
            "TOML campaign specs need Python 3.11+ (tomllib); "
            "build the spec as a dict and use spec_from_dict() instead"
        )
    if not path.exists():
        raise SpecError(f"campaign spec not found: {path}")
    try:
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    except tomllib.TOMLDecodeError as exc:
        raise SpecError(f"{path}: invalid TOML: {exc}") from None
    return spec_from_dict(data, source=str(path), quick=quick)


def spec_from_dict(
    data: Mapping[str, Any], source: str = "<dict>", quick: bool = False
) -> CampaignSpec:
    """Validate a spec given as nested plain data (the TOML document shape).

    ``quick=True`` applies the optional ``[quick]`` overrides (seeds,
    duration, narrowed axes) — the campaign analogue of the experiments'
    ``--quick`` mode.  The returned spec is fully resolved: its hash covers
    exactly what will run.
    """
    where = f"campaign spec {source}"
    if not isinstance(data, Mapping):
        raise SpecError(f"{where}: top level must be a table/dict")
    unknown = sorted(set(data) - set(_TOP_LEVEL_TABLES))
    if unknown:
        raise SpecError(
            f"{where}: unknown top-level table(s) {unknown}; "
            f"expected {list(_TOP_LEVEL_TABLES)}"
        )
    campaign = data.get("campaign")
    if not isinstance(campaign, Mapping):
        raise SpecError(f"{where}: missing [campaign] table")
    unknown = sorted(set(campaign) - set(_CAMPAIGN_KEYS))
    if unknown:
        raise SpecError(
            f"{where}: unknown [campaign] key(s) {unknown}; "
            f"expected {list(_CAMPAIGN_KEYS)}"
        )

    name = campaign.get("name")
    if not isinstance(name, str) or not name:
        raise SpecError(f"{where}: [campaign] name must be a non-empty string")
    builder = campaign.get("builder")
    if not isinstance(builder, str) or not builder:
        raise SpecError(f"{where}: [campaign] builder must be a non-empty string")
    description = campaign.get("description", "")
    if not isinstance(description, str):
        raise SpecError(f"{where}: [campaign] description must be a string")

    seeds = _validate_seeds(campaign.get("seeds"), where)
    duration_s = _validate_duration(campaign.get("duration_s"), where)
    params = _validate_table(data.get("params", {}), "params", where)
    sweep = _validate_axes(data.get("sweep", {}), "sweep", where)
    zip_axes = _validate_axes(data.get("zip", {}), "zip", where)

    if quick and "quick" in data:
        q = data["quick"]
        if not isinstance(q, Mapping):
            raise SpecError(f"{where}: [quick] must be a table")
        unknown = sorted(set(q) - set(_QUICK_KEYS))
        if unknown:
            raise SpecError(
                f"{where}: unknown [quick] key(s) {unknown}; expected {list(_QUICK_KEYS)}"
            )
        if "seeds" in q:
            seeds = _validate_seeds(q["seeds"], f"{where} [quick]")
        if "duration_s" in q:
            duration_s = _validate_duration(q["duration_s"], f"{where} [quick]")
        params = _apply_overrides(
            params, _validate_table(q.get("params", {}), "quick.params", where),
            "params", where,
        )
        sweep = _apply_overrides(
            sweep, _validate_axes(q.get("sweep", {}), "quick.sweep", where),
            "sweep", where,
        )
        zip_axes = _apply_overrides(
            zip_axes, _validate_axes(q.get("zip", {}), "quick.zip", where),
            "zip", where,
        )

    _validate_zip_lengths(zip_axes, where)
    _validate_disjoint(params, sweep, zip_axes, where)
    _validate_against_builder(builder, [*params, *sweep, *zip_axes], where)
    _validate_phy_values(params, sweep, zip_axes, where)
    _validate_channel_values(params, sweep, zip_axes, where)

    spec = CampaignSpec(
        name=name,
        builder=builder,
        seeds=seeds,
        duration_s=duration_s,
        params=dict(params),
        sweep={k: list(v) for k, v in sweep.items()},
        zip_axes={k: list(v) for k, v in zip_axes.items()},
        description=description,
        source=source,
    )
    try:  # every value must survive canonicalisation (cache keys, manifest)
        canonical(spec.params)
        canonical(spec.sweep)
        canonical(spec.zip_axes)
    except TypeError as exc:
        raise SpecError(f"{where}: parameter values must be plain data: {exc}") from None
    return spec


# ------------------------------------------------------------ validation ----


def _validate_seeds(raw: Any, where: str) -> tuple[int, ...]:
    if not isinstance(raw, (list, tuple)) or not raw:
        raise SpecError(f"{where}: seeds must be a non-empty list of integers")
    seeds = []
    for value in raw:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(f"{where}: seeds must be integers, got {value!r}")
        seeds.append(value)
    if len(set(seeds)) != len(seeds):
        raise SpecError(f"{where}: duplicate seeds: {seeds}")
    return tuple(seeds)


def _validate_duration(raw: Any, where: str) -> float:
    if isinstance(raw, bool) or not isinstance(raw, (int, float)) or raw <= 0:
        raise SpecError(f"{where}: duration_s must be a positive number, got {raw!r}")
    return float(raw)


def _validate_table(raw: Any, table: str, where: str) -> dict[str, Any]:
    if not isinstance(raw, Mapping):
        raise SpecError(f"{where}: [{table}] must be a table of parameter = value")
    return dict(raw)


def _validate_axes(raw: Any, table: str, where: str) -> dict[str, list[Any]]:
    if not isinstance(raw, Mapping):
        raise SpecError(f"{where}: [{table}] must be a table of parameter = [values]")
    axes: dict[str, list[Any]] = {}
    for key, values in raw.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise SpecError(
                f"{where}: [{table}] axis {key!r} must be a non-empty list, "
                f"got {values!r}"
            )
        axes[str(key)] = list(values)
    return axes


def _apply_overrides(
    base: dict[str, Any], overrides: dict[str, Any], table: str, where: str
) -> dict[str, Any]:
    """Quick-mode overrides may narrow existing entries, never add new ones
    (a new axis in quick mode would silently change the grid's shape)."""
    unknown = sorted(set(overrides) - set(base))
    if unknown:
        raise SpecError(
            f"{where}: [quick.{table}] overrides unknown key(s) {unknown}; "
            f"quick mode may only narrow existing [{table}] entries"
        )
    merged = dict(base)
    merged.update(overrides)
    return merged


def _validate_zip_lengths(zip_axes: Mapping[str, list[Any]], where: str) -> None:
    lengths = {key: len(values) for key, values in zip_axes.items()}
    if len(set(lengths.values())) > 1:
        raise SpecError(
            f"{where}: [zip] axes must all have the same length, got {lengths}"
        )


def _validate_disjoint(
    params: Mapping[str, Any],
    sweep: Mapping[str, Any],
    zip_axes: Mapping[str, Any],
    where: str,
) -> None:
    tables = {"params": set(params), "sweep": set(sweep), "zip": set(zip_axes)}
    for (name_a, keys_a), (name_b, keys_b) in itertools.combinations(tables.items(), 2):
        overlap = sorted(keys_a & keys_b)
        if overlap:
            raise SpecError(
                f"{where}: parameter(s) {overlap} appear in both "
                f"[{name_a}] and [{name_b}]; each parameter belongs to exactly one"
            )


def _validate_against_builder(builder: str, keys: list[str], where: str) -> None:
    try:
        fn = get_builder(builder)
    except KeyError:
        raise SpecError(
            f"{where}: unknown builder {builder!r}; known builders: {builder_names()}"
        ) from None
    signature = inspect.signature(fn)
    accepts_var_kw = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in signature.parameters.values()
    )
    accepted = sorted(set(signature.parameters) - set(RESERVED_PARAMS))
    for key in keys:
        if key in RESERVED_PARAMS:
            raise SpecError(
                f"{where}: {key!r} is set by the campaign engine "
                "([campaign] seeds / duration_s), not a scenario parameter"
            )
        if key not in signature.parameters and not accepts_var_kw:
            raise SpecError(
                f"{where}: builder {builder!r} does not take a parameter "
                f"{key!r}; it accepts {accepted}"
            )


def _validate_phy_values(
    params: Mapping[str, Any],
    sweep: Mapping[str, Any],
    zip_axes: Mapping[str, Any],
    where: str,
) -> None:
    """``phy`` values must name a profile in :mod:`repro.phy.profiles`.

    Specs are plain data, so a PHY is always a profile *name*; validating it
    against the same registry :func:`repro.phy.profiles.resolve_phy` uses
    guarantees specs and experiment runners accept exactly the same names —
    and fail at load time, not simulation time.
    """
    known = profile_names()
    candidates: list[Any] = []
    if "phy" in params:
        candidates.append(params["phy"])
    for axes in (sweep, zip_axes):
        if "phy" in axes:
            candidates.extend(axes["phy"])
    for value in candidates:
        if not isinstance(value, str) or value not in known:
            raise SpecError(
                f"{where}: unknown PHY profile {value!r}; known profiles: {known}"
            )


def _validate_channel_values(
    params: Mapping[str, Any],
    sweep: Mapping[str, Any],
    zip_axes: Mapping[str, Any],
    where: str,
) -> None:
    """``channel`` values must name a model in :mod:`repro.phy.channel`.

    The same contract as :func:`_validate_phy_values`: specs carry the model
    *name* ("pairwise" / "sinr"), checked against the registry
    :func:`repro.phy.channel.resolve_channel` resolves from, so a typo fails
    at spec-load time instead of deep inside a worker process.
    """
    from repro.phy.channel import channel_names

    known = channel_names()
    candidates: list[Any] = []
    if "channel" in params:
        candidates.append(params["channel"])
    for axes in (sweep, zip_axes):
        if "channel" in axes:
            candidates.extend(axes["channel"])
    for value in candidates:
        if not isinstance(value, str) or value not in known:
            raise SpecError(
                f"{where}: unknown channel model {value!r}; known models: {known}"
            )


# ------------------------------------------------------------- expansion ----


def expand_grid(spec: CampaignSpec) -> list[dict[str, Any]]:
    """Expand a spec into its ordered list of per-point parameter dicts.

    The order is deterministic and stable: Cartesian ``sweep`` axes iterate
    in declaration order with the rightmost axis varying fastest (exactly
    ``itertools.product``), and the ``zip`` block — all zipped axes advanced
    in lockstep — acts as one extra axis appended after them (so it varies
    fastest of all).  Fixed ``params`` appear in every point.
    """
    axes: list[list[dict[str, Any]]] = [
        [{name: value} for value in values] for name, values in spec.sweep.items()
    ]
    if spec.zip_axes:
        length = len(next(iter(spec.zip_axes.values())))
        axes.append(
            [
                {name: values[i] for name, values in spec.zip_axes.items()}
                for i in range(length)
            ]
        )
    points = []
    for combo in itertools.product(*axes):
        point = dict(spec.params)
        for part in combo:
            point.update(part)
        points.append(point)
    return points


def spec_to_dict(spec: CampaignSpec) -> dict[str, Any]:
    """Document-shape dict (the TOML table layout) that round-trips a spec.

    The output is the *resolved* spec — ``[quick]`` overrides already applied
    and dropped — so ``spec_from_dict(spec_to_dict(s))`` validates to a spec
    with an identical :func:`spec_hash`.  The fleet tier uses this to ship a
    resolved spec to shard worker processes as plain JSON: workers re-derive
    the same grid, point ids and shard assignment without ever seeing the
    original TOML file.
    """
    campaign: dict[str, Any] = {
        "name": spec.name,
        "builder": spec.builder,
        "seeds": list(spec.seeds),
        "duration_s": spec.duration_s,
    }
    if spec.description:
        campaign["description"] = spec.description
    doc: dict[str, Any] = {"campaign": campaign}
    if spec.params:
        doc["params"] = dict(spec.params)
    if spec.sweep:
        doc["sweep"] = {key: list(values) for key, values in spec.sweep.items()}
    if spec.zip_axes:
        doc["zip"] = {key: list(values) for key, values in spec.zip_axes.items()}
    return doc


def point_id(params: Mapping[str, Any]) -> str:
    """Stable short id of one grid point (digest of canonical parameters)."""
    payload = json.dumps(canonical(dict(params)), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def spec_hash(spec: CampaignSpec) -> str:
    """Digest of everything that determines the campaign's results.

    Covers builder, seeds, duration and the full resolved parameter space —
    but not the name/description/source, so cosmetic edits don't invalidate
    a resumable run.  Quick and full resolutions of the same file hash
    differently by construction.
    """
    payload = json.dumps(
        {
            "builder": spec.builder,
            "seeds": list(spec.seeds),
            "duration_s": spec.duration_s,
            "params": canonical(spec.params),
            "sweep": canonical(spec.sweep),
            "zip": canonical(spec.zip_axes),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]
