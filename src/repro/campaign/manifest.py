"""Campaign manifest: the on-disk record of what ran, enabling ``--resume``.

``manifest.json`` lives in the campaign's output directory and is rewritten
atomically after every completed point, so an interrupted run leaves a valid
partial manifest behind.  A resumed run reloads it, checks that the spec
hash and code-version token still match (a changed spec or changed simulator
code makes old numbers non-comparable), and skips every point already marked
done.

Crash consistency: every ``save`` goes through the fsync-ing atomic writer
in :mod:`repro.runtime.io` and rotates the previous manifest to
``manifest.json.bak`` first.  If a SIGKILL (or power cut) lands at the one
instant where the destination could be caught missing or torn,
:meth:`Manifest.load_or_recover` falls back to the ``.bak`` copy — at most
one completed point is forgotten and simply re-runs, which is safe because
point execution is deterministic and idempotent.

Fault accounting: ``PointState`` records the retry budget spent on each
point (``retries``) and the most recent failure message (``last_failure``),
persisted so ``repro campaign status`` can surface flaky points even after
the run eventually succeeded.  Both fields default, so manifests written
before the fault-tolerance layer still load.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.runtime.io import atomic_write_text

MANIFEST_VERSION = 1

PENDING = "pending"
#: The runner has dispatched this point's seeds and not yet recorded an
#: outcome.  On disk this is a *liveness* signal: a resumed run treats it
#: exactly like pending (the interrupted attempt is re-run), but a status
#: poll can now distinguish "in flight right now" from "still queued".
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Suffix of the previous-manifest fallback rotated on every save.
BACKUP_SUFFIX = ".bak"


class ManifestError(ValueError):
    """A manifest could not be read or does not match the requested run."""


@dataclass
class PointState:
    """Status of one grid point."""

    id: str
    index: int
    params: dict[str, Any]
    status: str = PENDING
    seeds_done: list[int] = field(default_factory=list)
    error: str | None = None
    #: Retry budget spent on this point across all attempts (seed re-runs
    #: after worker deaths, timeouts or transient errors).
    retries: int = 0
    #: Most recent failure message observed for this point, kept even after
    #: a later attempt succeeded (flakiness is worth surfacing).
    last_failure: str | None = None


@dataclass
class Manifest:
    """Everything needed to resume, audit or report a campaign run."""

    name: str
    builder: str
    spec_hash: str
    code_version: str
    seeds: list[int]
    duration_s: float
    points: list[PointState]
    version: int = MANIFEST_VERSION
    #: Whether per-point telemetry snapshots were captured into the payloads.
    telemetry: bool = False
    #: Aggregate fault counters for the whole campaign (pool rebuilds,
    #: watchdog kills, serial degradation); purely informational.
    faults: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------ queries --

    @property
    def total(self) -> int:
        return len(self.points)

    def count(self, status: str) -> int:
        return sum(1 for point in self.points if point.status == status)

    @property
    def complete(self) -> bool:
        """True when every point completed successfully."""
        return self.count(DONE) == self.total

    def status_document(self) -> dict[str, Any]:
        """Machine-readable status summary (``repro campaign status --json``).

        One stable JSON-friendly shape consumed by both humans piping to
        ``jq`` and by the fleet orchestrator polling shard progress; keep it
        backward compatible (add keys, never repurpose them).
        """
        return {
            "name": self.name,
            "builder": self.builder,
            "spec_hash": self.spec_hash,
            "code_version": self.code_version,
            "seeds": list(self.seeds),
            "duration_s": self.duration_s,
            "total": self.total,
            "done": self.count(DONE),
            "failed": self.count(FAILED),
            "running": self.count(RUNNING),
            "pending": self.count(PENDING),
            "complete": self.complete,
            "retries": sum(point.retries for point in self.points),
            "faults": dict(self.faults),
            "points": [
                {
                    "index": point.index,
                    "id": point.id,
                    "status": point.status,
                    "seeds_done": len(point.seeds_done),
                    "retries": point.retries,
                    "last_failure": point.last_failure or point.error,
                }
                for point in self.points
            ],
        }

    # -------------------------------------------------------------- (de)io --

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    def save(self, path: str | Path) -> None:
        """Persist durably + atomically, rotating the old file to ``.bak``."""
        atomic_write_text(
            Path(path),
            json.dumps(self.to_dict(), indent=2, sort_keys=True),
            backup_suffix=BACKUP_SUFFIX,
        )

    @staticmethod
    def _from_dict(data: dict[str, Any], path: Path) -> "Manifest":
        try:
            if data["version"] != MANIFEST_VERSION:
                raise ManifestError(
                    f"manifest {path} has version {data['version']}, "
                    f"this code reads version {MANIFEST_VERSION}"
                )
            points = [PointState(**point) for point in data["points"]]
            return Manifest(
                name=data["name"],
                builder=data["builder"],
                spec_hash=data["spec_hash"],
                code_version=data["code_version"],
                seeds=list(data["seeds"]),
                duration_s=data["duration_s"],
                points=points,
                version=data["version"],
                telemetry=data.get("telemetry", False),
                faults=dict(data.get("faults", {})),
            )
        except (KeyError, TypeError) as exc:
            raise ManifestError(f"malformed manifest {path}: {exc}") from None

    @staticmethod
    def load(path: str | Path) -> "Manifest":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise ManifestError(f"no manifest at {path}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ManifestError(f"unreadable manifest {path}: {exc}") from None
        return Manifest._from_dict(data, path)

    @staticmethod
    def load_or_recover(path: str | Path) -> "Manifest":
        """Load ``path``; fall back to its ``.bak`` rotation if it is torn.

        The backup is one save older than the primary, so recovery forgets at
        most the single most recently completed point — it re-runs on resume,
        deterministically, rather than wedging the whole campaign behind an
        unreadable manifest.  A *missing* primary with no backup is still an
        error (there is nothing to resume).
        """
        path = Path(path)
        try:
            return Manifest.load(path)
        except ManifestError as exc:
            backup = Path(str(path) + BACKUP_SUFFIX)
            if not backup.exists():
                raise
            try:
                recovered = Manifest.load(backup)
            except ManifestError:
                raise exc from None
            # Re-publish the good copy so later saves rotate sane content.
            recovered.save(path)
            return recovered
