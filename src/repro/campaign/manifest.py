"""Campaign manifest: the on-disk record of what ran, enabling ``--resume``.

``manifest.json`` lives in the campaign's output directory and is rewritten
atomically after every completed point, so an interrupted run leaves a valid
partial manifest behind.  A resumed run reloads it, checks that the spec
hash and code-version token still match (a changed spec or changed simulator
code makes old numbers non-comparable), and skips every point already marked
done.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

MANIFEST_VERSION = 1

PENDING = "pending"
DONE = "done"
FAILED = "failed"


class ManifestError(ValueError):
    """A manifest could not be read or does not match the requested run."""


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@dataclass
class PointState:
    """Status of one grid point."""

    id: str
    index: int
    params: dict[str, Any]
    status: str = PENDING
    seeds_done: list[int] = field(default_factory=list)
    error: str | None = None


@dataclass
class Manifest:
    """Everything needed to resume, audit or report a campaign run."""

    name: str
    builder: str
    spec_hash: str
    code_version: str
    seeds: list[int]
    duration_s: float
    points: list[PointState]
    version: int = MANIFEST_VERSION
    #: Whether per-point telemetry snapshots were captured into the payloads.
    telemetry: bool = False

    # ------------------------------------------------------------ queries --

    @property
    def total(self) -> int:
        return len(self.points)

    def count(self, status: str) -> int:
        return sum(1 for point in self.points if point.status == status)

    @property
    def complete(self) -> bool:
        """True when every point completed successfully."""
        return self.count(DONE) == self.total

    # -------------------------------------------------------------- (de)io --

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    def save(self, path: str | Path) -> None:
        """Persist atomically; safe against interrupts mid-write."""
        atomic_write_text(Path(path), json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @staticmethod
    def load(path: str | Path) -> "Manifest":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise ManifestError(f"no manifest at {path}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ManifestError(f"unreadable manifest {path}: {exc}") from None
        try:
            if data["version"] != MANIFEST_VERSION:
                raise ManifestError(
                    f"manifest {path} has version {data['version']}, "
                    f"this code reads version {MANIFEST_VERSION}"
                )
            points = [PointState(**point) for point in data["points"]]
            return Manifest(
                name=data["name"],
                builder=data["builder"],
                spec_hash=data["spec_hash"],
                code_version=data["code_version"],
                seeds=list(data["seeds"]),
                duration_s=data["duration_s"],
                points=points,
                version=data["version"],
                telemetry=data.get("telemetry", False),
            )
        except (KeyError, TypeError) as exc:
            raise ManifestError(f"malformed manifest {path}: {exc}") from None
