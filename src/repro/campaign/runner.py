"""Campaign engine: expand the grid, fan points out, record, aggregate.

One campaign run is a loop over the expanded grid.  Each point becomes a
:class:`repro.runtime.JobSpec` for the named builder and fans its seeds out
through :func:`repro.runtime.map_over_seeds` — the same process pool and
on-disk :class:`~repro.runtime.cache.ResultCache` the per-figure experiments
use, so a campaign point and the equivalent serial experiment produce
bit-identical numbers for equal seeds.

Everything lands in one output directory::

    results/campaigns/<name>/
        manifest.json       # spec hash, code version, per-point status
        points/<id>.json    # per-seed metrics of one grid point
        results.csv         # tidy per-point table (params + metric medians)
        results.json        # full results: per-seed values + medians

The manifest is rewritten atomically after every point, so Ctrl-C mid-run
leaves a valid partial record; ``--resume`` skips every point already done.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.campaign.builders import get_builder
from repro.campaign.manifest import (
    DONE,
    FAILED,
    RUNNING,
    Manifest,
    PointState,
    atomic_write_text,
)
from repro.campaign.spec import CampaignSpec, expand_grid, point_id, spec_hash
from repro.runtime import (
    ExecutionReport,
    ResultCache,
    RetryPolicy,
    WorkerPool,
    clean_stale_tmp,
    code_version_token,
    map_over_seeds,
    seed_job,
)
from repro.stats.summary import median

#: Default root for campaign outputs, mirroring the experiments' results dir.
DEFAULT_CAMPAIGN_ROOT = Path("results") / "campaigns"


class CampaignError(RuntimeError):
    """A campaign run cannot proceed; the message says why."""


@dataclass
class CampaignRun:
    """Summary of one ``run_campaign`` invocation."""

    spec: CampaignSpec
    manifest: Manifest
    out_dir: Path
    executed: int  # points actually run this invocation
    skipped: int  # points skipped because the manifest marked them done
    failed: int  # points whose runner raised
    cache_stats: dict[str, int] | None


def default_out_dir(spec: CampaignSpec) -> Path:
    """Where a campaign's artifacts live unless ``--out`` says otherwise."""
    return DEFAULT_CAMPAIGN_ROOT / spec.name


def points_dir(out_dir: Path) -> Path:
    return Path(out_dir) / "points"


def point_path(out_dir: Path, point: PointState) -> Path:
    return points_dir(out_dir) / f"{point.id}.json"


def manifest_path(out_dir: Path) -> Path:
    return Path(out_dir) / "manifest.json"


def _fresh_manifest(
    spec: CampaignSpec,
    telemetry: bool = False,
    point_ids: frozenset[str] | None = None,
) -> Manifest:
    points = [
        PointState(id=point_id(params), index=index, params=dict(params))
        for index, params in enumerate(expand_grid(spec))
    ]
    ids = [point.id for point in points]
    if len(set(ids)) != len(ids):  # two grid points with identical parameters
        raise CampaignError(
            f"campaign {spec.name!r} expands to duplicate points; "
            "check the sweep/zip axes for repeated values"
        )
    if point_ids is not None:
        unknown = sorted(set(point_ids) - set(ids))
        if unknown:
            raise CampaignError(
                f"campaign {spec.name!r}: selected point id(s) {unknown} are "
                "not in the expanded grid (spec and shard plan out of sync?)"
            )
        # Keep the *global* grid index: a shard manifest's points slot
        # straight back into the canonical merged manifest.
        points = [point for point in points if point.id in point_ids]
    return Manifest(
        name=spec.name,
        builder=spec.builder,
        spec_hash=spec_hash(spec),
        code_version=code_version_token(),
        seeds=list(spec.seeds),
        duration_s=spec.duration_s,
        points=points,
        telemetry=telemetry,
    )


def _resumable_manifest(
    spec: CampaignSpec,
    out_dir: Path,
    point_ids: frozenset[str] | None = None,
) -> Manifest:
    """Load an existing manifest and verify it matches this spec + code.

    Uses :meth:`Manifest.load_or_recover`: a manifest torn by a SIGKILL
    mid-write falls back to the ``.bak`` rotation (one save older), so at
    most the last completed point re-runs instead of the resume failing.
    """
    manifest = Manifest.load_or_recover(manifest_path(out_dir))
    if manifest.spec_hash != spec_hash(spec):
        raise CampaignError(
            f"cannot resume in {out_dir}: the manifest was written for spec "
            f"hash {manifest.spec_hash}, this spec resolves to "
            f"{spec_hash(spec)} (spec changed, or quick/full modes mixed); "
            "rerun without --resume or use a fresh --out directory"
        )
    if manifest.code_version != code_version_token():
        raise CampaignError(
            f"cannot resume in {out_dir}: simulator code changed since the "
            "manifest was written (completed points would not be comparable "
            "with new ones); rerun without --resume"
        )
    if point_ids is not None and {p.id for p in manifest.points} != set(point_ids):
        raise CampaignError(
            f"cannot resume in {out_dir}: the manifest covers a different "
            "point selection than this run requests (shard plan changed, "
            "e.g. a different shard count); use a fresh output directory"
        )
    return manifest


def _payload_ok(path: Path) -> bool:
    """Whether a previously-written point payload is present and readable."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(payload, dict) and "per_seed" in payload and "median" in payload


def run_campaign(
    spec: CampaignSpec,
    out_dir: str | Path | None = None,
    jobs: int = 1,
    resume: bool = False,
    cache_dir: str | Path | None = None,
    use_cache: bool = True,
    progress: Callable[[str], None] | None = None,
    telemetry: bool = False,
    retry: RetryPolicy | None = None,
    pool: WorkerPool | None = None,
    point_ids: frozenset[str] | None = None,
) -> CampaignRun:
    """Run (or resume) a campaign; returns the invocation summary.

    ``point_ids`` restricts the run to a subset of the expanded grid (the
    fleet tier's shard workers use this).  Subset manifests keep each
    point's *global* grid index, so merging shard manifests reconstructs the
    canonical single-host manifest; resuming with a different selection than
    the on-disk manifest is refused (the shard plan changed under the run).

    Points execute sequentially in grid order; within a point, seeds fan out
    over ``jobs`` worker processes and the shared result cache (under
    ``<out>/cache`` unless ``cache_dir`` overrides it — so re-running a
    finished campaign without ``--resume`` recomputes nothing either).
    A point whose builder raises is marked failed in the manifest, and the
    run continues with the remaining points.

    Fan-out goes through a fault-tolerant :class:`~repro.runtime.WorkerPool`
    governed by ``retry`` (attempts, backoff, per-job wall-clock timeout,
    pool-rebuild budget — see :class:`~repro.runtime.RetryPolicy`).  Worker
    deaths and hung jobs are retried transparently; the retry budget each
    point spent is recorded in its manifest entry (``retries`` /
    ``last_failure``), and pool-level incidents land in ``manifest.faults``.
    Retried seeds re-run the identical JobSpec, so a campaign that survived
    faults reports bit-identical metrics to an undisturbed one.  ``pool``
    injects a caller-owned WorkerPool (the chaos harness uses this to
    observe worker PIDs); by default the campaign owns one for its duration.

    ``telemetry=True`` additionally runs one in-process *representative*
    repetition (the first seed) of each point inside a
    :func:`repro.obs.capture` and stores the snapshot in the point payload
    (worker processes don't report registries back, so per-seed telemetry of
    the fanned-out runs is deliberately out of scope).  The snapshot never
    feeds the metric medians — those still come exclusively from the seeded
    fan-out above.
    """
    out = Path(out_dir) if out_dir is not None else default_out_dir(spec)
    out.mkdir(parents=True, exist_ok=True)
    # Reap temp-file debris a SIGKILLed previous run may have left behind.
    clean_stale_tmp(out)
    clean_stale_tmp(points_dir(out))

    if point_ids is not None:
        point_ids = frozenset(point_ids)
    if resume and (
        manifest_path(out).exists()
        or Path(str(manifest_path(out)) + ".bak").exists()
    ):
        manifest = _resumable_manifest(spec, out, point_ids=point_ids)
    else:
        manifest = _fresh_manifest(spec, telemetry=telemetry, point_ids=point_ids)
    manifest.save(manifest_path(out))

    cache = None
    if use_cache:
        cache = ResultCache(Path(cache_dir) if cache_dir is not None else out / "cache")
    builder = get_builder(spec.builder)

    executed = skipped = failed = 0
    say = progress if progress is not None else lambda _message: None
    owned = WorkerPool(jobs=jobs, retry=retry) if pool is None else None
    active = pool if pool is not None else owned
    try:
        for point in manifest.points:
            label = f"point {point.index + 1}/{manifest.total} [{point.id}]"
            if point.status == DONE and _payload_ok(point_path(out, point)):
                skipped += 1
                say(f"{label} already done, skipped")
                continue
            # Mark the point in flight before dispatching, so status polls
            # (and post-crash manifests) can tell "being computed" from
            # "still queued".  A crash leaves it "running", which a resume
            # treats exactly like pending.
            point.status = RUNNING
            manifest.save(manifest_path(out))
            job = seed_job(builder, duration_s=spec.duration_s, **point.params)
            report = ExecutionReport()
            try:
                per_seed = map_over_seeds(
                    job, spec.seeds, jobs=jobs, cache=cache, pool=active,
                    report=report,
                )
            except Exception as exc:  # noqa: BLE001 - recorded, run continues
                point.status = FAILED
                point.seeds_done = []
                point.error = f"{type(exc).__name__}: {exc}"
                point.retries += report.total_retries
                point.last_failure = report.last_error or point.error
                manifest.save(manifest_path(out))
                failed += 1
                say(f"{label} FAILED: {point.error}")
                continue
            payload = {
                "id": point.id,
                "params": point.params,
                "per_seed": {str(seed): metrics for seed, metrics in per_seed.items()},
                "median": _medians(per_seed),
                "telemetry": (
                    _point_telemetry(builder, spec, point.params)
                    if telemetry
                    else None
                ),
            }
            atomic_write_text(
                point_path(out, point), json.dumps(payload, indent=2, sort_keys=True)
            )
            point.status = DONE
            point.seeds_done = list(spec.seeds)
            point.error = None
            point.retries += report.total_retries
            if report.last_error is not None:
                point.last_failure = report.last_error  # succeeded, but flaky
            manifest.save(manifest_path(out))
            executed += 1
            suffix = f", {report.total_retries} retries" if report.total_retries else ""
            say(f"{label} done ({len(spec.seeds)} seeds{suffix})")
    finally:
        manifest.faults = {
            "pool_rebuilds": active.rebuilds,
            "worker_kills": active.worker_kills,
            "degraded_to_serial": active.degraded,
        }
        manifest.save(manifest_path(out))
        if owned is not None:
            owned.shutdown()

    write_reports(out, manifest)
    return CampaignRun(
        spec=spec,
        manifest=manifest,
        out_dir=out,
        executed=executed,
        skipped=skipped,
        failed=failed,
        cache_stats=cache.stats() if cache is not None else None,
    )


def _medians(per_seed: dict[int, dict[str, float]]) -> dict[str, float]:
    outcomes = list(per_seed.values())
    return {
        key: median([outcome[key] for outcome in outcomes]) for key in outcomes[0]
    }


def _point_telemetry(
    builder: Callable[..., dict[str, float]],
    spec: CampaignSpec,
    params: dict[str, Any],
) -> dict[str, Any]:
    """Snapshot of one in-process representative run (first seed) of a point."""
    from repro.obs import MetricsRegistry, capture

    registry = MetricsRegistry()
    seed = spec.seeds[0]
    with capture(registry):
        builder(seed=seed, duration_s=spec.duration_s, **params)
    return registry.snapshot(
        builder=spec.builder, seed=seed, duration_s=spec.duration_s
    ).to_dict()


# ------------------------------------------------------------- reporting ----


def metrics_fingerprint(out_dir: str | Path) -> dict[str, str]:
    """Per-point canonical JSON of everything scientific in a campaign output.

    Maps point id to a ``sort_keys`` JSON blob of (params, per_seed, median)
    — exactly the content that must be bit-identical between a single-host
    run, a healed chaos run and a merged fleet run.  Telemetry and fault
    accounting are deliberately excluded: they describe *how* the run went,
    not what it measured.
    """
    out = Path(out_dir)
    manifest = Manifest.load(manifest_path(out))
    prints: dict[str, str] = {}
    for point in manifest.points:
        payload = json.loads(point_path(out, point).read_text())
        prints[point.id] = json.dumps(
            {
                "params": payload["params"],
                "per_seed": payload["per_seed"],
                "median": payload["median"],
            },
            sort_keys=True,
        )
    return prints


def load_point_results(
    out_dir: str | Path, manifest: Manifest
) -> dict[str, dict[str, Any]]:
    """Per-point payloads ({id: {params, per_seed, median}}) of done points."""
    out = Path(out_dir)
    results: dict[str, dict[str, Any]] = {}
    for point in manifest.points:
        if point.status != DONE:
            continue
        path = point_path(out, point)
        try:
            results[point.id] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(
                f"point result {path} is missing or corrupt ({exc}); "
                "rerun the campaign (without --resume) to regenerate it"
            ) from None
    return results


def aggregate(manifest: Manifest, results: dict[str, dict[str, Any]]) -> tuple[list[str], list[dict[str, Any]]]:
    """Tidy results table: one row per done point, params + metric medians.

    Returns ``(columns, rows)``.  Parameter columns come first, then metric
    columns, each sorted by name — the manifest and point files round-trip
    through ``sort_keys`` JSON, so sorted columns keep the table layout
    identical whether it is built from a live run or reloaded from disk.
    """
    param_cols: list[str] = []
    metric_cols: list[str] = []
    telemetry_cols: list[str] = []
    rows: list[dict[str, Any]] = []
    for point in manifest.points:
        payload = results.get(point.id)
        if payload is None:
            continue
        for key in sorted(point.params):
            if key not in param_cols:
                param_cols.append(key)
        for key in sorted(payload["median"]):
            if key not in metric_cols:
                metric_cols.append(key)
        row = {
            "index": point.index,
            "point": point.id,
            **point.params,
            **payload["median"],
        }
        flat = _flat_telemetry(payload.get("telemetry"))
        for key in flat:
            if key not in telemetry_cols:
                telemetry_cols.append(key)
        row.update(flat)
        rows.append(row)
    return ["index", "point", *param_cols, *metric_cols, *telemetry_cols], rows


#: Representative-run gauges promoted to flat results.csv columns; the full
#: snapshot stays in the point payloads / results.json.
_FLAT_TELEMETRY = {
    "tm_events": "sim.engine.events_processed",
    "tm_frames_sent": "phy.medium.frames_sent",
}


def _flat_telemetry(snapshot: dict[str, Any] | None) -> dict[str, float]:
    if not snapshot:
        return {}
    gauges = snapshot.get("gauges", {})
    return {
        column: gauges[key] for column, key in _FLAT_TELEMETRY.items() if key in gauges
    }


def write_reports(out_dir: str | Path, manifest: Manifest) -> tuple[Path, Path]:
    """Write ``results.csv`` (tidy medians) and ``results.json`` (full)."""
    out = Path(out_dir)
    results = load_point_results(out, manifest)
    columns, rows = aggregate(manifest, results)

    csv_lines = [",".join(columns)]
    for row in rows:
        csv_lines.append(",".join(_csv_cell(row.get(column)) for column in columns))
    csv_path = out / "results.csv"
    atomic_write_text(csv_path, "\n".join(csv_lines) + "\n")

    json_path = out / "results.json"
    atomic_write_text(
        json_path,
        json.dumps(
            {
                "name": manifest.name,
                "builder": manifest.builder,
                "spec_hash": manifest.spec_hash,
                "code_version": manifest.code_version,
                "seeds": manifest.seeds,
                "duration_s": manifest.duration_s,
                "columns": columns,
                "points": [results[p.id] for p in manifest.points if p.id in results],
            },
            indent=2,
            sort_keys=True,
        ),
    )
    return csv_path, json_path


def _csv_cell(value: Any) -> str:
    """Render one CSV cell; floats keep full precision (repr round-trips)."""
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)
    text = str(value)
    if any(ch in text for ch in ",\"\n"):
        text = '"' + text.replace('"', '""') + '"'
    return text
