"""Canonical scenarios for the core microbenchmark and golden-trace suite.

Each :class:`PerfScenario` assembles one of the paper's hotspot topologies
*without running it*, so the harness can time exactly the event loop
(:meth:`repro.sim.engine.Simulator.run`) and the golden-trace capture can
attach a :class:`repro.stats.trace.FrameTracer` before the first frame flies.

The three registered scenarios bracket the simulator's hot paths:

* ``fig1_nav_udp`` — the paper's headline NAV-inflation point (two saturated
  UDP pairs, 802.11b, greedy receiver inflating CTS NAV by 600 us): RTS/CTS
  exchanges, NAV timers, saturated backoff.
* ``fig8_nav_tcp`` — one Figure 8 sweep point (two TCP pairs, 10 ms CTS NAV
  inflation): TCP timers and ACK-clocked traffic on top of DCF.
* ``spoof_tcp`` — the Figure 11 operating point (BER 2e-4, spoofing
  geometry): positioned nodes, capture resolution, per-frame error rolls and
  spoofed-ACK responses.

Scenario construction is deterministic for a fixed seed (named RNG
substreams), which is what makes byte-for-byte trace comparison meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

from repro.core.greedy import GreedyConfig
from repro.mac.frames import FrameKind
from repro.net.scenario import Scenario
from repro.phy.channel import ChannelConfig
from repro.phy.error import set_ber_all_pairs
from repro.phy.params import dot11a

US_PER_S = 1_000_000.0

#: ``build(seed) -> (scenario, metrics)`` where ``metrics(duration_us)``
#: reads the per-flow goodputs after the run.
Builder = Callable[[int], "BuiltScenario"]


@dataclass(frozen=True)
class BuiltScenario:
    """A ready-to-run scenario plus its metric reader."""

    scenario: Scenario
    metrics: Callable[[float], Dict[str, float]]


@dataclass(frozen=True)
class PerfScenario:
    """One registered microbenchmark scenario."""

    name: str
    description: str
    duration_s: float  # default simulated seconds for timing runs
    build: Builder


SCENARIOS: dict[str, PerfScenario] = {}


def _register(name: str, description: str, duration_s: float):
    def wrap(fn: Builder) -> Builder:
        if name in SCENARIOS:
            raise ValueError(f"duplicate perf scenario {name!r}")
        SCENARIOS[name] = PerfScenario(name, description, duration_s, fn)
        return fn

    return wrap


def scenario_names() -> list[str]:
    """Registered scenario names, in registration order."""
    return list(SCENARIOS)


def get_scenario(name: str) -> PerfScenario:
    """Look a scenario up by name; raises a readable ``KeyError``."""
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise KeyError(
            f"unknown perf scenario {name!r}; known scenarios: {scenario_names()}"
        )
    return scenario


@_register(
    "fig1_nav_udp",
    "two saturated UDP pairs, GR inflates CTS NAV by 600 us (Figure 1)",
    duration_s=2.0,
)
def _fig1_nav_udp(seed: int) -> BuiltScenario:
    s = Scenario(seed=seed)
    s.add_wireless_node("S0")
    s.add_wireless_node("S1")
    s.add_wireless_node("R0")
    s.add_wireless_node(
        "R1", greedy=GreedyConfig.nav_inflator(600.0, frozenset({FrameKind.CTS}))
    )
    src0, sink0 = s.udp_flow("S0", "R0")
    src1, sink1 = s.udp_flow("S1", "R1")
    src0.start()
    src1.start()

    def metrics(duration_us: float) -> Dict[str, float]:
        return {
            "goodput_R0": sink0.goodput_mbps(duration_us),
            "goodput_R1": sink1.goodput_mbps(duration_us),
        }

    return BuiltScenario(s, metrics)


@_register(
    "fig8_nav_tcp",
    "two TCP pairs, GR inflates CTS NAV by 10 ms (one Figure 8 sweep point)",
    duration_s=2.0,
)
def _fig8_nav_tcp(seed: int) -> BuiltScenario:
    s = Scenario(seed=seed)
    s.add_wireless_node("S0")
    s.add_wireless_node("S1")
    s.add_wireless_node("R0")
    s.add_wireless_node(
        "R1", greedy=GreedyConfig.nav_inflator(10_000.0, frozenset({FrameKind.CTS}))
    )
    snd0, rcv0 = s.tcp_flow("S0", "R0")
    snd1, rcv1 = s.tcp_flow("S1", "R1")
    snd0.start()
    snd1.start()

    def metrics(duration_us: float) -> Dict[str, float]:
        return {
            "goodput_R0": rcv0.goodput_mbps(duration_us),
            "goodput_R1": rcv1.goodput_mbps(duration_us),
        }

    return BuiltScenario(s, metrics)


@_register(
    "dense_hotspot",
    "48 spatially separated hotspot cells (240 nodes) with the paper's "
    "Figure 23 ranges — the dense-deployment stress the backends diverge on",
    duration_s=0.5,
)
def _dense_hotspot(seed: int) -> BuiltScenario:
    """A grid of independent hotspot cells, one AP + 4 uplink clients each.

    Cells are spaced 250 m apart with the paper's 55 m communication /
    99 m interference ranges (Figure 23), so every sender's reach list holds
    all 239 other radios while only its own cell can hear it.  The scalar
    medium pays the full O(nodes) threshold filter per transmitted frame;
    the vectorized backend prefilters once per topology — this scenario is
    where that gap is widest, and it stands in for the dense-deployment
    campaigns the ROADMAP targets.  Cell 0's AP inflates the NAV of its MAC
    ACKs (the no-RTS variant of the paper's receiver misbehavior), keeping
    the greedy machinery on the timed path.
    """
    cells, clients, spacing = 48, 4, 250.0
    s = Scenario(
        seed=seed,
        channel=ChannelConfig(ranges=(55.0, 99.0)),
        rts_enabled=False,
    )
    sinks = []
    side = math.ceil(math.sqrt(cells))
    for c in range(cells):
        cx, cy = (c % side) * spacing, (c // side) * spacing
        ap = f"AP{c}"
        greedy = None
        if c == 0:
            greedy = GreedyConfig.nav_inflator(600.0, frozenset({FrameKind.ACK}))
        s.add_wireless_node(ap, position=(cx, cy), greedy=greedy)
        for k in range(clients):
            angle = 2.0 * math.pi * k / clients
            name = f"C{c}_{k}"
            s.add_wireless_node(
                name,
                position=(
                    cx + 12.0 * math.cos(angle),
                    cy + 12.0 * math.sin(angle),
                ),
            )
            src, sink = s.udp_flow(name, ap, rate_bps=1.2e6, packet_size=400)
            src.start()
            sinks.append(sink)

    def metrics(duration_us: float) -> Dict[str, float]:
        goodputs = [sink.goodput_mbps(duration_us) for sink in sinks]
        return {
            "goodput_total": sum(goodputs),
            "goodput_cell0": sum(goodputs[:clients]),
            "goodput_min": min(goodputs),
        }

    return BuiltScenario(s, metrics)


@_register(
    "hidden_node_sinr",
    "hidden-terminal triangle on the SINR medium (802.11a, RTS off) — "
    "aggregate-interference corruption at the AP",
    duration_s=1.0,
)
def _hidden_node_sinr(seed: int) -> BuiltScenario:
    """The channel-model seam's signature workload, pinned for golden traces.

    S0 and S1 flank one AP at 54 m each, 108 m apart — outside the 99 m
    interference range, so neither sender can carrier-sense the other.  On
    the pairwise medium each uplink frame is judged by a two-signal power
    ratio; on the ``sinr`` medium the AP accumulates interference power from
    *all* concurrent transmissions, so the overlapping data frames corrupt
    each other exactly as hidden terminals do in a real hotspot.  The model
    is pinned explicitly (not inherited from the ambient selection) so the
    committed golden trace means the same thing under any ``--channel``.
    """
    s = Scenario(
        phy=dot11a(),
        seed=seed,
        rts_enabled=False,
        channel=ChannelConfig(model="sinr", ranges=(55.0, 99.0)),
    )
    s.add_wireless_node("S0", position=(0.0, 0.0))
    s.add_wireless_node("AP", position=(54.0, 0.0))
    s.add_wireless_node("S1", position=(108.0, 0.0))
    src0, sink0 = s.udp_flow("S0", "AP")
    src1, sink1 = s.udp_flow("S1", "AP")
    src0.start()
    src1.start()

    def metrics(duration_us: float) -> Dict[str, float]:
        return {
            "goodput_S0": sink0.goodput_mbps(duration_us),
            "goodput_S1": sink1.goodput_mbps(duration_us),
        }

    return BuiltScenario(s, metrics)


def build_dense_hotspot_sinr(
    seed: int,
    cells: int = 24,
    clients: int = 4,
    spacing_m: float = 72.0,
    channel: str | None = "sinr",
) -> BuiltScenario:
    """Assemble the coupled multi-AP hotspot grid on the SINR medium.

    Unlike ``dense_hotspot`` (250 m spacing — cells are isolated and the
    scenario stresses reach-list *size*), the 72 m spacing here overlaps the
    cells: adjacent cells carrier-sense each other while diagonal and more
    distant cells (>= 101 m) stay mutually hidden, so uplink frames arrive
    at each AP with live interference from transmitters one to two cells
    away.  Those interferers sit in the band where a single pairwise power
    ratio still clears the 10x capture threshold but the *aggregate*
    interference sum does not clear the per-rate SINR margin — the regime
    where the two channel models genuinely diverge (measurably different
    per-cell goodput for equal seeds).  Cell 0's AP keeps the paper's ACK
    NAV inflation so greedy-receiver machinery stays on the timed path.

    Shared by the ``dense_hotspot_sinr`` perf scenario and the campaign
    builder of the same name; ``channel`` is a plain model name so campaign
    job specs stay cache-addressable.
    """
    s = Scenario(
        seed=seed,
        rts_enabled=False,
        channel=ChannelConfig(model=channel, ranges=(55.0, 99.0)),
    )
    sinks = []
    side = math.ceil(math.sqrt(cells))
    for c in range(cells):
        cx, cy = (c % side) * spacing_m, (c // side) * spacing_m
        ap = f"AP{c}"
        greedy = None
        if c == 0:
            greedy = GreedyConfig.nav_inflator(600.0, frozenset({FrameKind.ACK}))
        s.add_wireless_node(ap, position=(cx, cy), greedy=greedy)
        for k in range(clients):
            angle = 2.0 * math.pi * k / clients
            name = f"C{c}_{k}"
            s.add_wireless_node(
                name,
                position=(
                    cx + 12.0 * math.cos(angle),
                    cy + 12.0 * math.sin(angle),
                ),
            )
            src, sink = s.udp_flow(name, ap, rate_bps=1.2e6, packet_size=400)
            src.start()
            sinks.append(sink)

    def metrics(duration_us: float) -> Dict[str, float]:
        goodputs = [sink.goodput_mbps(duration_us) for sink in sinks]
        return {
            "goodput_total": sum(goodputs),
            "goodput_cell0": sum(goodputs[:clients]),
            "goodput_min": min(goodputs),
        }

    return BuiltScenario(s, metrics)


@_register(
    "dense_hotspot_sinr",
    "24 overlapping hotspot cells (120 nodes) on the SINR medium — "
    "cross-cell aggregate interference at every AP",
    duration_s=0.5,
)
def _dense_hotspot_sinr(seed: int) -> BuiltScenario:
    return build_dense_hotspot_sinr(seed)


@_register(
    "grc_nav",
    "GRC NAV-validation operating point: GR inflates CTS NAV by 31 ms, "
    "honest pair runs the Section VII-A validator (Figure 21/23 regime)",
    duration_s=2.0,
)
def _grc_nav(seed: int) -> BuiltScenario:
    """The detection-side companion of ``fig1_nav_udp``.

    Positioned nodes with the paper's 55 m / 99 m ranges, a near-maximal
    CTS NAV inflation (31 ms, just under the 802.11 duration-field cap) and
    the GRC NAV validator enabled on the honest pair — so the committed
    golden trace carries a dense stream of inflated NAV values for the
    trace-level detectors, and ``s.report`` carries the MAC-level
    detections the paper's countermeasure produces.
    """
    s = Scenario(seed=seed, channel=ChannelConfig(ranges=(55.0, 99.0)))
    s.add_wireless_node("S0", position=(0.0, 0.0))
    s.add_wireless_node("R0", position=(50.0, 0.0))
    s.add_wireless_node("S1", position=(0.0, 5.0))
    s.add_wireless_node(
        "R1",
        position=(5.0, 5.0),
        greedy=GreedyConfig.nav_inflator(31_000.0, frozenset({FrameKind.CTS})),
    )
    s.enable_nav_validation(["S0", "R0"])
    src0, sink0 = s.udp_flow("S0", "R0")
    src1, sink1 = s.udp_flow("S1", "R1")
    src0.start()
    src1.start()

    def metrics(duration_us: float) -> Dict[str, float]:
        return {
            "goodput_R0": sink0.goodput_mbps(duration_us),
            "goodput_R1": sink1.goodput_mbps(duration_us),
            "nav_detections": float(s.report.count("nav")),
        }

    return BuiltScenario(s, metrics)


@_register(
    "grc_spoof",
    "GRC spoof-detection operating point: BER 2e-4, GR spoofs MAC ACKs, "
    "RSSI spoof detection on the victim sender (Figure 22/24 regime)",
    duration_s=2.0,
)
def _grc_spoof(seed: int) -> BuiltScenario:
    """The detection-side companion of ``spoof_tcp``.

    Same spoofing geometry and error rate, but the victim's sender runs the
    RSSI spoof detector — the golden trace carries impersonated ACKs (for
    the trace-level impersonation detector) and ``s.report`` the RSSI
    detections.
    """
    s = Scenario(seed=seed)
    s.add_wireless_node("S0", position=(0.0, 0.0))
    s.add_wireless_node("S1", position=(0.5, 0.0))
    s.add_wireless_node("R0", position=(10.0, 0.0))
    s.add_wireless_node(
        "R1",
        position=(30.0, 0.0),
        greedy=GreedyConfig.ack_spoofer(victims=frozenset({"R0"})),
    )
    set_ber_all_pairs(s.error_model, ["S0", "S1", "R0", "R1"], 2e-4)
    s.enable_spoof_detection(["S0"])
    snd0, rcv0 = s.tcp_flow("S0", "R0")
    snd1, rcv1 = s.tcp_flow("S1", "R1")
    snd0.start()
    snd1.start()

    def metrics(duration_us: float) -> Dict[str, float]:
        return {
            "goodput_R0": rcv0.goodput_mbps(duration_us),
            "goodput_R1": rcv1.goodput_mbps(duration_us),
            "spoof_detections": float(s.report.count("rssi-spoof")),
        }

    return BuiltScenario(s, metrics)


@_register(
    "spoof_tcp",
    "two TCP pairs at BER 2e-4, GR spoofs MAC ACKs for NR (Figure 11 peak)",
    duration_s=2.0,
)
def _spoof_tcp(seed: int) -> BuiltScenario:
    s = Scenario(seed=seed)
    s.add_wireless_node("S0", position=(0.0, 0.0))
    s.add_wireless_node("S1", position=(0.5, 0.0))
    s.add_wireless_node("R0", position=(10.0, 0.0))
    s.add_wireless_node(
        "R1",
        position=(30.0, 0.0),
        greedy=GreedyConfig.ack_spoofer(victims=frozenset({"R0"})),
    )
    set_ber_all_pairs(s.error_model, ["S0", "S1", "R0", "R1"], 2e-4)
    snd0, rcv0 = s.tcp_flow("S0", "R0")
    snd1, rcv1 = s.tcp_flow("S1", "R1")
    snd0.start()
    snd1.start()

    def metrics(duration_us: float) -> Dict[str, float]:
        return {
            "goodput_R0": rcv0.goodput_mbps(duration_us),
            "goodput_R1": rcv1.goodput_mbps(duration_us),
        }

    return BuiltScenario(s, metrics)
