"""Core microbenchmark harness and golden-equivalence capture.

``repro perf`` (CLI) and BENCH_core.json live here; see
:mod:`repro.perf.harness` for the schema and :mod:`repro.perf.golden` for
the bit-exactness methodology.
"""

from repro.perf.harness import (
    REGRESSION_FACTOR,
    SCHEMA,
    attach_speedup,
    check_regression,
    load_bench,
    run_benchmark,
    time_scenario,
    validate_bench,
    write_bench,
)
from repro.perf.scenarios import (
    SCENARIOS,
    PerfScenario,
    get_scenario,
    scenario_names,
)

__all__ = [
    "REGRESSION_FACTOR",
    "SCENARIOS",
    "SCHEMA",
    "PerfScenario",
    "attach_speedup",
    "check_regression",
    "get_scenario",
    "load_bench",
    "run_benchmark",
    "scenario_names",
    "time_scenario",
    "validate_bench",
    "write_bench",
]
