"""Core microbenchmark harness and golden-equivalence capture.

``repro perf`` (CLI) and BENCH_core.json live here; see
:mod:`repro.perf.harness` for the schema and :mod:`repro.perf.golden` for
the bit-exactness methodology.
"""

from repro.perf.diff import (
    DEFAULT_BACKENDS,
    BackendRun,
    DiffReport,
    diff_experiment,
    diff_scenario,
    diff_targets,
    run_traced,
)
from repro.perf.harness import (
    REGRESSION_FACTOR,
    SCHEMA,
    attach_speedup,
    check_regression,
    load_bench,
    run_benchmark,
    time_scenario,
    validate_bench,
    write_bench,
)
from repro.perf.scenarios import (
    SCENARIOS,
    PerfScenario,
    get_scenario,
    scenario_names,
)

__all__ = [
    "DEFAULT_BACKENDS",
    "REGRESSION_FACTOR",
    "SCENARIOS",
    "SCHEMA",
    "BackendRun",
    "DiffReport",
    "PerfScenario",
    "attach_speedup",
    "check_regression",
    "diff_experiment",
    "diff_scenario",
    "diff_targets",
    "get_scenario",
    "load_bench",
    "run_benchmark",
    "run_traced",
    "scenario_names",
    "time_scenario",
    "validate_bench",
    "write_bench",
]
