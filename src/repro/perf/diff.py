"""Cross-backend differential-testing harness.

The ``vectorized`` backend's license to exist is the equivalence contract
in :mod:`repro.sim.backend`: replay the reference (``scalar``) behavior
*byte for byte* or register its own golden set.  This module is the
enforcement machinery — it runs the same seeded workload on two (or more)
backends and compares the strongest evidence the simulator can produce:

* **Frame traces** — every transmission, serialized exactly like the
  committed ``tests/golden/*.jsonl`` files (same
  :meth:`repro.stats.trace.TraceRecord.to_dict` JSON, sorted keys).  The
  first diverging line is reported with both renderings, so a mismatch
  pinpoints the frame, not just the failure.
* **Campaign-style metrics** — the scenario's metric dict, compared for
  exact float equality (never ``pytest.approx``): equal seeds must produce
  equal floats or the backends are not interchangeable in the result cache.
* **Event counts** — ``Simulator.events_processed``; a backend that
  schedules even one extra no-op event has diverged, whatever the traces
  say.

Two entry points: :func:`diff_scenario` compares a registered perf scenario
(optionally with a :class:`repro.faults.FaultPlan` installed — the fault
subsystem's RNG streams are part of the contract too), and
:func:`diff_experiment` compares a full registered experiment artifact via
its canonical :meth:`~repro.stats.summary.ExperimentResult.to_json`
document.  ``repro diff`` (CLI) and ``tests/test_backend_diff.py`` /
``tests/test_diff_fuzz.py`` drive both.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.perf.golden import GOLDEN_TRACE_RUNS
from repro.perf.scenarios import SCENARIOS, get_scenario

US_PER_S = 1_000_000.0

#: The backend pair ``repro diff`` compares when none is named explicitly.
DEFAULT_BACKENDS: tuple[str, str] = ("scalar", "vectorized")


@dataclass(frozen=True)
class BackendRun:
    """One scenario executed on one backend: the comparable evidence."""

    backend: str
    trace_lines: tuple[str, ...]
    metrics: Mapping[str, float]
    events: int

    @property
    def fingerprint(self) -> str:
        """Digest over trace bytes, metrics and event count.

        Two runs are interchangeable iff their fingerprints match; the
        digest is what the fuzz tier compares when keeping full traces for
        every case would be wasteful.
        """
        digest = hashlib.sha256()
        for line in self.trace_lines:
            digest.update(line.encode())
            digest.update(b"\n")
        digest.update(json.dumps(dict(self.metrics), sort_keys=True).encode())
        digest.update(str(self.events).encode())
        return digest.hexdigest()[:16]


def run_traced(
    name: str,
    backend: str | None = None,
    seed: int | None = None,
    duration_s: float | None = None,
    fault_plan: Any = None,
) -> BackendRun:
    """Run one perf scenario on one backend with a tracer attached.

    Seed and duration default to the scenario's golden-trace point
    (:data:`~repro.perf.golden.GOLDEN_TRACE_RUNS`) when it has one, else
    seed 1 and the scenario's registered duration.  ``fault_plan`` (a
    :class:`repro.faults.FaultPlan`) is installed after build, before the
    first frame flies — the same ordering the fault golden captures use.
    """
    from repro.sim.backend import resolve_backend, use_backend
    from repro.stats.trace import FrameTracer

    spec = get_scenario(name)
    default_seed, default_duration = GOLDEN_TRACE_RUNS.get(name, (1, None))
    if seed is None:
        seed = default_seed
    if duration_s is None:
        duration_s = default_duration if default_duration is not None else spec.duration_s
    resolved = resolve_backend(backend)
    with use_backend(resolved):
        built = spec.build(seed)
        if fault_plan is not None and not fault_plan.empty:
            built.scenario.install_faults(fault_plan)
        tracer = FrameTracer(built.scenario.medium)
        built.scenario.run(duration_s)
    lines = tuple(
        json.dumps(record.to_dict(), sort_keys=True) for record in tracer.records
    )
    return BackendRun(
        backend=resolved.name,
        trace_lines=lines,
        metrics=built.metrics(duration_s * US_PER_S),
        events=built.scenario.sim.events_processed,
    )


def diff_backend_runs(reference: BackendRun, candidate: BackendRun) -> list[str]:
    """Exact comparison of two runs; returns human-readable differences.

    Reports the *first* diverging trace line (with both renderings) rather
    than every one — after the first divergence the simulations are in
    different states and subsequent differences are noise.
    """
    problems: list[str] = []
    a, b = reference.trace_lines, candidate.trace_lines
    if a != b:
        if len(a) != len(b):
            problems.append(
                f"trace length differs: {len(a)} records ({reference.backend}) "
                f"vs {len(b)} ({candidate.backend})"
            )
        for index, (line_a, line_b) in enumerate(zip(a, b)):
            if line_a != line_b:
                problems.append(
                    f"trace diverges at record {index + 1}:\n"
                    f"  {reference.backend:>10}: {line_a}\n"
                    f"  {candidate.backend:>10}: {line_b}"
                )
                break
    for key in sorted(set(reference.metrics) | set(candidate.metrics)):
        value_a = reference.metrics.get(key)
        value_b = candidate.metrics.get(key)
        if value_a != value_b:
            problems.append(
                f"metric {key}: {value_a!r} ({reference.backend}) "
                f"!= {value_b!r} ({candidate.backend})"
            )
    if reference.events != candidate.events:
        problems.append(
            f"events_processed: {reference.events} ({reference.backend}) "
            f"!= {candidate.events} ({candidate.backend})"
        )
    return problems


@dataclass
class DiffReport:
    """Outcome of one differential comparison (scenario or experiment)."""

    target: str
    kind: str  # "scenario" | "experiment"
    backends: tuple[str, ...]
    problems: list[str] = field(default_factory=list)
    #: Per-backend evidence digest (trace+metrics+events for scenarios, the
    #: canonical result document for experiments).  Equal digests <=> ok.
    fingerprints: dict[str, str] = field(default_factory=dict)
    seed: int | None = None
    duration_s: float | None = None

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary_line(self) -> str:
        pair = " vs ".join(self.backends)
        extra = ""
        if self.seed is not None:
            extra = f" (seed {self.seed}, {self.duration_s:g}s)"
        verdict = "identical" if self.ok else f"{len(self.problems)} difference(s)"
        return f"{self.kind} {self.target}{extra}: {pair} — {verdict}"


def diff_scenario(
    name: str,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    seed: int | None = None,
    duration_s: float | None = None,
    fault_plan: Any = None,
) -> DiffReport:
    """Run one perf scenario on every backend and compare all to the first."""
    if len(backends) < 2:
        raise ValueError(f"need at least two backends to diff, got {list(backends)}")
    runs = [
        run_traced(name, backend=b, seed=seed, duration_s=duration_s, fault_plan=fault_plan)
        for b in backends
    ]
    reference = runs[0]
    problems: list[str] = []
    for candidate in runs[1:]:
        problems.extend(diff_backend_runs(reference, candidate))
    spec = get_scenario(name)
    default_seed, default_duration = GOLDEN_TRACE_RUNS.get(name, (1, None))
    return DiffReport(
        target=name,
        kind="scenario",
        backends=tuple(run.backend for run in runs),
        problems=problems,
        fingerprints={run.backend: run.fingerprint for run in runs},
        seed=seed if seed is not None else default_seed,
        duration_s=duration_s
        if duration_s is not None
        else (default_duration if default_duration is not None else spec.duration_s),
    )


def _first_document_difference(name_a: str, doc_a: str, name_b: str, doc_b: str) -> str:
    """Locate the first difference between two ExperimentResult documents."""
    parsed_a, parsed_b = json.loads(doc_a), json.loads(doc_b)
    rows_a, rows_b = parsed_a.get("rows", []), parsed_b.get("rows", [])
    if len(rows_a) != len(rows_b):
        return f"row count differs: {len(rows_a)} ({name_a}) vs {len(rows_b)} ({name_b})"
    for index, (row_a, row_b) in enumerate(zip(rows_a, rows_b)):
        if row_a != row_b:
            keys = sorted(set(row_a) | set(row_b))
            for key in keys:
                if row_a.get(key) != row_b.get(key):
                    return (
                        f"row {index} column {key!r}: {row_a.get(key)!r} ({name_a}) "
                        f"!= {row_b.get(key)!r} ({name_b})"
                    )
    return f"documents differ outside rows ({name_a} vs {name_b})"


def diff_experiment(
    experiment_id: str,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    quick: bool = True,
) -> DiffReport:
    """Run one registered experiment per backend; compare canonical documents.

    This closes the loop *above* the scenario layer: medians over seeds,
    runner plumbing, everything ``repro run`` exercises.  Experiments run in
    quick mode by default (the full paper-scale sweeps take minutes each).
    """
    from repro.experiments import get_entry
    from repro.experiments.common import RunSettings

    if len(backends) < 2:
        raise ValueError(f"need at least two backends to diff, got {list(backends)}")
    entry = get_entry(experiment_id)
    documents: dict[str, str] = {}
    for backend in backends:
        settings = RunSettings.for_mode(quick).replace(backend=backend)
        documents[backend] = entry.runner(settings).to_json()
    reference = backends[0]
    problems = []
    for backend in backends[1:]:
        if documents[backend] != documents[reference]:
            problems.append(
                _first_document_difference(
                    reference, documents[reference], backend, documents[backend]
                )
            )
    return DiffReport(
        target=experiment_id,
        kind="experiment",
        backends=tuple(backends),
        problems=problems,
        fingerprints={
            backend: hashlib.sha256(doc.encode()).hexdigest()[:16]
            for backend, doc in documents.items()
        },
    )


def diff_targets(
    targets: Iterable[str] | None = None,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    seed: int | None = None,
    duration_s: float | None = None,
    quick: bool = True,
    progress: Any = None,
) -> list[DiffReport]:
    """Diff a mixed list of perf scenarios and experiment ids.

    ``None`` means every registered perf scenario (the CLI default — the
    experiments tier is opt-in because quick mode still simulates seconds
    of airtime per experiment).  Unknown names raise the experiment
    registry's readable ``KeyError``.
    """
    say = progress if progress is not None else lambda _m: None
    selected = list(targets) if targets is not None else list(SCENARIOS)
    reports = []
    for target in selected:
        if target in SCENARIOS:
            report = diff_scenario(
                target, backends=backends, seed=seed, duration_s=duration_s
            )
        else:
            report = diff_experiment(target, backends=backends, quick=quick)
        reports.append(report)
        say(report.summary_line())
    return reports


__all__ = [
    "DEFAULT_BACKENDS",
    "BackendRun",
    "DiffReport",
    "diff_backend_runs",
    "diff_experiment",
    "diff_scenario",
    "diff_targets",
    "run_traced",
]
