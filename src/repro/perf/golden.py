"""Golden-trace and golden-metric capture for core-equivalence testing.

The fast-path work on the simulation core (heap scheduler, timing lookup
tables, batched RNG) promises to be *bit-identical* to the original
implementation.  This module defines what "identical" means operationally:

* **Frame traces** — every transmission of a canonical scenario, serialized
  with :meth:`repro.stats.trace.FrameTracer.to_jsonl`.  The committed files
  under ``tests/golden/`` were captured from the pre-fast-path core; the
  optimized core must reproduce them **byte for byte** (same frames, same
  microsecond timestamps, same NAV values, same order).
* **Campaign metrics** — full grid points of the Figure 1 and Figure 11
  campaigns executed through :func:`repro.campaign.run_campaign`, compared
  for exact float equality per seed.  This closes the loop above the MAC:
  transport behavior, medians, manifest plumbing.

Both captures run the same code path at capture and at verify time, so a
comparison failure always means the simulation itself diverged.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.perf.scenarios import get_scenario, scenario_names
from repro.stats.trace import FrameTracer

US_PER_S = 1_000_000.0

#: Scenario -> (seed, simulated seconds) for the committed golden traces.
#: Short enough to keep the JSONL files reviewable, long enough to exercise
#: backoff escalation, NAV expiry, retransmission and (for spoof_tcp)
#: corrupted receptions.
GOLDEN_TRACE_RUNS: dict[str, tuple[int, float]] = {
    "fig1_nav_udp": (1, 0.25),
    "fig8_nav_tcp": (1, 0.25),
    "spoof_tcp": (2, 0.25),
    # GRC detection operating points (added with the streaming-detection
    # gate): dense NAV inflation and ACK spoofing under active detectors.
    "grc_nav": (1, 0.25),
    "grc_spoof": (2, 0.25),
    # SINR channel-model golden set (DESIGN.md §15): these scenarios pin
    # ``ChannelConfig(model="sinr")`` explicitly, so the committed traces
    # cover the aggregate-interference decision path on both backends.  The
    # dense grid runs 20 ms — 120 stations make even that ~400 records.
    "hidden_node_sinr": (1, 0.25),
    "dense_hotspot_sinr": (1, 0.02),
}


def trace_filename(name: str, backend_suffix: str = "") -> str:
    """Committed filename for one golden trace.

    ``backend_suffix`` carves out a per-backend golden set: a backend that
    registered :attr:`repro.sim.backend.SimBackend.trace_suffix` (i.e. one
    that does *not* promise byte-identical replay of the reference) stores
    and verifies its own files instead of the scalar ones.  The empty
    suffix — the reference set, which ``vectorized`` also replays — keeps
    the historical filenames.
    """
    seed, duration_s = GOLDEN_TRACE_RUNS[name]
    infix = f"_{backend_suffix}" if backend_suffix else ""
    return f"trace_{name}{infix}_seed{seed}_{int(duration_s * 1000)}ms.jsonl"


def capture_trace(name: str, out_path: str | Path, backend: str | None = None) -> int:
    """Run one golden scenario with a tracer attached; write JSONL.

    Returns the number of trace records written.  ``backend`` selects the
    simulation backend for the run (None = ambient).
    """
    from repro.sim.backend import use_backend

    seed, duration_s = GOLDEN_TRACE_RUNS[name]
    with use_backend(backend):
        built = get_scenario(name).build(seed)
        tracer = FrameTracer(built.scenario.medium)
        built.scenario.run(duration_s)
    return tracer.to_jsonl(out_path)


def capture_all_traces(out_dir: str | Path, backend: str | None = None) -> dict[str, int]:
    """Capture every golden trace into ``out_dir``; returns record counts."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    return {
        name: capture_trace(name, out_dir / trace_filename(name), backend=backend)
        for name in GOLDEN_TRACE_RUNS
    }


# --------------------------------------------------- fault golden traces --

#: Fault-enabled golden points: ``key -> (scenario, seed, duration_s)``.
#: Each pins one sim-plane fault model end to end — the model's dedicated
#: RNG stream, its delivery/scheduling hooks *and* the unchanged base
#: machinery around it — so a backend cannot be bit-exact on clean channels
#: while silently reordering draws under faults.
GOLDEN_FAULT_RUNS: dict[str, tuple[str, int, float]] = {
    "ge_channel": ("fig1_nav_udp", 3, 0.25),
    "jammer": ("fig8_nav_tcp", 3, 0.25),
}


def fault_plan(key: str):
    """The committed :class:`repro.faults.FaultPlan` for one fault golden.

    Parameters are chosen so the fault actually bites within 250 ms of
    simulated time: the Gilbert–Elliott chain fades several times per trace
    (mean good run 20 frames, bad run ~3 at 80% FER) and the jammer fires a
    2 ms burst every 20 ms starting at 1 ms.
    """
    from repro.faults import FaultPlan, GilbertElliottConfig, JammerConfig

    if key == "ge_channel":
        return FaultPlan(channel=GilbertElliottConfig())
    if key == "jammer":
        return FaultPlan(jammer=JammerConfig())
    raise KeyError(
        f"unknown fault golden {key!r}; known: {sorted(GOLDEN_FAULT_RUNS)}"
    )


def fault_trace_filename(key: str, backend_suffix: str = "") -> str:
    scenario, seed, duration_s = GOLDEN_FAULT_RUNS[key]
    infix = f"_{backend_suffix}" if backend_suffix else ""
    return (
        f"trace_fault_{key}_{scenario}{infix}_seed{seed}"
        f"_{int(duration_s * 1000)}ms.jsonl"
    )


def capture_fault_trace(key: str, out_path: str | Path, backend: str | None = None) -> int:
    """Run one fault golden point with a tracer attached; write JSONL."""
    from repro.sim.backend import use_backend

    scenario, seed, duration_s = GOLDEN_FAULT_RUNS[key]
    with use_backend(backend):
        built = get_scenario(scenario).build(seed)
        built.scenario.install_faults(fault_plan(key))
        tracer = FrameTracer(built.scenario.medium)
        built.scenario.run(duration_s)
    return tracer.to_jsonl(out_path)


def capture_all_fault_traces(
    out_dir: str | Path, backend: str | None = None
) -> dict[str, int]:
    """Capture every fault golden trace into ``out_dir``; record counts."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    return {
        key: capture_fault_trace(key, out_dir / fault_trace_filename(key), backend=backend)
        for key in GOLDEN_FAULT_RUNS
    }


# ------------------------------------------------- campaign-level metrics --

#: Small-but-real campaign specs for full-figure metric equivalence: two
#: figures, several grid points, two seeds each.  Durations are short; what
#: matters is exact float equality, not statistical convergence.
GOLDEN_CAMPAIGNS: dict[str, dict[str, Any]] = {
    "fig1_nav_udp": {
        "campaign": {
            "name": "golden_fig1",
            "builder": "nav_pairs",
            "seeds": [1, 2],
            "duration_s": 0.4,
        },
        "params": {"transport": "udp"},
        "zip": {
            "alpha": [0, 3, 6],
            "nav_inflation_us": [0.0, 300.0, 600.0],
        },
    },
    "fig11_spoof_ber": {
        "campaign": {
            "name": "golden_fig11",
            "builder": "spoof_tcp_pairs",
            "seeds": [1, 2],
            "duration_s": 0.4,
        },
        "sweep": {"ber": [1e-4, 2e-4]},
    },
}

METRICS_FILENAME = "campaign_metrics.json"


def run_golden_campaigns(work_dir: str | Path) -> dict[str, Any]:
    """Execute the golden campaign specs; return ``{figure: per-point data}``.

    Runs through the real campaign runner (manifest, cache, aggregation) so
    the equivalence check covers the same machinery ``repro campaign`` uses.
    The per-seed metric dicts are returned exactly as the builders produced
    them — full float precision.
    """
    from repro.campaign import run_campaign
    from repro.campaign.runner import load_point_results, manifest_path
    from repro.campaign.manifest import Manifest
    from repro.campaign.spec import spec_from_dict

    work_dir = Path(work_dir)
    out: dict[str, Any] = {}
    for figure, data in GOLDEN_CAMPAIGNS.items():
        spec = spec_from_dict(data, source=f"<golden:{figure}>")
        run_dir = work_dir / figure
        run_campaign(spec, out_dir=run_dir, use_cache=False)
        manifest = Manifest.load(manifest_path(run_dir))
        results = load_point_results(run_dir, manifest)
        out[figure] = {
            point_id: {
                "params": payload["params"],
                "per_seed": payload["per_seed"],
            }
            for point_id, payload in sorted(results.items())
        }
    return out


def capture_metrics(out_path: str | Path, work_dir: str | Path) -> Path:
    """Run the golden campaigns and write their metrics as sorted JSON."""
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    payload = run_golden_campaigns(work_dir)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out_path


def compare_metrics(
    golden: Mapping[str, Any], current: Mapping[str, Any]
) -> list[str]:
    """Exact comparison of two golden-metric documents; returns differences."""
    problems = []
    for figure in sorted(set(golden) | set(current)):
        if figure not in golden or figure not in current:
            problems.append(f"{figure}: present on only one side")
            continue
        g_points, c_points = golden[figure], current[figure]
        for point in sorted(set(g_points) | set(c_points)):
            if point not in g_points or point not in c_points:
                problems.append(f"{figure}/{point}: present on only one side")
                continue
            g_seeds = g_points[point]["per_seed"]
            c_seeds = c_points[point]["per_seed"]
            for seed in sorted(set(g_seeds) | set(c_seeds)):
                g = g_seeds.get(seed)
                c = c_seeds.get(seed)
                if g != c:
                    problems.append(
                        f"{figure}/{point}/seed {seed}: {g!r} != {c!r}"
                    )
    return problems


__all__ = [
    "GOLDEN_CAMPAIGNS",
    "GOLDEN_FAULT_RUNS",
    "GOLDEN_TRACE_RUNS",
    "METRICS_FILENAME",
    "capture_all_fault_traces",
    "capture_all_traces",
    "capture_fault_trace",
    "capture_metrics",
    "capture_trace",
    "compare_metrics",
    "fault_plan",
    "fault_trace_filename",
    "run_golden_campaigns",
    "scenario_names",
    "trace_filename",
]
