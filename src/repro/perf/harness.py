"""Reproducible microbenchmark harness for the simulation core.

Times the registered :mod:`repro.perf.scenarios` and writes a
``BENCH_core.json`` document — the repo's wall-clock trajectory for the
*inner* (per-seed) simulation loop, complementing ``BENCH_parallel.json``
(outer-loop fan-out, PR 1) and the campaign manifests (PR 2).

Schema (``bench-core/1``)::

    {
      "schema": "bench-core/1",
      "seed": 1, "repeats": 3,
      "scenarios": {
        "fig1_nav_udp": {
          "sim_duration_s": 2.0,
          "runs_s": [..],          # raw wall seconds, one per repeat
          "wall_s": ..,            # minimum over repeats (noise floor)
          "events": ..,            # events processed in one run
          "events_per_s": ..,      # events / wall_s
          "metrics": {..}          # per-flow goodputs (determinism probe)
        }, ...
      },
      "speedup": {"fig1_nav_udp": 1.7, ...}   # only with a comparison file
    }

``wall_s`` is the *minimum* over repeats: scheduling noise only ever adds
time, so the minimum is the most stable estimator for regression gating.
The per-scenario ``metrics`` double as a cheap equivalence probe: two
harness runs at the same seed must report identical metrics, whatever the
wall clock says.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.perf.scenarios import SCENARIOS, get_scenario

US_PER_S = 1_000_000.0

SCHEMA = "bench-core/1"

#: ``--check-regression`` gate: fail when a scenario is more than this many
#: times slower than the committed baseline.  Deliberately loose (2x) so the
#: gate survives noisy CI machines while still catching real regressions.
REGRESSION_FACTOR = 2.0


def time_scenario(
    name: str,
    seed: int = 1,
    repeats: int = 3,
    duration_s: float | None = None,
    clock: Callable[[], float] = time.perf_counter,
    telemetry: bool = False,
    backend: str | None = None,
) -> dict[str, Any]:
    """Build and run one scenario ``repeats`` times; return its bench entry.

    Only the event loop (``Simulator.run``) is timed — scenario construction
    (including any backend precomputation: reach tables, DCF transition
    tables) is excluded, so the number tracks the per-seed inner-loop cost
    that dominates ``run_all.py`` and campaign grids.  ``telemetry=True``
    builds each run inside a live :func:`repro.obs.capture`, which is how
    the 2x regression gate measures the instrumented (hooks-on) code path.
    ``backend`` selects a simulation backend for the build (None = ambient).
    """
    from repro.obs import MetricsRegistry, capture
    from repro.sim.backend import use_backend

    spec = get_scenario(name)
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    sim_s = spec.duration_s if duration_s is None else float(duration_s)
    if sim_s <= 0:
        raise ValueError(f"duration_s must be positive, got {sim_s}")
    runs: list[float] = []
    events = 0
    metrics: dict[str, float] = {}
    for _ in range(repeats):
        with capture(MetricsRegistry(enabled=telemetry)):
            with use_backend(backend):
                built = spec.build(seed)
            built.scenario.warm_caches()
            sim = built.scenario.sim
            start = clock()
            built.scenario.run(sim_s)
            runs.append(clock() - start)
        events = sim.events_processed
        metrics = built.metrics(sim_s * US_PER_S)
    wall = min(runs)
    return {
        "sim_duration_s": sim_s,
        "runs_s": runs,
        "wall_s": wall,
        "events": events,
        "events_per_s": events / wall if wall > 0 else 0.0,
        "metrics": metrics,
    }


def run_benchmark(
    names: Iterable[str] | None = None,
    seed: int = 1,
    repeats: int = 3,
    duration_s: float | None = None,
    progress: Callable[[str], None] | None = None,
    telemetry: bool = False,
    backend: str | None = None,
) -> dict[str, Any]:
    """Time every requested scenario and assemble the BENCH_core document.

    ``telemetry=True`` times the instrumented code path (live metrics
    registry attached to every scenario) and records that in the document.
    ``backend`` selects the simulation backend; the resolved name is
    recorded in the document so a baseline file always says which backend
    produced it.
    """
    from repro.sim.backend import resolve_backend

    selected = list(names) if names else list(SCENARIOS)
    say = progress if progress is not None else lambda _m: None
    scenarios: dict[str, Any] = {}
    for name in selected:
        entry = time_scenario(
            name, seed=seed, repeats=repeats, duration_s=duration_s,
            telemetry=telemetry, backend=backend,
        )
        scenarios[name] = entry
        say(
            f"{name}: {entry['wall_s']:.3f}s wall for {entry['sim_duration_s']:g}s "
            f"simulated ({entry['events_per_s']:,.0f} events/s)"
        )
    return {
        "schema": SCHEMA,
        "seed": seed,
        "repeats": repeats,
        "python": platform.python_version(),
        "telemetry": telemetry,
        "backend": resolve_backend(backend).name,
        "scenarios": scenarios,
    }


def attach_speedup(bench: Mapping[str, Any], baseline: Mapping[str, Any]) -> dict[str, Any]:
    """Return ``bench`` with a ``speedup`` section versus ``baseline``.

    ``speedup[name] = baseline_wall / bench_wall`` — above 1.0 means the
    current core is faster than the reference measurement.
    """
    out = dict(bench)
    speedup = {}
    base_scenarios = baseline.get("scenarios", {})
    for name, entry in bench.get("scenarios", {}).items():
        base = base_scenarios.get(name)
        if base and entry["wall_s"] > 0:
            speedup[name] = base["wall_s"] / entry["wall_s"]
    out["speedup"] = speedup
    out["baseline_wall_s"] = {
        name: base_scenarios[name]["wall_s"]
        for name in speedup
    }
    return out


def check_regression(
    bench: Mapping[str, Any],
    baseline: Mapping[str, Any],
    factor: float = REGRESSION_FACTOR,
) -> list[str]:
    """Compare ``bench`` against a committed baseline; return failure messages.

    A scenario fails when its wall time exceeds ``factor`` times the baseline
    wall time.  Scenarios absent from the baseline are skipped (new scenarios
    must not break old gates).  Each message names the regressed scenario and
    quantifies the slowdown — both the wall-clock ratio and the events/s
    drop when the baseline recorded one — so a CI failure is diagnosable
    from the log alone (``tests/test_perf_harness.py`` pins the format).
    """
    problems = []
    base_scenarios = baseline.get("scenarios", {})
    for name, entry in bench.get("scenarios", {}).items():
        base = base_scenarios.get(name)
        if base is None:
            continue
        limit = factor * base["wall_s"]
        if entry["wall_s"] > limit:
            slowdown = entry["wall_s"] / base["wall_s"]
            message = (
                f"{name}: regressed {slowdown:.2f}x — wall {entry['wall_s']:.3f}s "
                f"vs baseline {base['wall_s']:.3f}s (limit {limit:.3f}s "
                f"at factor {factor:g})"
            )
            base_rate = base.get("events_per_s")
            if base_rate:
                message += (
                    f"; {entry.get('events_per_s', 0.0):,.0f} events/s "
                    f"vs baseline {base_rate:,.0f}"
                )
            problems.append(message)
    return problems


def write_bench(path: str | Path, bench: Mapping[str, Any]) -> Path:
    """Write a BENCH_core document as deterministic, diffable JSON."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: str | Path) -> dict[str, Any]:
    """Load a BENCH_core (or baseline) document, validating the schema tag."""
    path = Path(path)
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or "scenarios" not in data:
        raise ValueError(f"{path}: not a BENCH_core document (no 'scenarios' key)")
    return data


def validate_bench(bench: Mapping[str, Any]) -> list[str]:
    """Structural self-check of a bench document; returns problem strings.

    Used by the test suite and ``--check-regression`` to refuse nonsense
    measurements (non-positive wall times, unregistered scenario names).
    """
    problems = []
    if bench.get("schema") != SCHEMA:
        problems.append(f"schema is {bench.get('schema')!r}, expected {SCHEMA!r}")
    scenarios = bench.get("scenarios")
    if not isinstance(scenarios, Mapping) or not scenarios:
        return problems + ["no scenarios section"]
    for name, entry in scenarios.items():
        if name not in SCENARIOS:
            problems.append(f"unknown scenario {name!r}")
            continue
        runs = entry.get("runs_s")
        if not isinstance(runs, Sequence) or not runs:
            problems.append(f"{name}: missing runs_s")
            continue
        if any(r <= 0 for r in runs) or entry.get("wall_s", 0) <= 0:
            problems.append(f"{name}: non-positive wall time")
        if abs(entry.get("wall_s", 0) - min(runs)) > 1e-12:
            problems.append(f"{name}: wall_s is not min(runs_s)")
        if entry.get("events", 0) <= 0:
            problems.append(f"{name}: non-positive event count")
    return problems
