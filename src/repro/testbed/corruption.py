"""MAC-address survival in corrupted frames (the paper's Table I).

The feasibility of fake ACKs (misbehavior 3) rests on a measurement: most
corrupted frames still carry intact source/destination MAC addresses, because
the 12 address bytes are a tiny fraction of a ~1 KB frame.  The paper
measured this on real hardware (Table I); we reproduce it with a channel
error model.

Independent byte errors alone cannot explain the measured numbers: an i.i.d.
model predicts >99 % address survival for both PHYs, yet 802.11a showed only
84 % destination survival.  Corrupted frames in the wild carry *clusters* of
errors whose density varies frame to frame (deep fades garble long symbol
runs).  We therefore model a corrupted frame as having an error *density*
``f`` drawn per frame from an exponential distribution; each byte is then
errored independently with probability ``f``.  Calibrating the corruption
rate and mean density per PHY reproduces Table I's contrast between 802.11b
(rare corruption, light density, addresses almost always survive) and
802.11a (frequent corruption, heavy density, addresses lost in ~16 % of
corrupted frames).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Byte offsets of the destination and source address fields in an 802.11
#: data frame header (frame control + duration precede the addresses).
DST_SPAN = (4, 10)
SRC_SPAN = (10, 16)

ADDRESS_BYTES = 6


@dataclass(frozen=True)
class DensityErrorParams:
    """Per-PHY corruption model parameters."""

    corruption_rate: float  # fraction of frames that arrive corrupted
    mean_error_density: float  # mean per-byte error probability when corrupted

    def __post_init__(self) -> None:
        if not 0 <= self.corruption_rate <= 1:
            raise ValueError("corruption_rate must be in [0, 1]")
        if not 0 < self.mean_error_density <= 1:
            raise ValueError("mean_error_density must be in (0, 1]")


#: Calibrated against Table I.  802.11b (DSSS): 2.1 % corruption, light error
#: density.  802.11a (OFDM): 32 % corruption, and one fade garbles many
#: symbols, so the per-frame error density is an order of magnitude higher.
CALIBRATED_PARAMS = {
    "802.11b": DensityErrorParams(corruption_rate=1367 / 65536, mean_error_density=0.002),
    "802.11a": DensityErrorParams(corruption_rate=7376 / 23068, mean_error_density=0.030),
}


@dataclass
class CorruptionBreakdown:
    """Counts in the shape of the paper's Table I."""

    frames: int = 0
    corrupted: int = 0
    corrupted_dst_ok: int = 0
    corrupted_src_dst_ok: int = 0

    @property
    def corruption_rate(self) -> float:
        return self.corrupted / self.frames if self.frames else 0.0

    @property
    def dst_survival(self) -> float:
        """Fraction of corrupted frames delivered to the correct destination."""
        return self.corrupted_dst_ok / self.corrupted if self.corrupted else 0.0

    @property
    def src_survival_given_dst(self) -> float:
        """Among those, fraction that also kept the correct source address."""
        if not self.corrupted_dst_ok:
            return 0.0
        return self.corrupted_src_dst_ok / self.corrupted_dst_ok


def measure_address_survival(
    rng: random.Random,
    n_frames: int,
    params: DensityErrorParams | None = None,
    phy_name: str = "802.11b",
) -> CorruptionBreakdown:
    """Monte-Carlo reproduction of Table I's measurement campaign."""
    if params is None:
        params = CALIBRATED_PARAMS[phy_name]
    result = CorruptionBreakdown(frames=n_frames)
    for _ in range(n_frames):
        if rng.random() >= params.corruption_rate:
            continue
        result.corrupted += 1
        density = min(1.0, rng.expovariate(1.0 / params.mean_error_density))
        field_ok = (1.0 - density) ** ADDRESS_BYTES
        if rng.random() < field_ok:  # destination field untouched
            result.corrupted_dst_ok += 1
            if rng.random() < field_ok:  # source field untouched too
                result.corrupted_src_dst_ok += 1
    return result


def address_survival_analytic(
    byte_error_rate: float, frame_bytes: int = 1092
) -> tuple[float, float, float]:
    """Closed form under *independent* byte errors.

    Returns ``(P[corrupted], P[dst ok | corrupted], P[src ok | dst ok,
    corrupted])``.  This is the naive baseline the density model improves on:
    independent errors predict near-perfect address survival for any channel
    quality, which contradicts the 802.11a measurement.
    """
    if not 0 <= byte_error_rate < 1:
        raise ValueError("byte error rate must be in [0, 1)")
    q = 1.0 - byte_error_rate
    p_corrupt = 1.0 - q**frame_bytes
    if p_corrupt == 0.0:
        return 0.0, 1.0, 1.0
    dst_len = DST_SPAN[1] - DST_SPAN[0]
    src_len = SRC_SPAN[1] - SRC_SPAN[0]
    rest_after_dst = frame_bytes - dst_len
    rest_after_both = frame_bytes - dst_len - src_len
    p_dst_ok_and_corrupt = q**dst_len * (1.0 - q**rest_after_dst)
    p_both_ok_and_corrupt = q ** (dst_len + src_len) * (1.0 - q**rest_after_both)
    p_dst_ok = p_dst_ok_and_corrupt / p_corrupt
    p_src_given_dst = (
        p_both_ok_and_corrupt / p_dst_ok_and_corrupt if p_dst_ok_and_corrupt else 1.0
    )
    return p_corrupt, p_dst_ok, p_src_given_dst


def expected_survival(params: DensityErrorParams, samples: int = 200_000) -> float:
    """Mean single-field survival probability under ``params`` (analytic aid).

    ``E[(1-f)^6]`` for exponential ``f`` has no elementary closed form after
    clamping, so we integrate numerically with a deterministic grid.
    """
    mean = params.mean_error_density
    total = 0.0
    step = 1.0 / samples
    import math

    for i in range(samples):
        # Inverse-CDF sampling on a uniform grid (midpoint rule).
        u = (i + 0.5) * step
        f = min(1.0, -mean * math.log1p(-u))
        total += (1.0 - f) ** ADDRESS_BYTES
    return total / samples
