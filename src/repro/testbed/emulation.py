"""Simulated versions of the paper's MadWifi testbed experiments (Sec. VI).

The authors could not make commodity hardware misbehave directly in every
case, so they *emulated* misbehaviors with driver modifications; we apply the
identical modifications to the simulated MAC:

* **NAV inflation (Tables VI-VII)** — the real misbehavior: a greedy policy
  inflating NAV to the protocol maximum (32767 us) on RTS frames sent for
  TCP ACKs, or on CTS/ACK under UDP (the testbed injected these via the raw
  interface).
* **ACK spoofing (Table VIII)** — the sender disables MAC retransmissions
  toward the normal receiver only (``mac.no_retransmit_to``).
* **Fake ACKs (Table IX)** — the sender clamps ``CW_max = CW_min`` when
  transmitting to the greedy receiver (``mac.cw_max_to``).

All scenarios use 802.11a at 6 Mbps with RTS/CTS enabled (except where the
paper disables it), matching the testbed configuration.
"""

from __future__ import annotations

from repro.core.greedy import GreedyConfig
from repro.mac.frames import FrameKind
from repro.net.scenario import Scenario
from repro.phy.params import MAX_NAV_US, dot11a

US_PER_S = 1_000_000.0


def _two_pair_scenario(seed: int, greedy: GreedyConfig | None, rts: bool) -> Scenario:
    s = Scenario(phy=dot11a(6.0), seed=seed, rts_enabled=rts)
    s.add_wireless_node("S1")
    s.add_wireless_node("S2")
    s.add_wireless_node("R1", greedy=greedy)  # R1 turns greedy in the "1 GR" runs
    s.add_wireless_node("R2")
    return s


def table6_nav_rts_tcp(seed: int = 0, greedy: bool = True, duration_s: float = 5.0):
    """Table VI: GR inflates NAV in the RTS frames of its TCP ACKs to max.

    Returns ``{"R1": goodput_mbps, "R2": goodput_mbps}`` — R1 is the greedy
    receiver when ``greedy`` is True.
    """
    config = None
    if greedy:
        config = GreedyConfig.nav_inflator(float(MAX_NAV_US), {FrameKind.RTS})
    s = _two_pair_scenario(seed, config, rts=True)
    snd1, rcv1 = s.tcp_flow("S1", "R1")
    snd2, rcv2 = s.tcp_flow("S2", "R2")
    snd1.start()
    snd2.start()
    s.run(duration_s)
    us = duration_s * US_PER_S
    return {"R1": rcv1.goodput_mbps(us), "R2": rcv2.goodput_mbps(us)}


def table7_nav_udp(
    seed: int = 0,
    variant: str = "ack_no_rtscts",
    greedy: bool = True,
    duration_s: float = 5.0,
):
    """Table VII: UDP NAV inflation, three testbed variants.

    ``variant`` is one of ``ack_no_rtscts`` (no RTS/CTS, inflate ACK NAV),
    ``cts`` (RTS/CTS on, inflate CTS NAV), ``cts_ack`` (inflate both).
    """
    variants = {
        "ack_no_rtscts": (False, {FrameKind.ACK}),
        "cts": (True, {FrameKind.CTS}),
        "cts_ack": (True, {FrameKind.CTS, FrameKind.ACK}),
    }
    if variant not in variants:
        raise ValueError(f"unknown variant {variant!r}")
    rts, frames = variants[variant]
    config = GreedyConfig.nav_inflator(float(MAX_NAV_US), frames) if greedy else None
    s = _two_pair_scenario(seed, config, rts=rts)
    src1, sink1 = s.udp_flow("S1", "R1")
    src2, sink2 = s.udp_flow("S2", "R2")
    src1.start()
    src2.start()
    s.run(duration_s)
    us = duration_s * US_PER_S
    return {"R1": sink1.goodput_mbps(us), "R2": sink2.goodput_mbps(us)}


def table8_spoof_emulation_tcp(
    seed: int = 0, greedy: bool = True, duration_s: float = 5.0
):
    """Table VIII: one sender, two TCP receivers; MAC retransmissions are
    disabled toward the normal receiver to emulate a perfect spoofer.

    R1 plays the greedy receiver (its traffic keeps retransmissions); R2 is
    the victim.  Without RTS/CTS, as in the testbed.
    """
    s = Scenario(phy=dot11a(6.0), seed=seed, rts_enabled=False)
    s.add_wireless_node("S")
    s.add_wireless_node("R1")
    s.add_wireless_node("R2")
    if greedy:
        s.macs["S"].no_retransmit_to.add("R2")
    snd1, rcv1 = s.tcp_flow("S", "R1")
    snd2, rcv2 = s.tcp_flow("S", "R2")
    snd1.start()
    snd2.start()
    s.run(duration_s)
    us = duration_s * US_PER_S
    return {"R1": rcv1.goodput_mbps(us), "R2": rcv2.goodput_mbps(us)}


def table9_fake_ack_emulation_udp(
    seed: int = 0, greedy: bool = True, duration_s: float = 5.0, data_fer: float = 0.15
):
    """Table IX: fake-ACK emulation under UDP: CW_max is clamped to CW_min
    for the greedy receiver's sender, so it never backs off under losses.

    Fake ACKs only pay off against a *different* AP (Section IV-C), so this
    uses two senders, each saturating its own receiver.  The testbed links
    were naturally lossy; without losses the emulation is a no-op (backoff
    never escalates), so we inject a moderate data frame error rate.
    """
    s = _two_pair_scenario(seed, greedy=None, rts=False)
    s.error_model.set_data_fer("S1", "R1", data_fer)
    s.error_model.set_data_fer("S2", "R2", data_fer)
    if greedy:
        s.macs["S1"].cw_max_to["R1"] = s.phy.cw_min
    src1, sink1 = s.udp_flow("S1", "R1")
    src2, sink2 = s.udp_flow("S2", "R2")
    src1.start()
    src2.start()
    s.run(duration_s)
    us = duration_s * US_PER_S
    return {"R1": sink1.goodput_mbps(us), "R2": sink2.goodput_mbps(us)}
