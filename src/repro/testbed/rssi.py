"""RSSI measurement campaign model (the paper's Figures 21-22).

The paper measured RSSI on a 16-node office testbed: one node broadcasts,
all others record per-packet RSSI.  Two findings drive the spoofed-ACK
detector design:

1. about 95 % of RSSI samples are within 1 dB of the link's median — RSSI is
   stable over short intervals (Figure 21);
2. a 1 dB deviation threshold therefore yields both low false positives
   (genuine frames flagged) and low false negatives (spoofed frames passed)
   (Figure 22).

We model per-link median RSSI with log-distance path loss plus static
per-link shadowing, and per-packet deviation as a Gaussian mixture (a narrow
core with rare heavier-tailed excursions from fading and interference).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from statistics import median


@dataclass(frozen=True)
class RssiSample:
    """One received broadcast packet."""

    sender: int
    receiver: int
    rssi_db: float


@dataclass
class RssiModelParams:
    """Knobs of the measurement model."""

    tx_power_dbm: float = 18.0
    path_loss_exponent: float = 3.0  # indoor office
    path_loss_at_1m_db: float = 40.0
    shadowing_sigma_db: float = 6.0  # static per-link offset
    jitter_core_sigma_db: float = 0.4
    jitter_tail_sigma_db: float = 2.5
    jitter_tail_prob: float = 0.04
    noise_floor_dbm: float = -96.0


class RssiCampaign:
    """Synthetic version of the paper's 16-node measurement campaign."""

    def __init__(
        self,
        rng: random.Random,
        n_nodes: int = 16,
        floor_size_m: float = 40.0,
        params: RssiModelParams | None = None,
    ) -> None:
        if n_nodes < 2:
            raise ValueError("need at least two nodes")
        self.rng = rng
        self.params = params or RssiModelParams()
        self.positions = [
            (rng.uniform(0, floor_size_m), rng.uniform(0, floor_size_m))
            for _ in range(n_nodes)
        ]
        self.n_nodes = n_nodes
        # Static shadowing per directed link: fixed for the whole campaign.
        self._shadow: dict[tuple[int, int], float] = {}
        self.samples: list[RssiSample] = []

    # ------------------------------------------------------------------------

    def _link_median_rssi(self, sender: int, receiver: int) -> float:
        key = (sender, receiver)
        shadow = self._shadow.get(key)
        if shadow is None:
            shadow = self.rng.gauss(0.0, self.params.shadowing_sigma_db)
            self._shadow[key] = shadow
        p = self.params
        ax, ay = self.positions[sender]
        bx, by = self.positions[receiver]
        d = max(1.0, math.hypot(ax - bx, ay - by))
        path_loss = p.path_loss_at_1m_db + 10 * p.path_loss_exponent * math.log10(d)
        rx_dbm = p.tx_power_dbm - path_loss + shadow
        return rx_dbm - p.noise_floor_dbm  # RSSI = dB above noise floor

    def _jitter(self) -> float:
        p = self.params
        if self.rng.random() < p.jitter_tail_prob:
            return self.rng.gauss(0.0, p.jitter_tail_sigma_db)
        return self.rng.gauss(0.0, p.jitter_core_sigma_db)

    def run(self, packets_per_sender: int = 200) -> None:
        """Every node broadcasts; all others record per-packet RSSI."""
        for sender in range(self.n_nodes):
            for receiver in range(self.n_nodes):
                if receiver == sender:
                    continue
                base = self._link_median_rssi(sender, receiver)
                for _ in range(packets_per_sender):
                    self.samples.append(
                        RssiSample(sender, receiver, base + self._jitter())
                    )

    # -------------------------------------------------------------- analysis --

    def link_samples(self) -> dict[tuple[int, int], list[float]]:
        links: dict[tuple[int, int], list[float]] = {}
        for s in self.samples:
            links.setdefault((s.sender, s.receiver), []).append(s.rssi_db)
        return links

    def deviations_from_median(self) -> list[float]:
        """|RSSI - median RSSI| over all links: the data behind Figure 21."""
        deviations: list[float] = []
        for values in self.link_samples().values():
            m = median(values)
            deviations.extend(abs(v - m) for v in values)
        return deviations

    def deviation_cdf(self, points: list[float]) -> list[tuple[float, float]]:
        """CDF of the per-sample deviation, evaluated at ``points`` (dB)."""
        deviations = self.deviations_from_median()
        n = len(deviations)
        if n == 0:
            raise RuntimeError("run() the campaign first")
        return [
            (x, sum(1 for d in deviations if d <= x) / n) for x in points
        ]


def roc_curve(
    campaign: RssiCampaign, thresholds: list[float]
) -> list[tuple[float, float, float]]:
    """False positive and false negative rates per threshold (Figure 22).

    For each observer node and each ordered pair of *other* nodes (victim,
    spoofer): a genuine frame is a victim-link sample judged against the
    victim link's median (deviation > threshold => false positive), and a
    spoofed frame is a spoofer-link sample judged against the victim link's
    median (deviation <= threshold => false negative).
    """
    links = campaign.link_samples()
    medians = {link: median(values) for link, values in links.items()}
    rows: list[tuple[float, float, float]] = []
    for threshold in thresholds:
        fp_hits = fp_total = 0
        fn_hits = fn_total = 0
        for (sender, receiver), values in links.items():
            m = medians[(sender, receiver)]
            for v in values:
                fp_total += 1
                if abs(v - m) > threshold:
                    fp_hits += 1
            # Every other sender heard by this receiver can act as a spoofer.
            for other in range(campaign.n_nodes):
                if other in (sender, receiver):
                    continue
                for v in links.get((other, receiver), ()):  # spoofer's frames
                    fn_total += 1
                    if abs(v - m) <= threshold:
                        fn_hits += 1
        rows.append(
            (
                threshold,
                fp_hits / fp_total if fp_total else 0.0,
                fn_hits / fn_total if fn_total else 0.0,
            )
        )
    return rows
