"""Models substituting for the paper's hardware testbed (Section VI).

The paper's testbed was four Fedora PCs with NetGear WAG511 cards running
MadWifi.  We cannot run that hardware, so each testbed experiment is
reproduced by a model that exercises the same mechanism:

* :mod:`repro.testbed.corruption` — Monte-Carlo + analytic model of MAC
  address survival in corrupted frames (Table I): the feasibility argument
  for fake ACKs.
* :mod:`repro.testbed.rssi` — a 16-node office RSSI measurement model with
  per-link medians and small temporal jitter (Figures 21-22): the
  feasibility argument for RSSI-based spoofed-ACK detection.
* :mod:`repro.testbed.emulation` — the MadWifi driver modifications the
  authors used (disable MAC retransmissions toward a victim; clamp
  CWmax=CWmin toward the greedy flow; inject inflated-NAV control frames),
  applied to the simulated MAC (Tables VI-IX).
"""

from repro.testbed.corruption import (
    CorruptionBreakdown,
    address_survival_analytic,
    measure_address_survival,
)
from repro.testbed.rssi import RssiCampaign, RssiSample, roc_curve

__all__ = [
    "CorruptionBreakdown",
    "address_survival_analytic",
    "measure_address_survival",
    "RssiCampaign",
    "RssiSample",
    "roc_curve",
]
