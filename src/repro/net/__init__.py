"""Network layer: nodes (protocol-stack containers), wired links, topologies.

A :class:`Node` owns at most one wireless MAC plus any number of wired links,
and forwards packets between them with static routes — enough to model a
hotspot AP relaying traffic between remote Internet hosts and WLAN clients
(the paper's Figure 15 scenario).
"""

from repro.net.node import Node
from repro.net.wired import WiredLink
from repro.net.scenario import Scenario, WirelessNodeSpec

__all__ = ["Node", "WiredLink", "Scenario", "WirelessNodeSpec"]
