"""Point-to-point wired link with fixed one-way latency.

Substitutes for the paper's Internet path in the remote-TCP-sender scenarios
(Figures 15 and 16): lossless, high bandwidth, and a configurable one-way
delay of 2-400 ms.  The only property those experiments depend on is that
end-to-end recovery costs wireline round trips.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.engine import Simulator
from repro.transport.packets import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


class WiredLink:
    """Bidirectional link between two nodes."""

    def __init__(
        self,
        sim: Simulator,
        a: "Node",
        b: "Node",
        one_way_delay_us: float,
        bandwidth_bps: float | None = None,
    ) -> None:
        if one_way_delay_us < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.a = a
        self.b = b
        self.delay_us = one_way_delay_us
        self.bandwidth_bps = bandwidth_bps
        self.packets_carried = 0
        # Per-direction queue drain times for serialization delay.
        self._free_at: dict[str, float] = {a.name: 0.0, b.name: 0.0}

    def transmit(self, packet: Packet, sender: "Node") -> None:
        """Carry ``packet`` to the other endpoint after the link delay."""
        if sender is self.a:
            receiver = self.b
        elif sender is self.b:
            receiver = self.a
        else:
            raise ValueError(f"{sender.name} is not an endpoint of this link")
        self.packets_carried += 1
        serialization = 0.0
        if self.bandwidth_bps is not None:
            serialization = packet.size_bytes * 8 / self.bandwidth_bps * 1e6
            start = max(self.sim.now, self._free_at[sender.name])
            self._free_at[sender.name] = start + serialization
            arrival = start + serialization + self.delay_us
            self.sim.schedule_at(arrival, receiver._receive, packet, sender.name)
            return
        self.sim.schedule(self.delay_us, receiver._receive, packet, sender.name)
