"""Scenario builder: one-stop assembly of simulator, medium, nodes and flows.

Every experiment in :mod:`repro.experiments` builds on this.  A scenario owns
the event engine, RNG streams, the wireless medium, the nodes (wireless
stations, APs, wired remote hosts) and a shared GRC detection report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.detection import (
    DetectionReport,
    NavValidator,
    RssiSpoofDetector,
)
from repro.core.detection.streaming import current_live_detection
from repro.core.greedy import GreedyConfig, GreedyReceiverPolicy
from repro.mac.dcf import DcfMac
from repro.mac.policy import ReceiverPolicy
from repro.net.node import Node
from repro.net.wired import WiredLink
from repro.obs import MetricsRegistry, current_registry, sweep_scenario
from repro.phy.channel import ChannelConfig, resolve_channel
from repro.phy.error import BitErrorModel
from repro.phy.medium import Medium, SinrMedium, VectorizedMedium, VectorizedSinrMedium
from repro.phy.params import PhyParams, dot11b
from repro.phy.propagation import PathLossModel
from repro.sim.backend import SimBackend, resolve_backend
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

US_PER_S = 1_000_000.0


@dataclass(frozen=True)
class WirelessNodeSpec:
    """Declarative description of one station (used by topology helpers)."""

    name: str
    position: tuple[float, float] = (0.0, 0.0)
    greedy: GreedyConfig | None = None


class Scenario:
    """A runnable network scenario."""

    def __init__(
        self,
        phy: PhyParams | None = None,
        seed: int = 0,
        rts_enabled: bool = True,
        capture_enabled: bool = True,
        default_ber: float = 0.0,
        ranges: tuple[float, float] | None = None,
        rssi_jitter_db: float = 0.0,
        telemetry: "MetricsRegistry | bool | None" = None,
        backend: "SimBackend | str | None" = None,
        channel: "ChannelConfig | str | None" = None,
    ) -> None:
        self.phy = phy if phy is not None else dot11b()
        self.sim = Simulator()
        self.streams = RngStreams(seed)
        self.rts_enabled = rts_enabled
        #: Resolved simulation backend.  ``None`` inherits the ambient
        #: selection (:func:`repro.sim.backend.use_backend`), so experiment
        #: runners and campaign builders pick up ``--backend`` without
        #: signature changes; an explicit name/``SimBackend`` overrides.
        self.backend: SimBackend = resolve_backend(backend)
        #: Resolved channel configuration.  ``None`` inherits the ambient
        #: selection (:func:`repro.phy.channel.use_channel`); an explicit
        #: :class:`~repro.phy.channel.ChannelConfig` or model name overrides.
        #: The legacy ``ranges=`` / ``default_ber=`` / ``rssi_jitter_db=``
        #: kwargs are a deprecated shim mapped onto an equivalent config.
        cfg = resolve_channel(channel)
        legacy: dict[str, Any] = {}
        if ranges is not None:
            legacy["ranges"] = (float(ranges[0]), float(ranges[1]))
        if default_ber != 0.0:
            legacy["default_ber"] = default_ber
        if rssi_jitter_db != 0.0:
            legacy["rssi_jitter_db"] = rssi_jitter_db
        if legacy:
            if channel is not None:
                raise TypeError(
                    "pass channel=ChannelConfig(...) or the deprecated "
                    f"{sorted(legacy)} kwargs, not both"
                )
            import warnings
            from dataclasses import replace as _replace

            warnings.warn(
                f"Scenario({', '.join(sorted(legacy))}=...) is deprecated; "
                "pass channel=ChannelConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            cfg = _replace(cfg, **legacy)
        self.channel: ChannelConfig = cfg
        self.error_model = BitErrorModel(default_ber=cfg.default_ber)
        medium_class = {
            ("pairwise", False): Medium,
            ("pairwise", True): VectorizedMedium,
            ("sinr", False): SinrMedium,
            ("sinr", True): VectorizedSinrMedium,
        }[(cfg.model, self.backend.vector_phy)]
        medium_kwargs: dict[str, Any] = dict(
            error_model=self.error_model,
            pathloss=PathLossModel(exponent=cfg.path_loss_exponent),
            capture_enabled=capture_enabled,
            rssi_jitter=cfg.jitter(),
        )
        if cfg.model == "sinr":
            medium_kwargs["noise_floor"] = cfg.noise_floor
            medium_kwargs["capture_margin"] = cfg.capture_margin
        if self.backend.vector_phy:
            medium_kwargs["rng_block"] = self.backend.rng_block
        self.medium = medium_class(
            self.sim,
            self.phy,
            self.streams.stream("phy.medium"),
            **medium_kwargs,
        )
        if cfg.ranges is not None:
            self.medium.configure_ranges(*cfg.ranges)
        self.nodes: dict[str, Node] = {}
        self.macs: dict[str, DcfMac] = {}
        self.policies: dict[str, ReceiverPolicy] = {}
        self.report = DetectionReport()
        self._auto_position = 0
        # Telemetry (repro.obs).  ``telemetry`` may be an explicit registry,
        # True (fresh registry), False (off even inside a capture()), or None
        # (attach the ambient capture registry, if any).  Only an *enabled*
        # registry is wired as ``self.obs``: components guard every hook with
        # ``obs is not None``, so a disabled/absent registry leaves the
        # simulation on the exact pre-instrumentation code path.
        if telemetry is None:
            registry = current_registry()
        elif isinstance(telemetry, bool):
            registry = MetricsRegistry() if telemetry else None
        else:
            registry = telemetry
        self.telemetry: MetricsRegistry | None = registry
        self.obs: MetricsRegistry | None = (
            registry if registry is not None and registry.enabled else None
        )
        if self.obs is not None:
            self.obs.scenarios += 1
            self.medium.obs = self.obs
            self.sim.track_heap = True
        #: Installed fault injector (:mod:`repro.faults`) or None.  Faults
        #: are strictly opt-in via :meth:`install_faults`; without it the
        #: scenario runs the exact pre-fault code paths.
        self.fault_injector: Any = None
        #: Live streaming-detection pipeline
        #: (:mod:`repro.core.detection.streaming`) or None.  Opt-in: either
        #: ambient via :func:`~repro.core.detection.streaming.live_detection`
        #: (checked here, mirroring the telemetry capture()) or explicit via
        #: :meth:`attach_streaming_detection`.
        self.streaming_pipeline: Any = None
        self._detection_tap: Any = None
        session = current_live_detection()
        if session is not None:
            self.attach_streaming_detection(session.make_pipeline(self.phy))

    # ------------------------------------------------------------- nodes ----

    def add_wireless_node(
        self,
        name: str,
        position: tuple[float, float] | None = None,
        greedy: GreedyConfig | None = None,
        rts_enabled: bool | None = None,
        retransmissions_enabled: bool = True,
        cw_min: int | None = None,
        cw_max: int | None = None,
        queue_limit: int = 50,
        eifs_enabled: bool = True,
    ) -> Node:
        """Create a station; ``greedy`` installs a misbehaving receiver policy."""
        if name in self.nodes:
            raise ValueError(f"duplicate node name: {name}")
        if position is None:
            # Default: co-located stations.  All received powers are then
            # equal, so capture never biases collisions — the idealized
            # "all nodes within communication range" setting of Section V.
            # Scenarios that rely on capture or ranges set positions
            # explicitly.
            position = (0.0, 0.0)
        # The medium decides the radio flavor (pairwise Radio vs SinrRadio).
        radio = self.medium.radio_class(self.medium, name, position)
        if greedy is not None:
            policy: ReceiverPolicy = GreedyReceiverPolicy(
                greedy, self.streams.stream(f"greedy.{name}")
            )
        else:
            policy = ReceiverPolicy()
        mac = DcfMac(
            self.sim,
            self.phy,
            radio,
            self.streams.stream(f"mac.{name}"),
            policy=policy,
            rts_enabled=self.rts_enabled if rts_enabled is None else rts_enabled,
            queue_limit=queue_limit,
            retransmissions_enabled=retransmissions_enabled,
            cw_min=cw_min,
            cw_max=cw_max,
            eifs_enabled=eifs_enabled,
            dcf_tables=self.backend.dcf_tables,
        )
        if self.obs is not None:
            mac.obs = self.obs
        node = Node(name)
        node.attach_mac(mac)
        self.nodes[name] = node
        self.macs[name] = mac
        self.policies[name] = policy
        return node

    def add_wireless_nodes(
        self, specs: "Iterable[WirelessNodeSpec]", **common_kwargs: Any
    ) -> list[Node]:
        """Create one station per :class:`WirelessNodeSpec`, in order.

        ``common_kwargs`` (e.g. ``queue_limit``, ``rts_enabled``) apply to
        every station; per-station position/greedy config come from the spec.
        This is the assembly path for declaratively-described topologies
        (campaign builders hand lists of specs straight to it).
        """
        return [
            self.add_wireless_node(
                spec.name,
                position=spec.position,
                greedy=spec.greedy,
                **common_kwargs,
            )
            for spec in specs
        ]

    def add_wired_node(self, name: str) -> Node:
        """Create a node with no radio (a remote Internet host)."""
        if name in self.nodes:
            raise ValueError(f"duplicate node name: {name}")
        node = Node(name)
        self.nodes[name] = node
        return node

    def wired_link(
        self, a: str, b: str, one_way_delay_us: float, bandwidth_bps: float | None = None
    ) -> WiredLink:
        """Connect two nodes with a fixed-latency wired link."""
        link = WiredLink(
            self.sim, self.nodes[a], self.nodes[b], one_way_delay_us, bandwidth_bps
        )
        return link

    def route_remote_flow(self, remote: str, ap: str, client: str, link: WiredLink) -> None:
        """Static routes for remote-sender traffic: remote <-(wire)-> AP <-> client."""
        self.nodes[remote].add_wired_route(client, link)
        self.nodes[ap].add_wireless_route(client)
        self.nodes[ap].add_wired_route(remote, link)
        self.nodes[client].add_wireless_route(remote, next_hop=ap)

    # ------------------------------------------------------------- flows ----

    def saturating_rate_bps(self) -> float:
        """A CBR rate comfortably above channel capacity."""
        return self.phy.data_rate * 1e6

    def udp_flow(
        self,
        src: str,
        dst: str,
        rate_bps: float | None = None,
        packet_size: int = 1024,
        flow_id: str | None = None,
    ):
        """CBR/UDP flow between two wireless nodes (auto-routed)."""
        from repro.transport.udp import CbrSource, UdpSink

        if rate_bps is None:
            rate_bps = self.saturating_rate_bps()
        if flow_id is None:
            flow_id = f"udp:{src}->{dst}"
        self._auto_route(src, dst)
        source = CbrSource(
            self.sim,
            self.nodes[src],
            flow_id,
            dst,
            rate_bps,
            packet_size,
            rng=self.streams.stream(f"cbr.{flow_id}"),
        )
        sink = UdpSink(self.sim, self.nodes[dst], flow_id)
        if self.obs is not None:
            source.obs = self.obs
            sink.obs = self.obs
        return source, sink

    def tcp_flow(
        self,
        src: str,
        dst: str,
        flow_id: str | None = None,
        auto_route: bool = True,
        **tcp_kwargs: Any,
    ):
        """TCP flow; for remote senders call :meth:`route_remote_flow` first
        and pass ``auto_route=False``."""
        from repro.transport.tcp import TcpReceiver, TcpSender

        if flow_id is None:
            flow_id = f"tcp:{src}->{dst}"
        if auto_route:
            self._auto_route(src, dst)
        sender = TcpSender(
            self.sim, self.nodes[src], flow_id, dst, **tcp_kwargs
        )
        receiver = TcpReceiver(self.sim, self.nodes[dst], flow_id, src)
        if self.obs is not None:
            sender.obs = self.obs
            receiver.obs = self.obs
        return sender, receiver

    def _auto_route(self, a: str, b: str) -> None:
        node_a, node_b = self.nodes[a], self.nodes[b]
        if node_a.mac is not None and node_b.mac is not None:
            node_a.add_wireless_route(b)
            node_b.add_wireless_route(a)

    # --------------------------------------------------------------- GRC ----

    def enable_nav_validation(
        self,
        node_names: list[str] | None = None,
        mtu_bytes: int = 1500,
        tolerance_us: float = 5.0,
    ) -> None:
        """Install the GRC NAV validator on the given (default: all) stations."""
        for name in node_names if node_names is not None else list(self.macs):
            self.macs[name].nav_validator = NavValidator(
                self.phy, name, self.report, mtu_bytes, tolerance_us
            )

    def enable_spoof_detection(
        self,
        sender_names: list[str] | None = None,
        threshold_db: float = 1.0,
        min_samples: int = 4,
    ) -> None:
        """Install the GRC RSSI spoofed-ACK detector on sender stations."""
        for name in sender_names if sender_names is not None else list(self.macs):
            self.macs[name].ack_inspector = RssiSpoofDetector(
                name,
                self.report,
                threshold_db=threshold_db,
                min_samples=min_samples,
            )

    def enable_autorate(
        self,
        node_names: list[str] | None = None,
        rates: tuple[float, ...] | None = None,
        **arf_kwargs,
    ) -> None:
        """Install ARF rate adaptation on the given (default: all) stations.

        The default rate ladder follows the scenario's PHY (802.11b or
        802.11a).  Pair with ``error_model.set_rate_profile`` to make higher
        rates lossier, which is what makes adaptation meaningful.
        """
        from repro.mac.autorate import (
            ArfRateController,
            DOT11A_RATES,
            DOT11B_RATES,
        )

        if rates is None:
            rates = DOT11A_RATES if self.phy.ofdm else DOT11B_RATES
        for name in node_names if node_names is not None else list(self.macs):
            self.macs[name].rate_controller = ArfRateController(rates, **arf_kwargs)

    # ----------------------------------------------------------- detection ---

    def attach_streaming_detection(self, pipeline: "Any" = None) -> "Any":
        """Run streaming misbehavior detection live, *during* the simulation.

        Wraps ``medium.transmit`` with a
        :class:`~repro.core.detection.streaming.DetectionTap` feeding
        ``pipeline`` (default: the standard
        :func:`~repro.core.detection.streaming.default_pipeline` for this
        scenario's PHY).  The tap only observes — no RNG draws, no MAC
        interaction — so attaching it never changes simulation behavior.
        Returns the pipeline; its accumulated
        :class:`~repro.core.detection.report.DetectionReport` is
        ``pipeline.report``.
        """
        from repro.core.detection.streaming import DetectionTap, default_pipeline

        if self._detection_tap is not None:
            raise RuntimeError("streaming detection is already attached")
        if pipeline is None:
            pipeline = default_pipeline(self.phy)
        self.streaming_pipeline = pipeline
        self._detection_tap = DetectionTap(self.medium, pipeline)
        return pipeline

    # -------------------------------------------------------------- faults ---

    def install_faults(self, plan: "Any") -> "Any":
        """Install a :class:`repro.faults.FaultPlan` on this scenario.

        Must run after every node the plan references has been added.  The
        models draw exclusively from dedicated ``faults.*`` RNG streams, so
        two runs with equal (seed, plan) are bit-identical, and a run whose
        plan is empty is bit-identical to one that never called this.
        Returns the :class:`repro.faults.FaultInjector` (its ``counters()``
        summarise what the models did).
        """
        from repro.faults import FaultInjector

        if self.fault_injector is not None:
            raise RuntimeError("install_faults() may only be called once")
        self.fault_injector = FaultInjector(self, plan)
        return self.fault_injector

    # ---------------------------------------------------------------- run ----

    def warm_caches(self) -> None:
        """Precompute per-sender link geometry before the first frame flies.

        Purely a cache warm — the same tables are built lazily on first
        transmit otherwise, with identical contents (no RNG is involved), so
        running this changes wall time, never behavior.  The perf harness
        calls it so timed regions measure the event loop, not one-time
        O(nodes^2) topology setup.
        """
        medium = self.medium
        for radio in medium.radios:
            medium._reach_from(radio)
            hearers_from = getattr(medium, "_hearers_from", None)
            if hearers_from is not None:
                hearers_from(radio)

    def run(self, duration_s: float) -> None:
        """Advance the simulation by ``duration_s`` seconds.

        With telemetry attached, ends with the gauge sweep
        (:func:`repro.obs.sweep_scenario`): MacStats totals, engine counters
        and detection counts land in the registry with set semantics.
        """
        self.sim.run(until=self.sim.now + duration_s * US_PER_S)
        if self.obs is not None:
            sweep_scenario(self.obs, self)
