"""A node: container for a MAC, wired ports, routes, and transport agents."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.transport.packets import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.dcf import DcfMac
    from repro.net.wired import WiredLink


class Node:
    """One host or access point.

    Routing is static: ``add_wireless_route(dst, next_hop)`` sends packets for
    ``dst`` over the MAC addressed to ``next_hop``; ``add_wired_route`` sends
    them down a wired link.  A node with no route for a destination raises,
    which catches topology mistakes early.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.mac: "DcfMac | None" = None
        self._wireless_routes: dict[str, str] = {}
        self._wired_routes: dict[str, "WiredLink"] = {}
        self._agents: dict[str, Any] = {}
        self.forwarded = 0

    # ----------------------------------------------------------- wiring -----

    def attach_mac(self, mac: "DcfMac") -> None:
        """Install a wireless MAC and route its deliveries to this node."""
        self.mac = mac
        mac.on_deliver = self._receive

    def bind_agent(self, flow_id: str, agent: Any) -> None:
        """Register the transport agent that receives ``flow_id`` packets."""
        if flow_id in self._agents:
            raise ValueError(f"{self.name}: flow {flow_id!r} already bound")
        self._agents[flow_id] = agent

    def add_wireless_route(self, dst: str, next_hop: str | None = None) -> None:
        """Route packets for ``dst`` over the MAC (addressed to ``next_hop``)."""
        self._wireless_routes[dst] = next_hop if next_hop is not None else dst

    def add_wired_route(self, dst: str, link: "WiredLink") -> None:
        """Route packets for ``dst`` down a wired link."""
        self._wired_routes[dst] = link

    # --------------------------------------------------------- forwarding ---

    def send_packet(self, packet: Packet) -> None:
        """Send or forward ``packet`` toward ``packet.dst``."""
        if packet.dst == self.name:
            self._deliver_local(packet)
            return
        link = self._wired_routes.get(packet.dst)
        if link is not None:
            link.transmit(packet, self)
            return
        next_hop = self._wireless_routes.get(packet.dst)
        if next_hop is None and packet.dst in self._agents:
            self._deliver_local(packet)
            return
        if next_hop is None:
            raise LookupError(f"{self.name}: no route to {packet.dst}")
        if self.mac is None:
            raise RuntimeError(f"{self.name}: wireless route but no MAC attached")
        self.mac.send(packet, next_hop, packet.size_bytes)

    def _receive(self, packet: Packet, mac_src: str) -> None:
        """A MAC or wired link handed us a packet."""
        if packet.dst != self.name:
            self.forwarded += 1
            self.send_packet(packet)
            return
        self._deliver_local(packet)

    def _deliver_local(self, packet: Packet) -> None:
        agent = self._agents.get(packet.flow_id)
        if agent is not None:
            agent.receive(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name})"
