"""Figure 22: spoofed-ACK detector false positives/negatives vs threshold.

Sweeping the RSSI deviation threshold over the synthetic campaign shows the
paper's conclusion: ~1 dB balances both error rates at low values.
"""

from __future__ import annotations

import random

from repro.experiments.common import RunSettings, experiment_api
from repro.stats import ExperimentResult
from repro.testbed.rssi import RssiCampaign, roc_curve

THRESHOLDS = (0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    campaign = RssiCampaign(random.Random(11), n_nodes=8 if settings.is_quick else 16)
    campaign.run(packets_per_sender=50 if settings.is_quick else 200)
    thresholds = THRESHOLDS[::2] if settings.is_quick else THRESHOLDS
    result = ExperimentResult(
        name="Figure 22",
        description=(
            "False positive and false negative rates of RSSI-based spoofed-"
            "ACK detection vs the deviation threshold (dB)"
        ),
        columns=["threshold_db", "false_positive", "false_negative"],
    )
    for threshold, fp, fn in roc_curve(campaign, list(thresholds)):
        result.add_row(threshold_db=threshold, false_positive=fp, false_negative=fn)
    return result
