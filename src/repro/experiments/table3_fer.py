"""Table III: BER to frame-error-rate mapping for the frames in play.

Analytic, using the error-model semantics calibrated against the paper (the
rate applies per byte over the frame plus a 24-byte PLCP equivalent; see
:mod:`repro.phy.error`).  Frame sizes: MAC ACK/CTS 14 B, RTS 20 B, a TCP ACK
packet 40 B + 28 B MAC overhead, a TCP data packet 1024 + 40 + 28 B.
"""

from __future__ import annotations

from repro.phy.error import frame_error_rate
from repro.experiments.common import RunSettings, experiment_api
from repro.stats import ExperimentResult

BERS = (1e-5, 2e-4, 3.2e-4, 4.4e-4, 8e-4)

ACK_CTS_BYTES = 14
RTS_BYTES = 20
TCP_ACK_BYTES = 40 + 28
TCP_DATA_BYTES = 1024 + 40 + 28


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    result = ExperimentResult(
        name="Table III",
        description="BER and the corresponding FER per frame type",
        columns=["ber", "fer_ack_cts", "fer_rts", "fer_tcp_ack", "fer_tcp_data"],
    )
    for ber in BERS:
        result.add_row(
            ber=ber,
            fer_ack_cts=frame_error_rate(ber, ACK_CTS_BYTES),
            fer_rts=frame_error_rate(ber, RTS_BYTES),
            fer_tcp_ack=frame_error_rate(ber, TCP_ACK_BYTES),
            fer_tcp_data=frame_error_rate(ber, TCP_DATA_BYTES),
        )
    return result
