"""Table IX (testbed): fake-ACK emulation under UDP.

Two senders over lossy links; the greedy receiver's sender has
CW_max clamped to CW_min, so losses never escalate its backoff.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, seed_job
from repro.stats import ExperimentResult, median_over_seeds
from repro.testbed.emulation import table9_fake_ack_emulation_udp


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    result = ExperimentResult(
        name="Table IX",
        description=(
            "UDP goodput (Mbps), testbed emulation of fake ACKs: CW_max "
            "clamped to CW_min for R1's sender (802.11a, no RTS/CTS, lossy "
            "links); R1 plays the greedy receiver"
        ),
        columns=["case", "goodput_GR", "goodput_NR"],
    )
    for case, greedy in (("no GR", False), ("1 GR", True)):
        med = median_over_seeds(
            seed_job(
                table9_fake_ack_emulation_udp, greedy=greedy, duration_s=settings.duration_s
            ),
            settings.seeds,
        )
        result.add_row(case=case, goodput_GR=med["R1"], goodput_NR=med["R2"])
    return result
