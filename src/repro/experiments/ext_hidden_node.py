"""Extension: the hidden-terminal triangle under the SINR channel model.

The paper's topologies keep every station inside carrier-sense range, so the
pairwise reach-list medium suffices.  The classic failure mode of 802.11
hotspots is the *hidden terminal*: two stations that cannot sense each other
uplink to one AP, their data frames overlap at the AP, and without RTS/CTS
goodput collapses.  This experiment runs that triangle on the ``sinr``
channel model — where corruption is decided by the aggregate
signal-to-interference-plus-noise margin rather than a pairwise power ratio
— and on the ``pairwise`` model for comparison, with RTS/CTS off and on.

Expected shape (the acceptance check for the channel-model seam): with
RTS/CTS off, both senders transmit blind and total goodput collapses; with
RTS/CTS on, the AP's CTS sets the hidden sender's NAV and total goodput
recovers severalfold.  The PHY is 802.11a, whose 6 Mbps control rate keeps
the handshake cheap enough for the recovery to be the classic ~3-4x.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, seed_job
from repro.experiments.common import run_hidden_node
from repro.stats import ExperimentResult, median_over_seeds

#: Channel models compared; "sinr" is the one this topology exists for.
CHANNEL_MODELS = ("sinr", "pairwise")


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Per-sender and total goodput, RTS/CTS off vs on, per channel model."""
    result = ExperimentResult(
        name="Extension: hidden-terminal triangle (SINR channel model)",
        description=(
            "Two saturated UDP uplinks from mutually-hidden senders to one "
            "AP (55 m / 99 m ranges, 802.11a).  Without RTS/CTS the frames "
            "overlap at the AP and the SINR margin corrupts both; RTS/CTS "
            "recovers the channel.  The pairwise rows are the reach-list "
            "medium's answer to the same topology."
        ),
        columns=[
            "channel",
            "rts",
            "goodput_S0",
            "goodput_S1",
            "goodput_total",
            "cw_S0",
            "cw_S1",
        ],
    )
    for channel in CHANNEL_MODELS:
        for rts in (False, True):
            med = median_over_seeds(
                seed_job(
                    run_hidden_node,
                    duration_s=settings.duration_s,
                    rts=rts,
                    channel=channel,
                ),
                settings.seeds,
            )
            result.add_row(
                channel=channel,
                rts=float(rts),
                goodput_S0=med["goodput_S0"],
                goodput_S1=med["goodput_S1"],
                goodput_total=med["goodput_total"],
                cw_S0=med["cw_S0"],
                cw_S1=med["cw_S1"],
            )
    return result
