"""Shared scenario runners behind the per-figure experiment modules.

Every runner builds a :class:`repro.net.Scenario`, drives it for a fixed
duration, and returns a flat ``{metric: value}`` dict so that
:func:`repro.stats.median_over_seeds` can combine repetitions the way the
paper does (median of 5 runs).
"""

from __future__ import annotations

import dataclasses
import functools
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.core.greedy import GreedyConfig
from repro.mac.frames import FrameKind
from repro.net.scenario import Scenario
from repro.phy.channel import ChannelConfig
from repro.phy.error import set_ber_all_pairs
from repro.phy.params import PhyParams, dot11b
from repro.phy.profiles import PHY_PROFILES, profile_names, resolve_phy
from repro.runtime import seed_job
from repro.stats.summary import ExperimentResult

__all__ = [
    "RunSettings",
    "resolve_settings",
    "experiment_api",
    "PHY_PROFILES",
    "profile_names",
    "resolve_phy",
    "seed_job",
    "run_nav_pairs",
    "run_nav_shared_sender",
    "run_spoof_tcp_pairs",
    "run_spoof_udp_shared_ap",
    "run_remote_tcp",
    "run_fake_hidden_terminals",
    "run_fake_inherent_loss",
    "run_grc_nav_distance",
    "run_hidden_node",
]

US_PER_S = 1_000_000.0

#: Default run length and seeds: the paper uses 5 repetitions per scenario.
FULL_DURATION_S = 5.0
FULL_SEEDS = (1, 2, 3, 4, 5)
QUICK_DURATION_S = 1.5
QUICK_SEEDS = (1, 2)


@dataclass(frozen=True)
class RunSettings:
    """Run length / repetition / telemetry settings shared by all experiments.

    The single argument of every experiment's ``run(settings)`` entrypoint.
    ``mode`` selects the full paper-scale sweep ("full") or the shrunk CI
    variant ("quick"); experiments branch on :attr:`is_quick` instead of a
    loose ``quick`` bool.  ``telemetry=True`` runs the experiment inside an
    ambient :func:`repro.obs.capture` and attaches the aggregated
    :class:`~repro.obs.TelemetrySnapshot` to the returned
    :class:`~repro.stats.summary.ExperimentResult`.
    """

    duration_s: float = FULL_DURATION_S
    seeds: Sequence[int] = FULL_SEEDS
    mode: str = "full"
    telemetry: bool = False
    #: Simulation backend name ("scalar", "vectorized") or None to inherit
    #: the ambient selection (:func:`repro.sim.backend.use_backend`).  Every
    #: scenario the experiment builds picks it up — runner signatures stay
    #: unchanged because selection is ambient.
    backend: str | None = None
    #: Run the streaming misbehavior detectors live during every simulation
    #: the experiment builds (:func:`repro.core.detection.streaming
    #: .live_detection`); the session roll-up lands on ``result.streaming``.
    #: Off by default: the tap only observes, but attaching it costs one
    #: record construction per transmission.
    streaming_detection: bool = False
    #: Channel model name ("pairwise", "sinr") or None to inherit the ambient
    #: selection (:func:`repro.phy.channel.use_channel`).  Ambient like the
    #: backend: every scenario the experiment builds picks it up, and runners
    #: that pin topology knobs via ``ChannelConfig(ranges=...)`` (model left
    #: None) still honor it.
    channel: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("full", "quick"):
            raise ValueError(f"mode must be 'full' or 'quick', got {self.mode!r}")
        if self.backend is not None:
            from repro.sim.backend import resolve_backend

            resolve_backend(self.backend)  # fail fast on unknown/unavailable
        if self.channel is not None:
            from repro.phy.channel import CHANNEL_MODELS, channel_names

            if self.channel not in CHANNEL_MODELS:
                raise KeyError(
                    f"unknown channel model {self.channel!r}; "
                    f"known models: {channel_names()}"
                )
        object.__setattr__(self, "seeds", tuple(self.seeds))

    @property
    def is_quick(self) -> bool:
        """True for the shrunk CI variant (fewer seeds, shorter runs)."""
        return self.mode == "quick"

    def replace(self, **overrides: Any) -> "RunSettings":
        """A copy with the given fields overridden (frozen-safe)."""
        return dataclasses.replace(self, **overrides)

    @staticmethod
    def quick() -> "RunSettings":
        return RunSettings(QUICK_DURATION_S, QUICK_SEEDS, mode="quick")

    @staticmethod
    def for_mode(quick: bool) -> "RunSettings":
        return RunSettings.quick() if quick else RunSettings()


#: One-shot latch for the ``run(quick=...)`` deprecation warning, so a CI run
#: over 30 experiments prints it once rather than 30 times.
_QUICK_SHIM_WARNED = False


def resolve_settings(
    settings: "RunSettings | bool | None" = None, quick: "bool | None" = None
) -> RunSettings:
    """Normalize the arguments of the public ``run()`` entrypoints.

    Accepts the new form (``run()`` / ``run(settings)``) and the deprecated
    one (``run(quick=True)``, or legacy positional ``run(True)`` — a bool in
    the settings slot is treated as the old ``quick`` flag).  Passing both a
    real ``RunSettings`` and ``quick`` is a contradiction and raises.
    """
    global _QUICK_SHIM_WARNED
    if isinstance(settings, bool):  # legacy positional run(True)
        if quick is not None:
            raise TypeError("pass either settings or quick, not both")
        settings, quick = None, settings
    if quick is not None:
        if settings is not None:
            raise TypeError("pass either settings or quick, not both")
        if not _QUICK_SHIM_WARNED:
            _QUICK_SHIM_WARNED = True
            warnings.warn(
                "run(quick=...) is deprecated; pass run(RunSettings(...)) "
                "or run(RunSettings.for_mode(quick))",
                DeprecationWarning,
                stacklevel=3,
            )
        return RunSettings.for_mode(quick)
    if settings is None:
        return RunSettings()
    return settings


def experiment_api(
    fn: "Callable[[RunSettings], ExperimentResult]",
) -> "Callable[..., ExperimentResult]":
    """Wrap a ``fn(settings) -> ExperimentResult`` experiment body as the
    public ``run()`` entrypoint.

    The wrapper resolves the settings-vs-quick calling conventions via
    :func:`resolve_settings` and, when ``settings.telemetry`` is set, runs the
    body inside an ambient :func:`repro.obs.capture` so every
    :class:`~repro.net.scenario.Scenario` the experiment builds reports into
    one registry; the snapshot lands on ``result.telemetry``.  The unwrapped
    body stays reachable as ``run.__wrapped__``.
    """

    def _telemetry_body(resolved: RunSettings) -> ExperimentResult:
        if not resolved.telemetry:
            return fn(resolved)
        from repro.obs import MetricsRegistry, capture

        registry = MetricsRegistry()
        with capture(registry):
            result = fn(resolved)
        result.telemetry = registry.snapshot(experiment=fn.__module__.rsplit(".", 1)[-1])
        return result

    def _body(resolved: RunSettings) -> ExperimentResult:
        if not resolved.streaming_detection:
            return _telemetry_body(resolved)
        from repro.core.detection.streaming import live_detection

        with live_detection() as session:
            result = _telemetry_body(resolved)
        result.streaming = session.summary()
        return result

    def _ambient_body(resolved: RunSettings) -> ExperimentResult:
        if resolved.channel is None:
            return _body(resolved)
        from repro.phy.channel import use_channel

        with use_channel(resolved.channel):
            return _body(resolved)

    @functools.wraps(fn)
    def run(
        settings: "RunSettings | bool | None" = None, quick: "bool | None" = None
    ) -> ExperimentResult:
        resolved = resolve_settings(settings, quick)
        if resolved.backend is None:
            return _ambient_body(resolved)
        from repro.sim.backend import use_backend

        with use_backend(resolved.backend):
            return _ambient_body(resolved)

    return run


# ---------------------------------------------------------------- NAV runs --


def run_nav_pairs(
    seed: int,
    duration_s: float,
    transport: str = "udp",
    phy: PhyParams | str | None = None,
    nav_inflation_us: float = 0.0,
    inflate_frames: Iterable[FrameKind] = (FrameKind.CTS,),
    greedy_percentage: float = 100.0,
    n_pairs: int = 2,
    n_greedy: int = 1,
) -> dict[str, float]:
    """``n_pairs`` sender->receiver pairs, the last ``n_greedy`` receivers
    greedy (NAV inflation).  Returns per-receiver goodput plus sender CW and
    RTS counters (Figures 1, 2, 4-9 and Table II all read from this)."""
    s = Scenario(phy=resolve_phy(phy) or dot11b(), seed=seed)
    frames = frozenset(inflate_frames)
    flows = []
    for i in range(n_pairs):
        s.add_wireless_node(f"S{i}")
    for i in range(n_pairs):
        greedy = None
        if i >= n_pairs - n_greedy and nav_inflation_us > 0:
            greedy = GreedyConfig.nav_inflator(
                nav_inflation_us, frames, greedy_percentage
            )
        s.add_wireless_node(f"R{i}", greedy=greedy)
    out: dict[str, float] = {}
    for i in range(n_pairs):
        if transport == "udp":
            src, sink = s.udp_flow(f"S{i}", f"R{i}")
            src.start()
            flows.append(("udp", sink, None))
        else:
            snd, rcv = s.tcp_flow(f"S{i}", f"R{i}")
            snd.start()
            flows.append(("tcp", rcv, snd))
    s.run(duration_s)
    us = duration_s * US_PER_S
    for i, (kind, rx, snd) in enumerate(flows):
        out[f"goodput_R{i}"] = rx.goodput_mbps(us)
        stats = s.macs[f"S{i}"].stats
        out[f"cw_S{i}"] = stats.average_cw
        out[f"rts_S{i}"] = float(stats.tx_rts)
        if kind == "tcp":
            out[f"cwnd_S{i}"] = snd.cwnd_stats.average()
    return out


def run_nav_shared_sender(
    seed: int,
    duration_s: float,
    transport: str = "udp",
    phy: PhyParams | str | None = None,
    nav_inflation_us: float = 0.0,
    inflate_frames: Iterable[FrameKind] = (FrameKind.CTS,),
    n_receivers: int = 2,
    greedy_index: int | None = None,
) -> dict[str, float]:
    """One sender, ``n_receivers`` receivers, one of them inflating NAV
    (Figure 10 and the 1-sender column of Table II)."""
    s = Scenario(phy=resolve_phy(phy) or dot11b(), seed=seed)
    s.add_wireless_node("S")
    if greedy_index is None:
        greedy_index = n_receivers - 1
    frames = frozenset(inflate_frames)
    flows = []
    for i in range(n_receivers):
        greedy = None
        if i == greedy_index and nav_inflation_us > 0:
            greedy = GreedyConfig.nav_inflator(nav_inflation_us, frames)
        s.add_wireless_node(f"R{i}", greedy=greedy)
    for i in range(n_receivers):
        if transport == "udp":
            src, sink = s.udp_flow("S", f"R{i}")
            src.start()
            flows.append((sink, None))
        else:
            snd, rcv = s.tcp_flow("S", f"R{i}")
            snd.start()
            flows.append((rcv, snd))
    s.run(duration_s)
    us = duration_s * US_PER_S
    out: dict[str, float] = {}
    for i, (rx, snd) in enumerate(flows):
        out[f"goodput_R{i}"] = rx.goodput_mbps(us)
        if snd is not None:
            out[f"cwnd_R{i}"] = snd.cwnd_stats.average()
    return out


# -------------------------------------------------------------- spoof runs --


def _spoof_positions(n_pairs: int) -> dict[str, tuple[float, float]]:
    """Geometry for ACK-spoofing runs.

    Senders cluster near the origin, normal receivers sit on a 10 m ring and
    the greedy receiver at 30 m: the power ratio (30/10)^4 = 81 exceeds the
    10x capture threshold, so a genuine ACK always captures the spoofed one
    at the sender (the no-collision case the paper's evaluation isolates).
    """
    positions = {}
    for i in range(n_pairs):
        positions[f"S{i}"] = (0.5 * i, 0.0)
        positions[f"R{i}"] = (10.0, 2.0 * i)  # normal receivers: 10 m ring
    positions[f"R{n_pairs - 1}"] = (30.0, 0.0)  # the greedy one sits farther
    return positions


def run_spoof_tcp_pairs(
    seed: int,
    duration_s: float,
    ber: float,
    phy: PhyParams | str | None = None,
    spoof_percentage: float = 100.0,
    n_pairs: int = 2,
    n_greedy: int = 1,
    shared_ap: bool = False,
    grc: bool = False,
    grc_threshold_db: float = 1.0,
) -> dict[str, float]:
    """TCP flows with the last ``n_greedy`` receivers spoofing MAC ACKs on
    behalf of all normal receivers (Figures 11-14 and 24)."""
    s = Scenario(phy=resolve_phy(phy) or dot11b(), seed=seed)
    positions = _spoof_positions(n_pairs)
    sender_names = ["S0"] if shared_ap else [f"S{i}" for i in range(n_pairs)]
    for name in sender_names:
        s.add_wireless_node(name, position=positions.get(name, (0.0, 0.0)))
    victims = frozenset(
        f"R{i}" for i in range(n_pairs - n_greedy)
    )
    for i in range(n_pairs):
        greedy = None
        if i >= n_pairs - n_greedy and spoof_percentage > 0:
            # Mutual spoofers (Figure 13) also spoof for each other.
            others = frozenset(f"R{j}" for j in range(n_pairs) if j != i)
            greedy = GreedyConfig.ack_spoofer(
                spoof_percentage, victims=others if n_greedy > 1 else victims
            )
        s.add_wireless_node(f"R{i}", position=positions[f"R{i}"], greedy=greedy)
    if ber > 0:
        set_ber_all_pairs(s.error_model, list(s.nodes), ber)
    if grc:
        s.enable_spoof_detection(sender_names, threshold_db=grc_threshold_db)
    flows = []
    for i in range(n_pairs):
        sender = "S0" if shared_ap else f"S{i}"
        snd, rcv = s.tcp_flow(sender, f"R{i}")
        snd.start()
        flows.append((rcv, snd))
    s.run(duration_s)
    us = duration_s * US_PER_S
    out: dict[str, float] = {}
    for i, (rcv, _snd) in enumerate(flows):
        out[f"goodput_R{i}"] = rcv.goodput_mbps(us)
    out["detections"] = float(s.report.count("rssi-spoof"))
    return out


def run_spoof_udp_shared_ap(
    seed: int,
    duration_s: float,
    ber: float,
    phy: PhyParams | str | None = None,
    spoof_percentage: float = 100.0,
    greedy: bool = True,
) -> dict[str, float]:
    """Figure 17: one AP sends CBR/UDP to a normal and a greedy receiver; the
    greedy one spoofs ACKs for the normal one, stealing service time."""
    s = Scenario(phy=resolve_phy(phy) or dot11b(), seed=seed)
    s.add_wireless_node("AP", position=(0.0, 0.0))
    s.add_wireless_node("NR", position=(10.0, 0.0))
    config = (
        GreedyConfig.ack_spoofer(spoof_percentage, victims={"NR"}) if greedy else None
    )
    s.add_wireless_node("GR", position=(30.0, 0.0), greedy=config)
    if ber > 0:
        set_ber_all_pairs(s.error_model, ["AP", "NR", "GR"], ber)
    # Split the AP's saturating rate between the two flows so the shared MAC
    # queue stays contended but not pathologically overloaded.
    rate = s.saturating_rate_bps() / 2
    src1, sink1 = s.udp_flow("AP", "NR", rate_bps=rate)
    src2, sink2 = s.udp_flow("AP", "GR", rate_bps=rate)
    src1.start()
    src2.start()
    s.run(duration_s)
    us = duration_s * US_PER_S
    return {
        "goodput_NR": sink1.goodput_mbps(us),
        "goodput_GR": sink2.goodput_mbps(us),
    }


def run_remote_tcp(
    seed: int,
    duration_s: float,
    wired_delay_us: float,
    ber: float = 2e-5,
    phy: PhyParams | str | None = None,
    spoof_percentage: float = 0.0,
    grc: bool = False,
    window: int = 100,
) -> dict[str, float]:
    """Figures 15-16: two remote TCP senders behind a wired link to one AP,
    two wireless receivers, the greedy one spoofing ACKs for the other."""
    s = Scenario(phy=resolve_phy(phy) or dot11b(), seed=seed)
    # Queue deeper than the sum of both TCP windows: the paper studies
    # wireless losses, not router buffer overflow, and a shallow AP queue
    # phase-locks the two synchronized flows into asymmetric drop patterns.
    s.add_wireless_node("AP", position=(0.0, 0.0), queue_limit=2 * window + 50)
    s.add_wireless_node("NR", position=(10.0, 0.0))
    config = (
        GreedyConfig.ack_spoofer(spoof_percentage, victims={"NR"})
        if spoof_percentage > 0
        else None
    )
    s.add_wireless_node("GR", position=(30.0, 0.0), greedy=config)
    if ber > 0:
        set_ber_all_pairs(s.error_model, ["AP", "NR", "GR"], ber)
    if grc:
        s.enable_spoof_detection(["AP"])
    remote1 = s.add_wired_node("W1")
    remote2 = s.add_wired_node("W2")
    link1 = s.wired_link("W1", "AP", wired_delay_us)
    link2 = s.wired_link("W2", "AP", wired_delay_us)
    s.route_remote_flow("W1", "AP", "NR", link1)
    s.route_remote_flow("W2", "AP", "GR", link2)
    # A window beyond the path's bandwidth-delay product keeps the wireless
    # hop the bottleneck even at 400 ms wireline latency, as in the paper.
    snd1, rcv1 = s.tcp_flow("W1", "NR", auto_route=False, window=window)
    snd2, rcv2 = s.tcp_flow("W2", "GR", auto_route=False, window=window)
    snd1.start()
    snd2.start()
    s.run(duration_s)
    us = duration_s * US_PER_S
    return {
        "goodput_NR": rcv1.goodput_mbps(us),
        "goodput_GR": rcv2.goodput_mbps(us),
    }


# ---------------------------------------------------------- fake-ACK runs --


def run_fake_hidden_terminals(
    seed: int,
    duration_s: float,
    fake_percentages: Sequence[float] = (0.0, 100.0),
    phy: PhyParams | str | None = None,
) -> dict[str, float]:
    """Figure 18 / Table IV: two hidden senders, receivers in between; each
    receiver fake-ACKs with its own greedy percentage (0 = honest)."""
    s = Scenario(
        phy=resolve_phy(phy) or dot11b(),
        seed=seed,
        rts_enabled=False,
        channel=ChannelConfig(ranges=(55.0, 99.0)),
    )
    s.add_wireless_node("S0", position=(0.0, 0.0))
    s.add_wireless_node("S1", position=(108.0, 0.0))
    for i, gp in enumerate(fake_percentages):
        greedy = GreedyConfig.ack_faker(gp) if gp > 0 else None
        s.add_wireless_node(f"R{i}", position=(54.0, 1.0 - 2.0 * i), greedy=greedy)
    sinks = []
    for i in range(len(fake_percentages)):
        src, sink = s.udp_flow(f"S{i}", f"R{i}")
        src.start()
        sinks.append(sink)
    s.run(duration_s)
    us = duration_s * US_PER_S
    out: dict[str, float] = {}
    for i, sink in enumerate(sinks):
        out[f"goodput_R{i}"] = sink.goodput_mbps(us)
        out[f"cw_S{i}"] = s.macs[f"S{i}"].stats.average_cw
    return out


def run_fake_inherent_loss(
    seed: int,
    duration_s: float,
    data_fer: float,
    greedy_flags: Sequence[bool],
    phy: PhyParams | str | None = None,
    ber: float | None = None,
) -> dict[str, float]:
    """Table V / Figure 19: per-pair APs in range, inherent medium losses,
    some receivers fake-ACKing.  ``data_fer`` sets a direct data frame error
    rate; pass ``ber`` instead for Figure 19's random-BER variant."""
    n = len(greedy_flags)
    s = Scenario(phy=resolve_phy(phy) or dot11b(), seed=seed, rts_enabled=False)
    for i in range(n):
        s.add_wireless_node(f"S{i}")
    for i, flag in enumerate(greedy_flags):
        greedy = GreedyConfig.ack_faker() if flag else None
        s.add_wireless_node(f"R{i}", greedy=greedy)
    for i in range(n):
        if ber is not None:
            s.error_model.set_ber(f"S{i}", f"R{i}", ber)
        else:
            s.error_model.set_data_fer(f"S{i}", f"R{i}", data_fer)
    sinks = []
    for i in range(n):
        src, sink = s.udp_flow(f"S{i}", f"R{i}")
        src.start()
        sinks.append(sink)
    s.run(duration_s)
    us = duration_s * US_PER_S
    out = {f"goodput_R{i}": sink.goodput_mbps(us) for i, sink in enumerate(sinks)}
    for i in range(n):
        out[f"cw_S{i}"] = s.macs[f"S{i}"].stats.average_cw
    return out


# -------------------------------------------------------- hidden-node run --


def run_hidden_node(
    seed: int,
    duration_s: float,
    rts: bool = False,
    channel: str | None = "sinr",
    phy: PhyParams | str | None = "dot11a",
    packet_size: int = 1024,
) -> dict[str, float]:
    """Classic hidden-terminal triangle: S0 and S1 flank one AP at 54 m each
    (108 m apart — outside the 99 m interference range, so they cannot sense
    each other), both uplinking saturated UDP.  Without RTS/CTS their data
    frames overlap at the AP and the SINR margin corrupts both; with RTS/CTS
    the AP's CTS sets the other sender's NAV and throughput recovers.

    ``channel`` selects the interference model by name ("sinr" by default —
    the scenario this model exists for; "pairwise" for comparison; None
    inherits the ambient selection).  Plain string so campaign job specs
    stay cache-addressable.  Defaults to 802.11a: its control frames fly at
    6 Mbps, so the RTS/CTS handshake is cheap and the recovery is the
    classic ~3-4x (802.11b's 1 Mbps control rate makes the handshake cost
    about what the collisions do).
    """
    s = Scenario(
        phy=resolve_phy(phy) or dot11b(),
        seed=seed,
        rts_enabled=rts,
        channel=ChannelConfig(model=channel, ranges=(55.0, 99.0)),
    )
    s.add_wireless_node("S0", position=(0.0, 0.0))
    s.add_wireless_node("AP", position=(54.0, 0.0))
    s.add_wireless_node("S1", position=(108.0, 0.0))
    sinks = []
    for name in ("S0", "S1"):
        src, sink = s.udp_flow(name, "AP", packet_size=packet_size)
        src.start()
        sinks.append(sink)
    s.run(duration_s)
    us = duration_s * US_PER_S
    out: dict[str, float] = {}
    total = 0.0
    for name, sink in zip(("S0", "S1"), sinks):
        goodput = sink.goodput_mbps(us)
        out[f"goodput_{name}"] = goodput
        total += goodput
        stats = s.macs[name].stats
        out[f"cw_{name}"] = stats.average_cw
        out[f"rts_{name}"] = float(stats.tx_rts)
    out["goodput_total"] = total
    return out


# ----------------------------------------------------------- GRC NAV runs --


def run_grc_nav_distance(
    seed: int,
    duration_s: float,
    pair_distance_m: float,
    transport: str = "udp",
    grc: bool = True,
    nav_inflation_us: float = 31_000.0,
    phy: PhyParams | str | None = None,
) -> dict[str, float]:
    """Figure 23: the greedy pair (S2, R2) sits ``pair_distance_m`` away from
    the normal pair (S1, R1); communication range 55 m, interference 99 m.

    Within the sender's range the validators clamp the CTS NAV exactly; in
    the 45-55 m band they fall back to the 1500-byte MTU bound."""
    s = Scenario(
        phy=resolve_phy(phy) or dot11b(),
        seed=seed,
        channel=ChannelConfig(ranges=(55.0, 99.0)),
    )
    d = pair_distance_m
    s.add_wireless_node("S1", position=(d, 0.0))
    s.add_wireless_node("R1", position=(d + 5.0, 0.0))
    s.add_wireless_node("S2", position=(0.0, 0.0))
    s.add_wireless_node(
        "R2",
        position=(5.0, 0.0),
        greedy=GreedyConfig.nav_inflator(nav_inflation_us, {FrameKind.CTS})
        if nav_inflation_us > 0
        else None,
    )
    if grc:
        s.enable_nav_validation(["S1", "R1"])
    results = []
    for src, dst in (("S1", "R1"), ("S2", "R2")):
        if transport == "udp":
            source, sink = s.udp_flow(src, dst)
            source.start()
            results.append(sink)
        else:
            snd, rcv = s.tcp_flow(src, dst)
            snd.start()
            results.append(rcv)
    s.run(duration_s)
    us = duration_s * US_PER_S
    return {
        "goodput_R1": results[0].goodput_mbps(us),
        "goodput_R2": results[1].goodput_mbps(us),
        "nav_detections": float(s.report.count("nav")),
    }
