"""Figure 21: CDF of |RSSI - median RSSI| over all links.

The paper's 16-node office campaign found ~95 % of samples within 1 dB of
the per-link median — the stability that makes RSSI-based spoofed-ACK
detection work.
"""

from __future__ import annotations

import random

from repro.experiments.common import RunSettings, experiment_api
from repro.stats import ExperimentResult
from repro.testbed.rssi import RssiCampaign

CDF_POINTS = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    campaign = RssiCampaign(random.Random(11), n_nodes=8 if settings.is_quick else 16)
    campaign.run(packets_per_sender=50 if settings.is_quick else 200)
    result = ExperimentResult(
        name="Figure 21",
        description="CDF of |RSSI - median RSSI| over all links (dB)",
        columns=["deviation_db", "cdf"],
    )
    for x, p in campaign.deviation_cdf(list(CDF_POINTS)):
        result.add_row(deviation_db=x, cdf=p)
    return result
