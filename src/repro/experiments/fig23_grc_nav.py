"""Figure 23: GRC detects and mitigates inflated CTS NAV over distance.

Topology per the paper: communication range 55 m, interference range 99 m;
the greedy pair sits a varying distance from the normal pair.  Close in, the
validators heard the soliciting RTS and clamp the CTS NAV exactly; in the
outer band they fall back to the 1500-byte MTU bound, leaving the greedy
receiver a bounded residual edge; out of range the inflation never mattered.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_grc_nav_distance, seed_job
from repro.stats import ExperimentResult, median_over_seeds

FULL_DISTANCES = (10, 20, 30, 40, 45, 50, 55, 60, 70, 90, 110)
QUICK_DISTANCES = (20, 50, 70)
NAV_US = 31_000.0


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    distances = QUICK_DISTANCES if settings.is_quick else FULL_DISTANCES
    result = ExperimentResult(
        name="Figure 23",
        description=(
            "Goodput of the normal pair (R1) and greedy pair (R2) vs the "
            "distance between pairs, under no GR / GR without GRC / GR with "
            "GRC; comm range 55 m, interference range 99 m"
        ),
        columns=[
            "transport",
            "distance_m",
            "case",
            "goodput_R1",
            "goodput_R2",
            "nav_detections",
        ],
    )
    transports = ("udp",) if settings.is_quick else ("udp", "tcp")
    cases = (
        ("no GR", 0.0, False),
        ("GR, no GRC", NAV_US, False),
        ("GR + GRC", NAV_US, True),
    )
    for transport in transports:
        for case, nav_us, grc in cases:
            for d in distances:
                med = median_over_seeds(
                    seed_job(
                        run_grc_nav_distance,
                        duration_s=settings.duration_s,
                        pair_distance_m=float(d),
                        transport=transport,
                        grc=grc,
                        nav_inflation_us=nav_us,
                    ),
                    settings.seeds,
                )
                result.add_row(
                    transport=transport,
                    distance_m=d,
                    case=case,
                    goodput_R1=med["goodput_R1"],
                    goodput_R2=med["goodput_R2"],
                    nav_detections=med["nav_detections"],
                )
    return result
