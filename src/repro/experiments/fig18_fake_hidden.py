"""Figure 18: fake ACKs under hidden-terminal collision losses.

Two APs out of each other's carrier-sense range saturate two receivers
placed between them.  Faking ACKs on collided frames keeps the greedy
sender's contention window at the minimum while the honest sender backs off;
when *both* receivers fake, exponential backoff is gone network-wide and
everyone collides more.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_fake_hidden_terminals, seed_job
from repro.stats import ExperimentResult, median_over_seeds

FULL_GP = (0.0, 25.0, 50.0, 75.0, 100.0)
QUICK_GP = (0.0, 100.0)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    gps = QUICK_GP if settings.is_quick else FULL_GP
    result = ExperimentResult(
        name="Figure 18",
        description=(
            "Goodput of two UDP flows with hidden-terminal senders while "
            "receivers fake ACKs on corrupted frames (802.11b, no RTS/CTS)"
        ),
        columns=["case", "greedy_percentage", "goodput_R1", "goodput_R2"],
    )
    for case in ("only R2 greedy", "both greedy"):
        for gp in gps:
            gp_r1 = gp if case == "both greedy" else 0.0
            med = median_over_seeds(
                seed_job(
                    run_fake_hidden_terminals,
                    duration_s=settings.duration_s,
                    fake_percentages=(gp_r1, gp),
                ),
                settings.seeds,
            )
            result.add_row(
                case=case,
                greedy_percentage=gp,
                goodput_R1=med["goodput_R0"],
                goodput_R2=med["goodput_R1"],
            )
    return result
