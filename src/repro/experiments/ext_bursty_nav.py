"""Extension: NAV inflation under bursty (Gilbert–Elliott) interference.

The paper evaluates NAV inflation on clean channels (Sections V–VI); its
loss-related results use a *memoryless* error model.  Real interference is
bursty: deep fades corrupt runs of consecutive frames, and every corrupted
reception makes honest stations defer EIFS — time a NAV-inflating greedy
receiver's sender inherits for free.  This experiment asks whether
burstiness amplifies the attack: we fix the *average* frame error rate and
compare a memoryless channel against a bursty one with the same average,
with and without NAV inflation.

The burst model is the :mod:`repro.faults` Gilbert–Elliott channel; its
draws come from a dedicated RNG stream, so the honest/clean rows here are
bit-identical to the pre-fault simulator.
"""

from __future__ import annotations

from repro.core.greedy import GreedyConfig
from repro.experiments.common import RunSettings, US_PER_S, experiment_api, seed_job
from repro.faults import FaultPlan, GilbertElliottConfig
from repro.net.scenario import Scenario
from repro.stats import ExperimentResult, median_over_seeds

#: Burst shape: mean fade length 1/p_bad_to_good = 5 frames, mean clean run
#: 1/p_good_to_bad = 45 frames -> stationary P[bad] = 0.1.
P_GOOD_TO_BAD = 1.0 / 45.0
P_BAD_TO_GOOD = 1.0 / 5.0
FER_BAD = 0.8
#: The matched memoryless channel: same average FER on every frame.
AVG_FER = FER_BAD * P_GOOD_TO_BAD / (P_GOOD_TO_BAD + P_BAD_TO_GOOD)


def run_bursty_nav(
    seed: int,
    duration_s: float,
    nav_inflation_us: float = 0.0,
    p_good_to_bad: float = 0.0,
    p_bad_to_good: float = 1.0,
    fer_good: float = 0.0,
    fer_bad: float = 0.0,
) -> dict[str, float]:
    """Two pairs, R1's receiver greedy (NAV inflation) when
    ``nav_inflation_us > 0``, over a Gilbert–Elliott channel.  All-zero FERs
    skip fault installation entirely (the clean baseline)."""
    s = Scenario(seed=seed)
    s.add_wireless_node("S0")
    s.add_wireless_node("S1")
    s.add_wireless_node("R0")
    greedy = None
    if nav_inflation_us > 0:
        greedy = GreedyConfig.nav_inflator(float(nav_inflation_us))
    s.add_wireless_node("R1", greedy=greedy)
    if fer_good > 0 or fer_bad > 0:
        s.install_faults(
            FaultPlan(
                channel=GilbertElliottConfig(
                    p_good_to_bad=p_good_to_bad,
                    p_bad_to_good=p_bad_to_good,
                    fer_good=fer_good,
                    fer_bad=fer_bad,
                )
            )
        )
    f0, k0 = s.udp_flow("S0", "R0")
    f1, k1 = s.udp_flow("S1", "R1")
    f0.start()
    f1.start()
    s.run(duration_s)
    us = duration_s * US_PER_S
    out = {
        "goodput_R0": k0.goodput_mbps(us),
        "goodput_R1": k1.goodput_mbps(us),
        "corrupted_frames": 0.0,
    }
    if s.fault_injector is not None:
        out["corrupted_frames"] = float(
            s.fault_injector.counters().get("channel_corrupted_frames", 0)
        )
    return out


#: The three channel regimes, all sharing the same *average* FER (except the
#: clean baseline): burstiness is the only variable.
CHANNEL_CASES = (
    ("clean", dict()),
    (
        "memoryless",
        dict(p_good_to_bad=0.0, p_bad_to_good=1.0, fer_good=AVG_FER, fer_bad=AVG_FER),
    ),
    (
        "bursty",
        dict(
            p_good_to_bad=P_GOOD_TO_BAD,
            p_bad_to_good=P_BAD_TO_GOOD,
            fer_good=0.0,
            fer_bad=FER_BAD,
        ),
    ),
)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Goodput of the honest (R0) and greedy (R1) pair per channel regime."""
    result = ExperimentResult(
        name="Extension: NAV inflation under bursty interference",
        description=(
            "Honest vs greedy goodput on a clean channel, a memoryless lossy "
            "channel and a Gilbert-Elliott bursty channel with the same "
            "average FER — does burstiness amplify NAV inflation?"
        ),
        columns=[
            "channel",
            "nav_inflation_us",
            "goodput_R0",
            "goodput_R1",
            "corrupted_frames",
        ],
    )
    for channel, kwargs in CHANNEL_CASES:
        for nav_inflation_us in (0.0, 31_000.0):
            med = median_over_seeds(
                seed_job(
                    run_bursty_nav,
                    duration_s=settings.duration_s,
                    nav_inflation_us=nav_inflation_us,
                    **kwargs,
                ),
                settings.seeds,
            )
            result.add_row(
                channel=channel,
                nav_inflation_us=nav_inflation_us,
                goodput_R0=med["goodput_R0"],
                goodput_R1=med["goodput_R1"],
                corrupted_frames=med["corrupted_frames"],
            )
    return result
