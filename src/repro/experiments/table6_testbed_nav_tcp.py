"""Table VI (testbed): NAV inflated on the RTS frames of TCP ACKs.

Simulated equivalent of the MadWifi experiment: 802.11a at 6 Mbps, RTS/CTS
on, the greedy receiver inflating its TCP-ACK RTS NAV to the 32767 us
protocol maximum.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, seed_job
from repro.stats import ExperimentResult, median_over_seeds
from repro.testbed.emulation import table6_nav_rts_tcp


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    result = ExperimentResult(
        name="Table VI",
        description=(
            "TCP goodput (Mbps) when GR inflates NAV of RTS for TCP ACKs to "
            "the maximum (802.11a testbed emulation); R1 is greedy"
        ),
        columns=["case", "goodput_R1", "goodput_R2"],
    )
    for case, greedy in (("no GR", False), ("1 GR", True)):
        med = median_over_seeds(
            seed_job(
                table6_nav_rts_tcp, greedy=greedy, duration_s=settings.duration_s
            ),
            settings.seeds,
        )
        result.add_row(case=case, goodput_R1=med["R1"], goodput_R2=med["R2"])
    return result
