"""Figure 1: goodput of two UDP flows while GR inflates its CTS NAV (802.11b).

The paper's headline result for misbehavior 1: a NAV increase of only 0.6 ms
lets the greedy receiver's flow starve the competing flow completely.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_nav_pairs, seed_job
from repro.mac.frames import FrameKind
from repro.stats import ExperimentResult, median_over_seeds

FULL_ALPHAS = (0, 1, 2, 3, 4, 6, 10, 31, 100, 310)  # NAV += alpha * 100 us
QUICK_ALPHAS = (0, 3, 6, 31, 310)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    alphas = QUICK_ALPHAS if settings.is_quick else FULL_ALPHAS
    result = ExperimentResult(
        name="Figure 1",
        description=(
            "Goodput of two UDP flows NS-NR and GS-GR, where GR inflates CTS "
            "NAV by alpha*100 us (802.11b)"
        ),
        columns=["alpha", "nav_inflation_ms", "goodput_NR", "goodput_GR"],
    )
    for alpha in alphas:
        med = median_over_seeds(
            seed_job(
                run_nav_pairs,
                duration_s=settings.duration_s,
                transport="udp",
                nav_inflation_us=alpha * 100.0,
                inflate_frames=(FrameKind.CTS,),
            ),
            settings.seeds,
        )
        result.add_row(
            alpha=alpha,
            nav_inflation_ms=alpha * 0.1,
            goodput_NR=med["goodput_R0"],
            goodput_GR=med["goodput_R1"],
        )
    return result
