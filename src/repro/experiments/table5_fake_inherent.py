"""Table V: fake ACKs under inherent (non-collision) wireless losses.

With losses that backoff cannot avoid, exponential backoff only wastes
airtime: faking ACKs *improves* goodput — for one greedy receiver massively
at its victim's expense, and for two greedy receivers modestly for both
(the paper's 2-12 % "useful surviving technique" observation).
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_fake_inherent_loss, seed_job
from repro.stats import ExperimentResult, median_over_seeds

FULL_FERS = (0.2, 0.5, 0.8)
QUICK_FERS = (0.5,)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    fers = QUICK_FERS if settings.is_quick else FULL_FERS
    result = ExperimentResult(
        name="Table V",
        description=(
            "Goodput (Mbps) of two UDP flows under inherent wireless losses "
            "and 0/1/2 fake-ACK receivers (802.11b); R2 is the single GR"
        ),
        columns=["data_fer", "case", "goodput_R1", "goodput_R2"],
    )
    for fer in fers:
        for case, flags in (
            ("no GR", (False, False)),
            ("1 GR", (False, True)),
            ("2 GRs", (True, True)),
        ):
            med = median_over_seeds(
                seed_job(
                    run_fake_inherent_loss,
                    duration_s=settings.duration_s,
                    data_fer=fer,
                    greedy_flags=flags,
                ),
                settings.seeds,
            )
            result.add_row(
                data_fer=fer,
                case=case,
                goodput_R1=med["goodput_R0"],
                goodput_R2=med["goodput_R1"],
            )
    return result
