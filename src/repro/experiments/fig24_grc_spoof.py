"""Figure 24: GRC detects and recovers from ACK spoofing across loss rates.

With GRC (RSSI-vetted ACKs; provably-safe ones ignored so the MAC
retransmits), both flows track the no-greedy-receiver goodput curves.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_spoof_tcp_pairs, seed_job
from repro.stats import ExperimentResult, median_over_seeds

FULL_BERS = (0.0, 1e-4, 2e-4, 4.4e-4, 8e-4, 14e-4)
QUICK_BERS = (2e-4, 8e-4)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    bers = QUICK_BERS if settings.is_quick else FULL_BERS
    result = ExperimentResult(
        name="Figure 24",
        description=(
            "Goodput of two TCP flows vs loss rate under no GR / GR without "
            "GRC / GR with GRC (802.11b); R1 spoofs for R0"
        ),
        columns=["ber", "case", "goodput_NR", "goodput_GR", "detections"],
    )
    cases = (
        ("no GR", 0.0, False),
        ("GR, no GRC", 100.0, False),
        ("GR + GRC", 100.0, True),
    )
    for ber in bers:
        for case, gp, grc in cases:
            med = median_over_seeds(
                seed_job(
                    run_spoof_tcp_pairs,
                    duration_s=settings.duration_s,
                    ber=ber,
                    spoof_percentage=gp,
                    grc=grc,
                ),
                settings.seeds,
            )
            result.add_row(
                ber=ber,
                case=case,
                goodput_NR=med["goodput_R0"],
                goodput_GR=med["goodput_R1"],
                detections=med["detections"],
            )
    return result
