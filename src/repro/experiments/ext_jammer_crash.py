"""Extension: hotspot goodput under periodic jamming and station crashes.

Two beyond-paper impairments the greedy-receiver results implicitly assume
away: external interference that everyone must defer to, and stations that
die (and come back) mid-run.  This experiment measures both with the
:mod:`repro.faults` models:

* a periodic jammer whose duty cycle sweeps from silence to a quarter of
  the airtime — every burst freezes honest backoff and triggers EIFS
  deferral, shrinking the pie the DCF shares;
* a crash/reboot of one sender mid-run — its queue is lost, its flow stops
  cold, and the interesting question is whether the *other* pair picks up
  the freed airtime (it should: DCF has no memory of the crashed
  contender).

Everything is seed-deterministic: jam timing and the crash schedule are
pure functions of the plan, and the jammer's jitter draws come from the
dedicated ``faults.jammer`` stream.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, US_PER_S, experiment_api, seed_job
from repro.faults import CrashConfig, FaultPlan, JammerConfig
from repro.net.scenario import Scenario
from repro.stats import ExperimentResult, median_over_seeds

#: Jam burst cadence; the duty cycle scales the burst length within it.
JAM_PERIOD_US = 20_000.0


def run_jammer_crash(
    seed: int,
    duration_s: float,
    duty_pct: float = 0.0,
    crash: bool = False,
    jitter_us: float = 1_000.0,
) -> dict[str, float]:
    """Two UDP pairs; a jammer at ``duty_pct``% airtime; optionally S0
    crashes at 40% of the run and reboots 20% later."""
    s = Scenario(seed=seed, rts_enabled=False)
    s.add_wireless_node("S0")
    s.add_wireless_node("S1")
    s.add_wireless_node("R0")
    s.add_wireless_node("R1")
    jammer = None
    if duty_pct > 0:
        jammer = JammerConfig(
            period_us=JAM_PERIOD_US,
            burst_us=JAM_PERIOD_US * duty_pct / 100.0,
            jitter_us=jitter_us,
        )
    crashes = ()
    if crash:
        crashes = (
            CrashConfig("S0", at_s=duration_s * 0.4, reboot_after_s=duration_s * 0.2),
        )
    plan = FaultPlan(jammer=jammer, crashes=crashes)
    if not plan.empty:
        s.install_faults(plan)
    f0, k0 = s.udp_flow("S0", "R0")
    f1, k1 = s.udp_flow("S1", "R1")
    f0.start()
    f1.start()
    s.run(duration_s)
    us = duration_s * US_PER_S
    stats = s.macs["S0"].stats
    out = {
        "goodput_R0": k0.goodput_mbps(us),
        "goodput_R1": k1.goodput_mbps(us),
        "jam_bursts": 0.0,
        "s0_crash_dropped": float(stats.crash_dropped_msdus),
    }
    if s.fault_injector is not None:
        out["jam_bursts"] = float(s.fault_injector.counters().get("jammer_bursts", 0))
    return out


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Goodput per pair across jammer duty cycles, with and without a crash."""
    result = ExperimentResult(
        name="Extension: jamming and station crashes",
        description=(
            "Per-pair goodput under a periodic jammer (duty-cycle sweep) and "
            "a mid-run crash/reboot of one sender: how much airtime the "
            "surviving pair reclaims, and what jamming costs everyone"
        ),
        columns=[
            "duty_pct",
            "crash",
            "goodput_R0",
            "goodput_R1",
            "jam_bursts",
            "s0_crash_dropped",
        ],
    )
    duties = (0.0, 10.0, 25.0) if not settings.is_quick else (0.0, 25.0)
    for duty_pct in duties:
        for crash in (False, True):
            med = median_over_seeds(
                seed_job(
                    run_jammer_crash,
                    duration_s=settings.duration_s,
                    duty_pct=duty_pct,
                    crash=crash,
                ),
                settings.seeds,
            )
            result.add_row(
                duty_pct=duty_pct,
                crash=crash,
                goodput_R0=med["goodput_R0"],
                goodput_R1=med["goodput_R1"],
                jam_bursts=med["jam_bursts"],
                s0_crash_dropped=med["s0_crash_dropped"],
            )
    return result
