"""Figure 15: ACK spoofing when the TCP senders sit across a wired path.

Wireline latency makes end-to-end recovery ever more expensive relative to
the suppressed MAC retransmission, so the spoofer's edge first widens with
latency; past ~200 ms its own ACK-clocked goodput decays faster than the
victim's loss buys it.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_remote_tcp, seed_job
from repro.stats import ExperimentResult, median_over_seeds

FULL_DELAYS_MS = (2, 10, 50, 100, 200, 400)
QUICK_DELAYS_MS = (2, 200)
BER = 2e-5


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    delays = QUICK_DELAYS_MS if settings.is_quick else FULL_DELAYS_MS
    # Round trips reach ~0.8 s at the top of the sweep: the run must cover
    # many of them for congestion control to show its steady state.
    duration_s = 8.0 if settings.is_quick else 20.0
    result = ExperimentResult(
        name="Figure 15",
        description=(
            "Goodput under remote TCP senders (one-way wireline latency on "
            "the x-axis); both wireless links have BER=2e-5 (802.11b)"
        ),
        columns=["wired_delay_ms", "case", "goodput_NR", "goodput_GR"],
    )
    for delay_ms in delays:
        for case, gp in (("no GR", 0.0), ("w R2 GR", 100.0)):
            med = median_over_seeds(
                seed_job(
                    run_remote_tcp,
                    duration_s=duration_s,
                    wired_delay_us=delay_ms * 1000.0,
                    ber=BER,
                    spoof_percentage=gp,
                ),
                settings.seeds,
            )
            result.add_row(
                wired_delay_ms=delay_ms,
                case=case,
                goodput_NR=med["goodput_NR"],
                goodput_GR=med["goodput_GR"],
            )
    return result
