"""Figure 9: varying the number of greedy receivers among 8 TCP flows.

All greedy receivers inflate CTS NAV by 31 ms at GP 100 %.  The paper's
finding: with more than one greedy receiver, only one of them survives —
31 ms is enough for the first grabber to reserve the medium indefinitely.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_nav_pairs, seed_job
from repro.mac.frames import FrameKind
from repro.stats import ExperimentResult, median_over_seeds

N_PAIRS = 8
FULL_N_GREEDY = (0, 1, 2, 4, 8)
QUICK_N_GREEDY = (1, 4)
NAV_US = 31_000.0


def seed_run(seed: int, duration_s: float, n_greedy: int) -> dict[str, float]:
    """One seeded point, ranked per-seed so the single survivor stays
    visible (module-level so the parallel engine can address it)."""
    out = run_nav_pairs(
        seed,
        duration_s,
        transport="tcp",
        nav_inflation_us=NAV_US if n_greedy else 0.0,
        inflate_frames=(FrameKind.CTS,),
        n_pairs=N_PAIRS,
        n_greedy=max(n_greedy, 1),
    )
    ranked = sorted((out[f"goodput_R{i}"] for i in range(N_PAIRS)), reverse=True)
    return {f"rank{i}": ranked[i] for i in range(N_PAIRS)}


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    counts = QUICK_N_GREEDY if settings.is_quick else FULL_N_GREEDY
    columns = ["n_greedy"] + [f"rank{i}" for i in range(N_PAIRS)]
    result = ExperimentResult(
        name="Figure 9",
        description=(
            "Goodput of 8 TCP flows when the last n receivers inflate CTS "
            "NAV by 31 ms at GP=100 (802.11b).  Values are per-seed sorted "
            "(rank0 = best flow): which greedy receiver wins varies by seed, "
            "so medians of raw per-receiver values would hide the single "
            "survivor the paper reports"
        ),
        columns=columns,
    )

    for n_greedy in counts:
        med = median_over_seeds(
            seed_job(seed_run, duration_s=settings.duration_s, n_greedy=n_greedy),
            settings.seeds,
        )
        result.add_row(n_greedy=n_greedy, **med)
    return result
