"""Table IV: sender contention windows under hidden terminals and fake ACKs.

The paper's table for both PHYs at GP=100 %: with no greedy receiver both
senders hover at large CW; with one faker its sender's CW collapses to near
CW_min while the honest sender's explodes; with two fakers both stay low.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_fake_hidden_terminals, seed_job
from repro.phy.params import dot11a
from repro.stats import ExperimentResult, median_over_seeds


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    result = ExperimentResult(
        name="Table IV",
        description=(
            "Average contention window of the two hidden-terminal senders "
            "under 0/1/2 fake-ACK receivers at GP=100 (UDP)"
        ),
        columns=["phy", "case", "cw_S1", "cw_S2"],
    )
    phys = (("802.11b", None),) if settings.is_quick else (("802.11b", None), ("802.11a", dot11a(6.0)))
    for phy_name, phy in phys:
        for case, gps in (
            ("no GR", (0.0, 0.0)),
            ("1 GR", (0.0, 100.0)),
            ("2 GRs", (100.0, 100.0)),
        ):
            med = median_over_seeds(
                seed_job(
                    run_fake_hidden_terminals,
                    duration_s=settings.duration_s,
                    fake_percentages=gps,
                    phy=phy,
                ),
                settings.seeds,
            )
            result.add_row(
                phy=phy_name, case=case, cw_S1=med["cw_S0"], cw_S2=med["cw_S1"]
            )
    return result
