"""Figure 16: remote senders — greedy percentage sweep per wireline latency.

The paper's observation: around 200 ms, spoofing only 20 % of sniffed DATA
frames already buys the greedy receiver a large relative gain.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_remote_tcp, seed_job
from repro.stats import ExperimentResult, median_over_seeds

FULL_GP = (0.0, 20.0, 40.0, 60.0, 80.0, 100.0)
QUICK_GP = (0.0, 20.0, 100.0)
FULL_DELAYS_MS = (2, 50, 100, 200, 400)
QUICK_DELAYS_MS = (200,)
BER = 2e-5


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    gps = QUICK_GP if settings.is_quick else FULL_GP
    delays = QUICK_DELAYS_MS if settings.is_quick else FULL_DELAYS_MS
    duration_s = 8.0 if settings.is_quick else 20.0  # cover many long round trips
    result = ExperimentResult(
        name="Figure 16",
        description=(
            "Remote TCP senders: goodput vs greedy (spoofing) percentage for "
            "several wireline latencies; wireless BER=2e-5 (802.11b)"
        ),
        columns=["wired_delay_ms", "greedy_percentage", "goodput_NR", "goodput_GR"],
    )
    for delay_ms in delays:
        for gp in gps:
            med = median_over_seeds(
                seed_job(
                    run_remote_tcp,
                    duration_s=duration_s,
                    wired_delay_us=delay_ms * 1000.0,
                    ber=BER,
                    spoof_percentage=gp,
                ),
                settings.seeds,
            )
            result.add_row(
                wired_delay_ms=delay_ms,
                greedy_percentage=gp,
                goodput_NR=med["goodput_NR"],
                goodput_GR=med["goodput_GR"],
            )
    return result
