"""Extension: ROC curve of the streaming RTS-flood detector.

The first attack-zoo entry pairs an attack with its detector and asks the
Figure 22 question of the pair: where does the detection threshold sit on
the true-positive/false-positive trade-off?  The attack is the RTS flood
(:class:`repro.faults.plan.RtsFloodConfig` — large-NAV RTS frames to an
absent receiver, the sender-side dual of the paper's NAV inflation); the
detector is :class:`~repro.core.detection.streaming.StreamingRtsFloodDetector`
(excess of unanswered RTS per sender in a sliding window), run **live**
through a :class:`~repro.core.detection.streaming.DetectionTap` while the
scenario simulates.

Each threshold is evaluated on two run families per seed:

* ``flood=True`` — honest contention plus the flooder.  The true-positive
  axis is whether the flooder gets flagged.
* ``flood=False`` — honest contention only.  Honest senders retry RTS when
  CTS responses are lost, so low thresholds flag them during collision
  bursts; the false-positive axis is the fraction of honest senders
  flagged.

The flood period is chosen so the window holds ~10 flood RTS: thresholds
below that detect, thresholds above miss, and the sweep actually bends —
mirroring Figure 22's shape rather than saturating at (1, 0).
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, US_PER_S, experiment_api
from repro.stats import ExperimentResult

#: Detection-threshold sweep (excess unanswered RTS per window).  The quick
#: variant keeps every other point; both include the regime boundaries.
THRESHOLDS = (1, 2, 4, 8, 16, 32)

#: Flood period giving ~window_us/period_us = 10 flood RTS per window —
#: squarely between the low and high ends of the threshold sweep.
FLOOD_PERIOD_US = 10_000.0


def run_rts_flood_roc(
    seed: int,
    duration_s: float,
    threshold: int = 12,
    flood: bool = True,
    period_us: float = FLOOD_PERIOD_US,
    nav_us: float = 30_000.0,
    window_us: float = 100_000.0,
    n_pairs: int = 2,
) -> dict[str, float]:
    """One operating point: honest UDP pairs, optional flooder, live detector.

    Returns plain floats (campaign-builder contract): whether the flooder
    was flagged, how many honest senders were, the raw detection count and
    the victims' total goodput (the DoS the attack actually causes).
    """
    from repro.core.detection.streaming import (
        StreamingDetectionPipeline,
        StreamingRtsFloodDetector,
    )
    from repro.faults import FaultPlan, RtsFloodConfig
    from repro.net.scenario import Scenario

    s = Scenario(seed=seed)
    for i in range(n_pairs):
        s.add_wireless_node(f"S{i}")
    for i in range(n_pairs):
        s.add_wireless_node(f"R{i}")
    pipeline = s.attach_streaming_detection(
        StreamingDetectionPipeline(
            [
                StreamingRtsFloodDetector(
                    threshold=int(threshold), window_us=float(window_us)
                )
            ]
        )
    )
    if flood:
        s.install_faults(
            FaultPlan(
                rts_flood=RtsFloodConfig(
                    period_us=float(period_us), nav_us=float(nav_us)
                )
            )
        )
    sinks = []
    for i in range(n_pairs):
        src, sink = s.udp_flow(f"S{i}", f"R{i}")
        src.start()
        sinks.append(sink)
    s.run(duration_s)
    us = duration_s * US_PER_S
    offenders = pipeline.report.offenders("rts-flood")
    flooder_name = RtsFloodConfig().name
    honest_flagged = sum(
        1 for i in range(n_pairs) if offenders.get(f"S{i}", 0) > 0
    )
    return {
        "flooder_flagged": 1.0 if offenders.get(flooder_name, 0) > 0 else 0.0,
        "honest_flagged": float(honest_flagged),
        "detections": float(pipeline.report.count("rts-flood")),
        "goodput_total": sum(sink.goodput_mbps(us) for sink in sinks),
    }


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """True/false positive rates of the flood detector vs its threshold."""
    thresholds = THRESHOLDS[::2] if settings.is_quick else THRESHOLDS
    n_pairs = 2
    result = ExperimentResult(
        name="Extension: RTS-flood detector ROC",
        description=(
            "True-positive rate (flooder flagged) and false-positive rate "
            "(honest senders flagged on clean runs) of the streaming "
            "unanswered-RTS detector vs its window threshold"
        ),
        columns=[
            "threshold",
            "true_positive",
            "false_positive",
            "detections",
            "goodput_flooded",
        ],
    )
    for threshold in thresholds:
        flooded = [
            run_rts_flood_roc(
                seed, settings.duration_s, threshold=threshold,
                flood=True, n_pairs=n_pairs,
            )
            for seed in settings.seeds
        ]
        clean = [
            run_rts_flood_roc(
                seed, settings.duration_s, threshold=threshold,
                flood=False, n_pairs=n_pairs,
            )
            for seed in settings.seeds
        ]
        n = len(settings.seeds)
        result.add_row(
            threshold=float(threshold),
            true_positive=sum(r["flooder_flagged"] for r in flooded) / n,
            false_positive=sum(r["honest_flagged"] for r in clean)
            / (n * n_pairs),
            detections=sum(r["detections"] for r in flooded) / n,
            goodput_flooded=sum(r["goodput_total"] for r in flooded) / n,
        )
    return result
