"""Figure 19: one fake-ACK receiver vs a growing number of normal pairs.

Per-flow goodput shrinks with more pairs, so the greedy receiver's absolute
lead shrinks too — but its relative advantage persists, and grows with the
loss rate (more corrupted frames means more fake-ACK opportunities).
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_fake_inherent_loss, seed_job
from repro.stats import ExperimentResult, median_over_seeds

FULL_PAIRS = (2, 4, 6, 8)
QUICK_PAIRS = (2, 4)
FULL_BERS = (2e-4, 5e-4)
QUICK_BERS = (5e-4,)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    pair_counts = QUICK_PAIRS if settings.is_quick else FULL_PAIRS
    bers = QUICK_BERS if settings.is_quick else FULL_BERS
    result = ExperimentResult(
        name="Figure 19",
        description=(
            "One fake-ACK receiver (the last pair) vs a varying number of "
            "normal sender-receiver pairs, per-pair APs, random BER losses "
            "(UDP, 802.11b); goodput_NR_mean averages the normal receivers"
        ),
        columns=["ber", "n_pairs", "goodput_NR_mean", "goodput_GR", "relative_gain"],
    )
    for ber in bers:
        for n_pairs in pair_counts:
            flags = [False] * (n_pairs - 1) + [True]
            med = median_over_seeds(
                seed_job(
                    run_fake_inherent_loss,
                    duration_s=settings.duration_s,
                    data_fer=0.0,
                    greedy_flags=flags,
                    ber=ber,
                ),
                settings.seeds,
            )
            normals = [med[f"goodput_R{i}"] for i in range(n_pairs - 1)]
            nr_mean = sum(normals) / len(normals)
            gr = med[f"goodput_R{n_pairs - 1}"]
            result.add_row(
                ber=ber,
                n_pairs=n_pairs,
                goodput_NR_mean=nr_mean,
                goodput_GR=gr,
                relative_gain=(gr / nr_mean if nr_mean > 0 else float("inf")),
            )
    return result
