"""Table II: average TCP congestion window, one- vs two-sender topologies.

For the same NAV inflation, the gap between the normal and greedy flow's
congestion window is larger when each flow has its own sender; head-of-line
blocking at a shared sender dampens (but does not remove) the effect.
"""

from __future__ import annotations

from repro.experiments.common import (
    experiment_api,
    RunSettings,
    run_nav_pairs,
    run_nav_shared_sender,
    seed_job,
)
from repro.mac.frames import FrameKind
from repro.stats import ExperimentResult, median_over_seeds

FULL_NAV_MS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 31.0)
QUICK_NAV_MS = (0.0, 10.0, 31.0)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    nav_values = QUICK_NAV_MS if settings.is_quick else FULL_NAV_MS
    result = ExperimentResult(
        name="Table II",
        description=(
            "Average TCP congestion window (segments) while GR inflates CTS "
            "NAV: shared-sender (S-NR / S-GR) vs two-sender (NS-NR / GS-GR)"
        ),
        columns=["nav_inflation_ms", "cwnd_S_NR", "cwnd_S_GR", "cwnd_NS_NR", "cwnd_GS_GR"],
    )
    for nav_ms in nav_values:
        shared = median_over_seeds(
            seed_job(
                run_nav_shared_sender,
                duration_s=settings.duration_s,
                transport="tcp",
                nav_inflation_us=nav_ms * 1000.0,
                inflate_frames=(FrameKind.CTS,),
                n_receivers=2,
            ),
            settings.seeds,
        )
        separate = median_over_seeds(
            seed_job(
                run_nav_pairs,
                duration_s=settings.duration_s,
                transport="tcp",
                nav_inflation_us=nav_ms * 1000.0,
                inflate_frames=(FrameKind.CTS,),
            ),
            settings.seeds,
        )
        result.add_row(
            nav_inflation_ms=nav_ms,
            cwnd_S_NR=shared["cwnd_R0"],
            cwnd_S_GR=shared["cwnd_R1"],
            cwnd_NS_NR=separate["cwnd_S0"],
            cwnd_GS_GR=separate["cwnd_S1"],
        )
    return result
