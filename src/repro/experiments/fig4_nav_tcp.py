"""Figure 4: two competing TCP flows while GR inflates NAV (802.11b).

Four variants, matching the paper's subfigures: NAV inflated on (a) CTS only,
(b) RTS+CTS (the RTS carries the greedy receiver's TCP ACKs), (c) ACK only,
(d) all frames.  Inflating everything dominates the medium from ~2 ms.
"""

from __future__ import annotations

from typing import Iterable

from repro.experiments.common import RunSettings, experiment_api, run_nav_pairs, seed_job
from repro.mac.frames import FrameKind
from repro.phy.params import PhyParams
from repro.stats import ExperimentResult, median_over_seeds

FULL_NAV_MS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 31.0)
QUICK_NAV_MS = (0.0, 2.0, 10.0, 31.0)

VARIANTS: dict[str, tuple[FrameKind, ...]] = {
    "cts": (FrameKind.CTS,),
    "rts_cts": (FrameKind.RTS, FrameKind.CTS),
    "ack": (FrameKind.ACK,),
    "all": (FrameKind.RTS, FrameKind.CTS, FrameKind.DATA, FrameKind.ACK),
}


def sweep(
    settings: RunSettings,
    phy: PhyParams | None,
    name: str,
    description: str,
) -> ExperimentResult:
    """Shared implementation for Figures 4 (802.11b) and 5 (802.11a)."""
    nav_values = QUICK_NAV_MS if settings.is_quick else FULL_NAV_MS
    result = ExperimentResult(
        name=name,
        description=description,
        columns=["variant", "nav_inflation_ms", "goodput_NR", "goodput_GR"],
    )
    for variant, frames in VARIANTS.items():
        for nav_ms in nav_values:
            med = median_over_seeds(
                seed_job(
                    run_nav_pairs,
                    duration_s=settings.duration_s,
                    transport="tcp",
                    phy=phy,
                    nav_inflation_us=nav_ms * 1000.0,
                    inflate_frames=frames,
                ),
                settings.seeds,
            )
            result.add_row(
                variant=variant,
                nav_inflation_ms=nav_ms,
                goodput_NR=med["goodput_R0"],
                goodput_GR=med["goodput_R1"],
            )
    return result


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    return sweep(
        settings,
        phy=None,
        name="Figure 4",
        description=(
            "Goodput of two competing TCP flows NS-NR and GS-GR while GR "
            "inflates NAV on CTS / RTS+CTS / ACK / all frames (802.11b)"
        ),
    )
