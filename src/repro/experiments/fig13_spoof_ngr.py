"""Figure 13: ACK spoofing under 0, 1 or 2 greedy receivers (BER 2e-4).

With both receivers spoofing each other's ACKs, MAC retransmission is
disabled for everyone: every wireless loss reaches TCP and total goodput
drops below the honest baseline.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_spoof_tcp_pairs, seed_job
from repro.stats import ExperimentResult, median_over_seeds

BER = 2e-4
FULL_GP = (50.0, 100.0)
QUICK_GP = (100.0,)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    gps = QUICK_GP if settings.is_quick else FULL_GP
    result = ExperimentResult(
        name="Figure 13",
        description=(
            "Goodput of two TCP flows under 0/1/2 ACK-spoofing receivers "
            "(BER=2e-4, 802.11b)"
        ),
        columns=["greedy_percentage", "n_greedy", "goodput_R0", "goodput_R1", "total"],
    )
    for gp in gps:
        for n_greedy in (0, 1, 2):
            med = median_over_seeds(
                seed_job(
                    run_spoof_tcp_pairs,
                    duration_s=settings.duration_s,
                    ber=BER,
                    spoof_percentage=gp if n_greedy else 0.0,
                    n_greedy=max(n_greedy, 1),
                ),
                settings.seeds,
            )
            result.add_row(
                greedy_percentage=gp,
                n_greedy=n_greedy,
                goodput_R0=med["goodput_R0"],
                goodput_R1=med["goodput_R1"],
                total=med["goodput_R0"] + med["goodput_R1"],
            )
    return result
