"""Figure 5: the Figure 4 TCP NAV-inflation sweep repeated under 802.11a.

Same trend as 802.11b, but for a given inflation the damage is larger:
802.11a's inter-frame spacings and transmission times are smaller, so the
inflated reservation displaces relatively more useful airtime.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api
from repro.experiments.fig4_nav_tcp import sweep
from repro.phy.params import dot11a
from repro.stats import ExperimentResult


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    return sweep(
        settings,
        phy=dot11a(6.0),
        name="Figure 5",
        description=(
            "Goodput of two competing TCP flows NS-NR and GS-GR while GR "
            "inflates NAV on CTS / RTS+CTS / ACK / all frames (802.11a)"
        ),
    )
