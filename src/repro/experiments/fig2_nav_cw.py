"""Figure 2: average contention window of GS and NS vs CTS NAV inflation.

As the greedy receiver's NAV inflation grows, its own sender GS keeps CW near
CW_min while NS's average CW climbs — NS's rare transmissions increasingly
collide with GS's head-started ones — until NS stops sending altogether and
its CW reading collapses back to CW_min (the fluctuation the paper notes
beyond 28 slots).
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_nav_pairs, seed_job
from repro.mac.frames import FrameKind
from repro.stats import ExperimentResult, median_over_seeds

FULL_SLOTS = (0, 2, 5, 8, 10, 12, 15, 18, 20, 22, 25, 28, 31)
QUICK_SLOTS = (0, 10, 20, 28)

SLOT_US = 20.0  # 802.11b slot time


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    slots = QUICK_SLOTS if settings.is_quick else FULL_SLOTS
    result = ExperimentResult(
        name="Figure 2",
        description=(
            "Average CW of GS and NS under two competing UDP flows while GR "
            "inflates CTS/ACK NAV by v slots (802.11b)"
        ),
        columns=["v_slots", "cw_NS", "cw_GS"],
    )
    for v in slots:
        med = median_over_seeds(
            seed_job(
                run_nav_pairs,
                duration_s=settings.duration_s,
                transport="udp",
                nav_inflation_us=v * SLOT_US,
                inflate_frames=(FrameKind.CTS, FrameKind.ACK),
            ),
            settings.seeds,
        )
        result.add_row(v_slots=v, cw_NS=med["cw_S0"], cw_GS=med["cw_S1"])
    return result
