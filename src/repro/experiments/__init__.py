"""One module per table/figure of the paper's evaluation.

Every module exposes ``run(quick: bool = False) -> ExperimentResult``; the
``quick`` mode shortens runs and sweeps for CI/benchmarks while the full mode
regenerates the numbers recorded in EXPERIMENTS.md.

Use :func:`get` / :data:`ALL_EXPERIMENTS` to enumerate them programmatically
(the ``benchmarks/run_all.py`` harness does).
"""

from __future__ import annotations

import importlib
from typing import Callable

from repro.stats import ExperimentResult

#: Experiment id -> module path (relative to this package).
ALL_EXPERIMENTS: dict[str, str] = {
    "table1": "table1_corruption",
    "fig1": "fig1_nav_udp",
    "fig2": "fig2_nav_cw",
    "fig3": "fig3_model",
    "fig4": "fig4_nav_tcp",
    "fig5": "fig5_nav_tcp_11a",
    "fig6": "fig6_nav_8flows",
    "fig7": "fig7_nav_gp",
    "fig8": "fig8_nav_ngr",
    "fig9": "fig9_nav_many_gr",
    "fig10": "fig10_shared_sender",
    "table2": "table2_cwnd",
    "table3": "table3_fer",
    "fig11": "fig11_spoof_ber",
    "fig12": "fig12_spoof_gp",
    "fig13": "fig13_spoof_ngr",
    "fig14": "fig14_spoof_pairs",
    "fig15": "fig15_remote",
    "fig16": "fig16_remote_gp",
    "fig17": "fig17_spoof_udp",
    "fig18": "fig18_fake_hidden",
    "table4": "table4_fake_cw",
    "table5": "table5_fake_inherent",
    "fig19": "fig19_fake_pairs",
    "table6": "table6_testbed_nav_tcp",
    "table7": "table7_testbed_nav_udp",
    "table8": "table8_testbed_spoof",
    "table9": "table9_testbed_fake",
    "fig21": "fig21_rssi_cdf",
    "fig22": "fig22_rssi_roc",
    "fig23": "fig23_grc_nav",
    "fig24": "fig24_grc_spoof",
}

#: Beyond the paper's evaluation: its Section IX future-work studies.
EXTENSIONS: dict[str, str] = {
    "ext_autorate": "ext_autorate",
    "ext_sender_baseline": "ext_sender_baseline",
}


def get(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Return the ``run`` callable for an experiment id (e.g. ``"fig4"``)."""
    module_name = ALL_EXPERIMENTS.get(experiment_id) or EXTENSIONS.get(experiment_id)
    if module_name is None:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(ALL_EXPERIMENTS) + sorted(EXTENSIONS)}"
        )
    module = importlib.import_module(f"repro.experiments.{module_name}")
    return module.run
