"""One module per table/figure of the paper's evaluation.

Every module exposes ``run(settings: RunSettings | None = None) ->
ExperimentResult`` (the deprecated ``run(quick=True)`` form still works and
warns once); quick-mode settings shorten runs and sweeps for CI/benchmarks
while the full mode regenerates the numbers recorded in EXPERIMENTS.md.

The package keeps a metadata registry: one :class:`ExperimentEntry` per
artifact, carrying the paper figure/table it reproduces, topical tags and the
:mod:`repro.campaign.builders` scenario builder (if any) that sweeps the same
scenario declaratively.  :func:`get` returns the runner; :func:`get_entry` /
:func:`entries` expose the metadata (the CLI listing and
``benchmarks/run_all.py`` both read them).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.stats import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.common import RunSettings


@dataclass(frozen=True)
class ExperimentEntry:
    """Registry metadata for one reproduced artifact."""

    id: str
    module: str  # module name relative to this package
    artifact: str  # paper artifact, e.g. "Figure 4" / "Table I"
    title: str  # one-line description of what it shows
    tags: tuple[str, ...] = ()
    #: Name of the :mod:`repro.campaign.builders` builder that runs the same
    #: scenario family point-by-point, or None for analytic/Monte-Carlo
    #: artifacts that have no per-seed scenario.
    builder: str | None = None
    extension: bool = False

    @property
    def runner(self) -> "Callable[..., ExperimentResult]":
        """The module's ``run`` entrypoint (imported on first use)."""
        mod = importlib.import_module(f"repro.experiments.{self.module}")
        return mod.run

    def default_settings(self) -> "RunSettings":
        """The settings ``run()`` resolves to when called without arguments."""
        from repro.experiments.common import RunSettings

        return RunSettings()


def _entry(
    id: str,
    module: str,
    artifact: str,
    title: str,
    tags: tuple[str, ...] = (),
    builder: str | None = None,
    extension: bool = False,
) -> ExperimentEntry:
    return ExperimentEntry(id, module, artifact, title, tags, builder, extension)


#: The paper's evaluation artifacts, in presentation order.
REGISTRY: dict[str, ExperimentEntry] = {
    e.id: e
    for e in (
        _entry("table1", "table1_corruption", "Table I",
               "Corrupted frames mostly preserve src/dst MAC addresses",
               ("testbed", "model")),
        _entry("fig1", "fig1_nav_udp", "Figure 1",
               "Two UDP flows while GR inflates CTS NAV (802.11b)",
               ("nav", "udp"), builder="nav_pairs"),
        _entry("fig2", "fig2_nav_cw", "Figure 2",
               "Sender contention windows under NAV inflation",
               ("nav", "udp"), builder="nav_pairs"),
        _entry("fig3", "fig3_model", "Figure 3",
               "RTS sending-ratio model (Eqs. 1-2) vs simulation",
               ("nav", "model")),
        _entry("fig4", "fig4_nav_tcp", "Figure 4",
               "Two TCP flows under NAV inflation per frame kind (802.11b)",
               ("nav", "tcp"), builder="nav_pairs"),
        _entry("fig5", "fig5_nav_tcp_11a", "Figure 5",
               "The Figure 4 sweep repeated under 802.11a",
               ("nav", "tcp"), builder="nav_pairs"),
        _entry("fig6", "fig6_nav_8flows", "Figure 6",
               "Eight competing flows, one greedy NAV inflator",
               ("nav", "udp"), builder="nav_pairs"),
        _entry("fig7", "fig7_nav_gp", "Figure 7",
               "NAV inflation applied to a percentage of frames",
               ("nav", "udp"), builder="nav_pairs"),
        _entry("fig8", "fig8_nav_ngr", "Figure 8",
               "Goodput vs number of greedy receivers (sorted flows)",
               ("nav", "tcp"), builder="nav_pairs_sorted"),
        _entry("fig9", "fig9_nav_many_gr", "Figure 9",
               "Many greedy receivers sharing the gains",
               ("nav", "udp"), builder="nav_pairs"),
        _entry("fig10", "fig10_shared_sender", "Figure 10",
               "One sender, several receivers, one inflating NAV",
               ("nav", "udp"), builder="nav_shared_sender"),
        _entry("table2", "table2_cwnd", "Table II",
               "TCP congestion windows under NAV inflation",
               ("nav", "tcp"), builder="nav_pairs"),
        _entry("table3", "table3_fer", "Table III",
               "BER to per-frame-type FER mapping", ("model",)),
        _entry("fig11", "fig11_spoof_ber", "Figure 11",
               "ACK spoofing vs channel BER (TCP pairs)",
               ("spoof", "tcp"), builder="spoof_tcp_pairs"),
        _entry("fig12", "fig12_spoof_gp", "Figure 12",
               "ACK spoofing applied to a percentage of frames",
               ("spoof", "tcp"), builder="spoof_tcp_pairs"),
        _entry("fig13", "fig13_spoof_ngr", "Figure 13",
               "Mutually spoofing greedy receivers",
               ("spoof", "tcp"), builder="spoof_tcp_pairs"),
        _entry("fig14", "fig14_spoof_pairs", "Figure 14",
               "ACK spoofing vs number of competing pairs",
               ("spoof", "tcp"), builder="spoof_tcp_pairs"),
        _entry("fig15", "fig15_remote", "Figure 15",
               "Remote TCP senders behind a wired link, one spoofing receiver",
               ("spoof", "tcp"), builder="remote_tcp"),
        _entry("fig16", "fig16_remote_gp", "Figure 16",
               "Remote TCP with partial spoofing percentages",
               ("spoof", "tcp"), builder="remote_tcp"),
        _entry("fig17", "fig17_spoof_udp", "Figure 17",
               "Shared-AP UDP with one ACK-spoofing receiver",
               ("spoof", "udp"), builder="spoof_udp_shared_ap"),
        _entry("fig18", "fig18_fake_hidden", "Figure 18",
               "Fake ACKs between hidden senders",
               ("fake", "udp"), builder="fake_hidden_terminals"),
        _entry("table4", "table4_fake_cw", "Table IV",
               "Sender CW under fake ACKs (hidden terminals)",
               ("fake", "udp"), builder="fake_hidden_terminals"),
        _entry("table5", "table5_fake_inherent", "Table V",
               "Fake ACKs under inherent medium losses",
               ("fake", "udp"), builder="fake_inherent_loss"),
        _entry("fig19", "fig19_fake_pairs", "Figure 19",
               "Fake ACKs vs number of pairs at random BER",
               ("fake", "udp"), builder="fake_inherent_loss"),
        _entry("table6", "table6_testbed_nav_tcp", "Table VI",
               "Testbed emulation: NAV inflation over TCP", ("nav", "testbed")),
        _entry("table7", "table7_testbed_nav_udp", "Table VII",
               "Testbed emulation: NAV inflation over UDP", ("nav", "testbed")),
        _entry("table8", "table8_testbed_spoof", "Table VIII",
               "Testbed emulation: ACK spoofing", ("spoof", "testbed")),
        _entry("table9", "table9_testbed_fake", "Table IX",
               "Testbed emulation: fake ACKs", ("fake", "testbed")),
        _entry("fig21", "fig21_rssi_cdf", "Figure 21",
               "RSSI difference CDF for the spoof detector", ("grc", "rssi")),
        _entry("fig22", "fig22_rssi_roc", "Figure 22",
               "RSSI spoof-detector ROC curve", ("grc", "rssi")),
        _entry("fig23", "fig23_grc_nav", "Figure 23",
               "GRC NAV validation vs pair distance",
               ("grc", "nav"), builder="grc_nav_distance"),
        _entry("fig24", "fig24_grc_spoof", "Figure 24",
               "GRC spoof detection restoring goodput",
               ("grc", "spoof"), builder="spoof_tcp_pairs"),
        _entry("ext_autorate", "ext_autorate", "Extension",
               "Greedy receivers vs ARF rate adaptation (Section IX)",
               ("fake", "spoof", "autorate"), extension=True),
        _entry("ext_sender_baseline", "ext_sender_baseline", "Extension",
               "Greedy-receiver vs greedy-sender baseline (Section IX)",
               ("nav", "baseline"), extension=True),
        _entry("ext_bursty_nav", "ext_bursty_nav", "Extension",
               "NAV inflation under Gilbert-Elliott bursty interference",
               ("nav", "faults"), builder="bursty_nav", extension=True),
        _entry("ext_jammer_crash", "ext_jammer_crash", "Extension",
               "Goodput under periodic jamming and station crash/reboot",
               ("faults", "jammer", "crash"), builder="jammer_crash",
               extension=True),
        _entry("ext_rts_roc", "ext_rts_roc", "Extension",
               "Streaming RTS-flood detector ROC (attack zoo, Section VII)",
               ("grc", "faults", "detection"), builder="rts_flood_roc",
               extension=True),
        _entry("ext_hidden_node", "ext_hidden_node", "Extension",
               "Hidden-terminal triangle on the SINR channel: RTS/CTS off vs on",
               ("sinr", "udp", "channel"), builder="hidden_node",
               extension=True),
    )
}

#: Experiment id -> module path (kept for compatibility; derived from the
#: registry).
ALL_EXPERIMENTS: dict[str, str] = {
    e.id: e.module for e in REGISTRY.values() if not e.extension
}

#: Beyond the paper's evaluation: its Section IX future-work studies.
EXTENSIONS: dict[str, str] = {
    e.id: e.module for e in REGISTRY.values() if e.extension
}


def get_entry(experiment_id: str) -> ExperimentEntry:
    """Return the registry entry for an experiment id (e.g. ``"fig4"``)."""
    entry = REGISTRY.get(experiment_id)
    if entry is None:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        )
    return entry


def entries(tag: str | None = None) -> list[ExperimentEntry]:
    """All registry entries, optionally filtered by tag."""
    found = list(REGISTRY.values())
    if tag is not None:
        found = [e for e in found if tag in e.tags]
    return found


def get(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Return the ``run`` callable for an experiment id (e.g. ``"fig4"``)."""
    return get_entry(experiment_id).runner
