"""Table VIII (testbed): ACK-spoofing emulation under TCP.

One sender, two receivers; the sender's MAC retransmissions toward the
victim are disabled (what a perfectly successful spoofer achieves).
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, seed_job
from repro.stats import ExperimentResult, median_over_seeds
from repro.testbed.emulation import table8_spoof_emulation_tcp


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    result = ExperimentResult(
        name="Table VIII",
        description=(
            "TCP goodput (Mbps), testbed emulation of ACK spoofing: MAC "
            "retransmissions disabled toward R2 (the victim); 802.11a, "
            "no RTS/CTS; R1 plays the greedy receiver"
        ),
        columns=["case", "goodput_GR", "goodput_NR"],
    )
    for case, greedy in (("no GR", False), ("1 GR", True)):
        med = median_over_seeds(
            seed_job(
                table8_spoof_emulation_tcp, greedy=greedy, duration_s=settings.duration_s
            ),
            settings.seeds,
        )
        result.add_row(case=case, goodput_GR=med["R1"], goodput_NR=med["R2"])
    return result
