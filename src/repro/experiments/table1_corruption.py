"""Table I: most corrupted frames preserve their source/destination MACs.

Monte-Carlo over the calibrated per-PHY bursty error model, plus the naive
i.i.d.-error analytic baseline for contrast (it cannot explain the 802.11a
measurement — see :mod:`repro.testbed.corruption`).
"""

from __future__ import annotations

import random

from repro.experiments.common import RunSettings, experiment_api
from repro.stats import ExperimentResult
from repro.testbed.corruption import (
    address_survival_analytic,
    measure_address_survival,
)

#: Number of frames the paper's campaign received per PHY.
PAPER_FRAME_COUNTS = {"802.11b": 65536, "802.11a": 23068}
PAPER_ROWS = {
    "802.11b": (1367 / 65536, 1351 / 1367, 1282 / 1351),
    "802.11a": (7376 / 23068, 6197 / 7376, 5663 / 6197),
}


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    rng = random.Random(42)
    result = ExperimentResult(
        name="Table I",
        description=(
            "Corrupted-frame address survival: measured (bursty model) vs "
            "paper vs naive i.i.d. analytic"
        ),
        columns=[
            "phy",
            "source",
            "corruption_rate",
            "dst_survival",
            "src_survival_given_dst",
        ],
    )
    for phy, n_frames in PAPER_FRAME_COUNTS.items():
        if settings.is_quick:
            n_frames //= 8
        measured = measure_address_survival(rng, n_frames, phy_name=phy)
        result.add_row(
            phy=phy,
            source="model",
            corruption_rate=measured.corruption_rate,
            dst_survival=measured.dst_survival,
            src_survival_given_dst=measured.src_survival_given_dst,
        )
        paper = PAPER_ROWS[phy]
        result.add_row(
            phy=phy,
            source="paper",
            corruption_rate=paper[0],
            dst_survival=paper[1],
            src_survival_given_dst=paper[2],
        )
    # The i.i.d. baseline at a byte error rate giving ~2% corruption.
    p_corrupt, dst_ok, src_ok = address_survival_analytic(2e-5)
    result.add_row(
        phy="(any)",
        source="iid-analytic",
        corruption_rate=p_corrupt,
        dst_survival=dst_ok,
        src_survival_given_dst=src_ok,
    )
    return result
