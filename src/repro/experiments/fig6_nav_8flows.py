"""Figure 6: eight TCP flows, one greedy receiver inflating CTS NAV.

With seven normal competitors it takes a ~10 ms CTS NAV increase for the
greedy receiver to dominate the medium.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_nav_pairs, seed_job
from repro.mac.frames import FrameKind
from repro.stats import ExperimentResult, median, median_over_seeds

FULL_NAV_MS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 31.0)
QUICK_NAV_MS = (0.0, 10.0, 31.0)
N_PAIRS = 8


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    nav_values = QUICK_NAV_MS if settings.is_quick else FULL_NAV_MS
    result = ExperimentResult(
        name="Figure 6",
        description=(
            "Goodput of 8 TCP flows when one receiver inflates CTS NAV "
            "(802.11b); normal value is the mean over the 7 normal receivers"
        ),
        columns=["nav_inflation_ms", "goodput_GR", "goodput_NR_mean"],
    )
    for nav_ms in nav_values:
        med = median_over_seeds(
            seed_job(
                run_nav_pairs,
                duration_s=settings.duration_s,
                transport="tcp",
                nav_inflation_us=nav_ms * 1000.0,
                inflate_frames=(FrameKind.CTS,),
                n_pairs=N_PAIRS,
                n_greedy=1,
            ),
            settings.seeds,
        )
        normal = [med[f"goodput_R{i}"] for i in range(N_PAIRS - 1)]
        result.add_row(
            nav_inflation_ms=nav_ms,
            goodput_GR=med[f"goodput_R{N_PAIRS - 1}"],
            goodput_NR_mean=sum(normal) / len(normal),
        )
    return result
