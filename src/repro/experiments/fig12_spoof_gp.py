"""Figure 12: ACK spoofing with varying greedy percentage and loss rate."""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_spoof_tcp_pairs, seed_job
from repro.stats import ExperimentResult, median_over_seeds

FULL_GP = (0.0, 20.0, 40.0, 60.0, 80.0, 100.0)
QUICK_GP = (0.0, 50.0, 100.0)
FULL_BERS = (2e-5, 2e-4, 8e-4)
QUICK_BERS = (2e-4,)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    gps = QUICK_GP if settings.is_quick else FULL_GP
    bers = QUICK_BERS if settings.is_quick else FULL_BERS
    result = ExperimentResult(
        name="Figure 12",
        description=(
            "Goodput of two TCP flows NS-NR and GS-GR while the greedy "
            "percentage of ACK spoofing and the loss rate vary (802.11b)"
        ),
        columns=["ber", "greedy_percentage", "goodput_NR", "goodput_GR"],
    )
    for ber in bers:
        for gp in gps:
            med = median_over_seeds(
                seed_job(
                    run_spoof_tcp_pairs,
                    duration_s=settings.duration_s,
                    ber=ber,
                    spoof_percentage=gp,
                ),
                settings.seeds,
            )
            result.add_row(
                ber=ber,
                greedy_percentage=gp,
                goodput_NR=med["goodput_R0"],
                goodput_GR=med["goodput_R1"],
            )
    return result
