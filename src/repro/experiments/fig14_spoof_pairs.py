"""Figure 14: one ACK-spoofing receiver against a growing crowd of normal
receivers, under one shared AP vs one AP per flow.

Head-of-line blocking at a shared AP shrinks the spoofer's edge.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_spoof_tcp_pairs, seed_job
from repro.stats import ExperimentResult, median_over_seeds

BER = 2e-4
FULL_PAIRS = (2, 4, 6, 8)
QUICK_PAIRS = (2, 4)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    pair_counts = QUICK_PAIRS if settings.is_quick else FULL_PAIRS
    result = ExperimentResult(
        name="Figure 14",
        description=(
            "One ACK-spoofing receiver vs a varying number of normal "
            "receivers (TCP, BER=2e-4, 802.11b); goodput_NR_mean averages "
            "the normal receivers"
        ),
        columns=["topology", "n_pairs", "goodput_NR_mean", "goodput_GR"],
    )
    for topology, shared in (("one AP", True), ("per-flow APs", False)):
        for n_pairs in pair_counts:
            med = median_over_seeds(
                seed_job(
                    run_spoof_tcp_pairs,
                    duration_s=settings.duration_s,
                    ber=BER,
                    n_pairs=n_pairs,
                    shared_ap=shared,
                ),
                settings.seeds,
            )
            normals = [med[f"goodput_R{i}"] for i in range(n_pairs - 1)]
            result.add_row(
                topology=topology,
                n_pairs=n_pairs,
                goodput_NR_mean=sum(normals) / len(normals),
                goodput_GR=med[f"goodput_R{n_pairs - 1}"],
            )
    return result
