"""Figure 17: ACK spoofing against UDP traffic (one AP, two receivers).

Spoofing disables MAC retransmissions toward the normal receiver, cutting the
service time its flow gets from the shared AP; the effect is milder than
under TCP because no congestion control amplifies the losses.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_spoof_udp_shared_ap, seed_job
from repro.stats import ExperimentResult, median_over_seeds

FULL_BERS = (0.0, 1e-4, 2e-4, 4.4e-4, 8e-4, 14e-4)
QUICK_BERS = (0.0, 4.4e-4)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    bers = QUICK_BERS if settings.is_quick else FULL_BERS
    result = ExperimentResult(
        name="Figure 17",
        description=(
            "Goodput of two UDP flows S-NR and S-GR from one AP while GR "
            "spoofs ACKs on behalf of NR, vs wireless loss rate (802.11b)"
        ),
        columns=["ber", "case", "goodput_NR", "goodput_GR"],
    )
    for ber in bers:
        for case, greedy in (("no GR", False), ("w R2 GR", True)):
            med = median_over_seeds(
                seed_job(
                    run_spoof_udp_shared_ap,
                    duration_s=settings.duration_s,
                    ber=ber,
                    greedy=greedy,
                ),
                settings.seeds,
            )
            result.add_row(
                ber=ber,
                case=case,
                goodput_NR=med["goodput_NR"],
                goodput_GR=med["goodput_GR"],
            )
    return result
