"""Figure 11: ACK spoofing under TCP while the wireless loss rate varies.

The greedy receiver spoofs a MAC ACK for every data frame it sniffs toward
the normal receiver (GP=100).  The gain peaks at moderate loss: with little
loss there is nothing to suppress, with heavy loss the spoofer overhears too
few frames and suffers on its own link as well.  Both 802.11b and 802.11a.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_spoof_tcp_pairs, seed_job
from repro.phy.params import dot11a
from repro.stats import ExperimentResult, median_over_seeds

FULL_BERS = (0.0, 1e-5, 1e-4, 2e-4, 3.2e-4, 4.4e-4, 8e-4, 14e-4)
QUICK_BERS = (0.0, 2e-4, 8e-4)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    bers = QUICK_BERS if settings.is_quick else FULL_BERS
    result = ExperimentResult(
        name="Figure 11",
        description=(
            "Goodput of two TCP flows vs wireless loss rate; R1 (GR) spoofs "
            "MAC ACKs on behalf of R0 (NR); 'no GR' runs have no spoofer"
        ),
        columns=["phy", "ber", "case", "goodput_R1_or_NR", "goodput_R2_or_GR"],
    )
    for phy_name, phy in (("802.11b", None), ("802.11a", dot11a(6.0))):
        if settings.is_quick and phy_name == "802.11a":
            continue
        for ber in bers:
            for case, gp in (("no GR", 0.0), ("w R2 GR", 100.0)):
                med = median_over_seeds(
                    seed_job(
                        run_spoof_tcp_pairs,
                        duration_s=settings.duration_s,
                        ber=ber,
                        phy=phy,
                        spoof_percentage=gp,
                    ),
                    settings.seeds,
                )
                result.add_row(
                    phy=phy_name,
                    ber=ber,
                    case=case,
                    goodput_R1_or_NR=med["goodput_R0"],
                    goodput_R2_or_GR=med["goodput_R1"],
                )
    return result
