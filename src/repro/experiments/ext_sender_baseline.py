"""Extension: greedy receiver vs selfish sender, head to head.

The paper motivates receiver-side misbehavior by noting hotspot *clients*
are mostly receivers.  This experiment quantifies the comparison against the
classic sender-side attack (backoff cheating a la Kyasanur-Vaidya): how much
goodput does each attacker capture from the same honest competitor?
"""

from __future__ import annotations

from repro.core.baseline import SelfishSenderConfig, make_selfish
from repro.core.greedy import GreedyConfig
from repro.experiments.common import RunSettings, experiment_api, US_PER_S, seed_job
from repro.mac.frames import FrameKind
from repro.net.scenario import Scenario
from repro.stats import ExperimentResult, median_over_seeds


def run_case(seed: int, duration_s: float, attack: str) -> dict[str, float]:
    """Two UDP pairs; pair 1 attacks via ``attack`` in
    {"none", "greedy-receiver", "selfish-sender"}."""
    s = Scenario(seed=seed)
    s.add_wireless_node("S0")
    s.add_wireless_node("S1")
    s.add_wireless_node("R0")
    greedy = None
    if attack == "greedy-receiver":
        greedy = GreedyConfig.nav_inflator(10_000.0, {FrameKind.CTS})
    s.add_wireless_node("R1", greedy=greedy)
    if attack == "selfish-sender":
        make_selfish(s.macs["S1"], SelfishSenderConfig(cw_factor=0.125))
    elif attack not in ("none", "greedy-receiver"):
        raise ValueError(f"unknown attack {attack!r}")
    f0, k0 = s.udp_flow("S0", "R0")
    f1, k1 = s.udp_flow("S1", "R1")
    f0.start()
    f1.start()
    s.run(duration_s)
    us = duration_s * US_PER_S
    victim = k0.goodput_mbps(us)
    attacker = k1.goodput_mbps(us)
    return {
        "goodput_victim": victim,
        "goodput_attacker": attacker,
        "attacker_share": attacker / max(victim + attacker, 1e-9),
    }


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    result = ExperimentResult(
        name="Extension: attack-surface comparison",
        description=(
            "Goodput captured by a greedy receiver (10 ms CTS NAV inflation) "
            "vs a selfish sender (CW bounds at 1/8 of standard) against the "
            "same honest UDP competitor (802.11b)"
        ),
        columns=["attack", "goodput_victim", "goodput_attacker", "attacker_share"],
    )
    for attack in ("none", "selfish-sender", "greedy-receiver"):
        med = median_over_seeds(
            seed_job(run_case, duration_s=settings.duration_s, attack=attack),
            settings.seeds,
        )
        result.add_row(attack=attack, **med)
    return result
