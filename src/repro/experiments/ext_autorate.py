"""Extension: rate adaptation vs greedy receivers (the paper's Section IX).

The paper's conclusion predicts — but does not measure — two interactions:

1. **Fake ACKs backfire under auto-rate**: the faked success feedback drives
   ARF up to modulations the channel cannot carry, so the greedy receiver's
   own goodput drops compared with a fixed well-chosen rate.
2. **ACK spoofing gets worse under auto-rate**: spoofed ACKs pin the
   victim's sender at a rate the victim cannot receive, so the sender never
   falls back and the victim's effective loss rate compounds.

We measure both on a channel whose per-rate BER profile makes 11 Mbps lossy
and 2 Mbps clean (the regime where rate adaptation matters).
"""

from __future__ import annotations

from repro.core.greedy import GreedyConfig
from repro.experiments.common import RunSettings, experiment_api, US_PER_S, seed_job
from repro.net.scenario import Scenario
from repro.stats import ExperimentResult, median_over_seeds

#: Per-rate BER profile of a mid-quality link: clean at low rates, marginal
#: at 5.5 Mbps, bad at 11 Mbps.  (Error-model BERs are per byte-unit.)
MARGINAL_LINK = {1.0: 0.0, 2.0: 1e-5, 5.5: 2e-4, 11.0: 1.5e-3}


def _apply_profile(s: Scenario, src: str, dst: str) -> None:
    s.error_model.set_rate_profile(src, dst, MARGINAL_LINK)


def run_fake_ack_autorate(
    seed: int, duration_s: float, greedy: bool, autorate: bool
) -> dict[str, float]:
    """Two pairs on marginal links; R1 fakes ACKs (or not); senders fixed at
    2 Mbps or running ARF."""
    from repro.phy.params import dot11b

    # Fixed-rate runs transmit at the best sustainable rate for this profile.
    phy = dot11b() if autorate else dot11b(2.0)
    s = Scenario(phy=phy, seed=seed, rts_enabled=False)
    s.add_wireless_node("S0")
    s.add_wireless_node("S1")
    s.add_wireless_node("R0")
    s.add_wireless_node("R1", greedy=GreedyConfig.ack_faker() if greedy else None)
    _apply_profile(s, "S0", "R0")
    _apply_profile(s, "S1", "R1")
    if autorate:
        s.enable_autorate(["S0", "S1"])
    f0, k0 = s.udp_flow("S0", "R0")
    f1, k1 = s.udp_flow("S1", "R1")
    f0.start()
    f1.start()
    s.run(duration_s)
    us = duration_s * US_PER_S
    out = {
        "goodput_R0": k0.goodput_mbps(us),
        "goodput_R1": k1.goodput_mbps(us),
    }
    if autorate:
        controller = s.macs["S1"].rate_controller
        out["gs_rate_final"] = controller.rate_for("R1")
    else:
        out["gs_rate_final"] = 2.0
    return out


def run_spoof_autorate(
    seed: int, duration_s: float, spoof: bool, autorate: bool
) -> dict[str, float]:
    """Spoofing under ARF: the victim's sender keeps hearing (spoofed) ACKs
    at high rates, so it never falls back to a rate the victim can decode."""
    from repro.phy.params import dot11b

    phy = dot11b() if autorate else dot11b(2.0)
    s = Scenario(phy=phy, seed=seed)
    s.add_wireless_node("NS", position=(0.0, 0.0))
    s.add_wireless_node("GS", position=(60.0, 60.0))
    s.add_wireless_node("NR", position=(10.0, 0.0))
    s.add_wireless_node(
        "GR",
        position=(48.0, 20.0),
        greedy=GreedyConfig.ack_spoofer(victims={"NR"}) if spoof else None,
    )
    for src, dst in (("NS", "NR"), ("GS", "GR")):
        _apply_profile(s, src, dst)
    # The spoofer overhears NS's data on its own (clean) path.
    if autorate:
        s.enable_autorate(["NS", "GS"])
    snd0, rcv0 = s.tcp_flow("NS", "NR")
    snd1, rcv1 = s.tcp_flow("GS", "GR")
    snd0.start()
    snd1.start()
    s.run(duration_s)
    us = duration_s * US_PER_S
    out = {
        "goodput_NR": rcv0.goodput_mbps(us),
        "goodput_GR": rcv1.goodput_mbps(us),
    }
    if autorate:
        out["ns_rate_final"] = s.macs["NS"].rate_controller.rate_for("NR")
    else:
        out["ns_rate_final"] = 2.0
    return out


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    duration = max(settings.duration_s, 3.0)
    result = ExperimentResult(
        name="Extension: auto-rate",
        description=(
            "Interactions between ARF rate adaptation and the misbehaviors, "
            "as predicted in the paper's conclusion: fake ACKs backfire "
            "under auto-rate; ACK spoofing hits the victim harder"
        ),
        columns=["scenario", "case", "goodput_NR", "goodput_GR", "rate_final"],
    )
    fake_cases = (
        ("fixed 2Mbps, honest", False, False),
        ("fixed 2Mbps, fake ACKs", True, False),
        ("ARF, honest", False, True),
        ("ARF, fake ACKs", True, True),
    )
    for case, greedy, autorate in fake_cases:
        med = median_over_seeds(
            seed_job(
                run_fake_ack_autorate,
                duration_s=duration,
                greedy=greedy,
                autorate=autorate,
            ),
            settings.seeds,
        )
        result.add_row(
            scenario="fake-ack",
            case=case,
            goodput_NR=med["goodput_R0"],
            goodput_GR=med["goodput_R1"],
            rate_final=med["gs_rate_final"],
        )
    spoof_cases = (
        ("fixed 2Mbps, honest", False, False),
        ("fixed 2Mbps, spoofing", True, False),
        ("ARF, honest", False, True),
        ("ARF, spoofing", True, True),
    )
    for case, spoof, autorate in spoof_cases:
        med = median_over_seeds(
            seed_job(
                run_spoof_autorate,
                duration_s=duration,
                spoof=spoof,
                autorate=autorate,
            ),
            settings.seeds,
        )
        result.add_row(
            scenario="spoof",
            case=case,
            goodput_NR=med["goodput_NR"],
            goodput_GR=med["goodput_GR"],
            rate_final=med["ns_rate_final"],
        )
    return result
