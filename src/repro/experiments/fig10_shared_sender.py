"""Figure 10: one sender serving both the greedy and the normal receiver.

Head-of-line blocking at the shared sender limits (but does not eliminate)
the greedy receiver's gain under TCP; under UDP with equal CBR rates both
flows simply lose as the inflated NAV stalls the shared queue.

Three sub-experiments: (a) TCP with 2 receivers, (b) TCP with 8 receivers,
(c) UDP with 2 receivers.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_nav_shared_sender, seed_job
from repro.mac.frames import FrameKind
from repro.stats import ExperimentResult, median_over_seeds

FULL_NAV_MS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 31.0)
QUICK_NAV_MS = (0.0, 10.0, 31.0)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    nav_values = QUICK_NAV_MS if settings.is_quick else FULL_NAV_MS
    result = ExperimentResult(
        name="Figure 10",
        description=(
            "One sender to multiple receivers, one of which inflates CTS NAV "
            "(802.11b): (a) TCP 2 rx, (b) TCP 8 rx, (c) UDP 2 rx; "
            "goodput_NR is the mean over normal receivers"
        ),
        columns=["subfigure", "nav_inflation_ms", "goodput_NR", "goodput_GR"],
    )
    cases = (
        ("a:tcp-2rx", "tcp", 2),
        ("b:tcp-8rx", "tcp", 8),
        ("c:udp-2rx", "udp", 2),
    )
    for label, transport, n_receivers in cases:
        # The 8-receiver TCP case converges slowly: the greedy receiver's
        # edge only appears once the other flows' congestion windows have
        # collapsed through repeated RTOs, so give it more simulated time.
        duration_s = settings.duration_s if n_receivers == 2 else max(
            settings.duration_s, 8.0
        )
        for nav_ms in nav_values:
            med = median_over_seeds(
                seed_job(
                    run_nav_shared_sender,
                    duration_s=duration_s,
                    transport=transport,
                    nav_inflation_us=nav_ms * 1000.0,
                    inflate_frames=(FrameKind.CTS,),
                    n_receivers=n_receivers,
                ),
                settings.seeds,
            )
            normals = [med[f"goodput_R{i}"] for i in range(n_receivers - 1)]
            result.add_row(
                subfigure=label,
                nav_inflation_ms=nav_ms,
                goodput_NR=sum(normals) / len(normals),
                goodput_GR=med[f"goodput_R{n_receivers - 1}"],
            )
    return result
