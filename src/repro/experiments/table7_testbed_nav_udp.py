"""Table VII (testbed): UDP NAV inflation via injected ACK/CTS frames.

Three rows as in the paper: ACK inflation without RTS/CTS, CTS inflation
with RTS/CTS, and both.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, seed_job
from repro.stats import ExperimentResult, median_over_seeds
from repro.testbed.emulation import table7_nav_udp

VARIANTS = (
    ("no RTS/CTS, inflated NAV on ACK", "ack_no_rtscts"),
    ("with RTS/CTS, inflated NAV on CTS", "cts"),
    ("with RTS/CTS, inflated NAV on CTS/ACK", "cts_ack"),
)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    result = ExperimentResult(
        name="Table VII",
        description=(
            "UDP goodput (Mbps) when GR inflates NAV to the maximum "
            "(802.11a testbed emulation); R1 is greedy in the '1 GR' runs"
        ),
        columns=["variant", "case", "goodput_R1", "goodput_R2"],
    )
    for label, variant in VARIANTS:
        for case, greedy in (("no GR", False), ("1 GR", True)):
            med = median_over_seeds(
                seed_job(
                    table7_nav_udp,
                    variant=variant,
                    greedy=greedy,
                    duration_s=settings.duration_s,
                ),
                settings.seeds,
            )
            result.add_row(
                variant=label, case=case, goodput_R1=med["R1"], goodput_R2=med["R2"]
            )
    return result
