"""Figure 3: analytic model (Equations 1-2) vs simulated RTS sending ratio.

The paper validates its sending-probability model by plugging the contention
window distributions *measured in simulation* into Equations (1)-(2) and
comparing the predicted RTS sending ratio with the measured one.  We do the
same: one simulation per inflation value yields both the measured ratio and
the CW histograms that feed the model.
"""

from __future__ import annotations

from repro.core.greedy import GreedyConfig
from repro.core.model import sending_ratio
from repro.experiments.common import RunSettings, experiment_api, US_PER_S
from repro.mac.frames import FrameKind
from repro.net.scenario import Scenario
from repro.stats import ExperimentResult, median

FULL_SLOTS = (0, 2, 5, 10, 15, 20, 25, 31)
QUICK_SLOTS = (0, 10, 25)
SLOT_US = 20.0


def _one_run(seed: int, duration_s: float, v_slots: int) -> tuple[float, float]:
    """Return (measured GS share, model-predicted GS share)."""
    s = Scenario(seed=seed)
    s.add_wireless_node("NS")
    s.add_wireless_node("GS")
    s.add_wireless_node("NR")
    greedy = None
    if v_slots > 0:
        greedy = GreedyConfig.nav_inflator(
            v_slots * SLOT_US, {FrameKind.CTS, FrameKind.ACK}
        )
    s.add_wireless_node("GR", greedy=greedy)
    src1, _sink1 = s.udp_flow("NS", "NR")
    src2, _sink2 = s.udp_flow("GS", "GR")
    src1.start()
    src2.start()
    s.run(duration_s)
    ns, gs = s.macs["NS"].stats, s.macs["GS"].stats
    total_rts = ns.tx_rts + gs.tx_rts
    measured = gs.tx_rts / total_rts if total_rts else 0.5
    dist_gs = gs.cw_distribution()
    dist_ns = ns.cw_distribution()
    if not dist_ns:  # NS never transmitted: it was fully starved
        dist_ns = {s.phy.cw_min: 1.0}
    predicted, _ = sending_ratio(dist_gs, dist_ns, float(v_slots))
    return measured, predicted


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    slots = QUICK_SLOTS if settings.is_quick else FULL_SLOTS
    result = ExperimentResult(
        name="Figure 3",
        description=(
            "RTS sending ratio GS/(GS+NS) between two competing UDP flows: "
            "simulation vs the Equation (1)-(2) model fed with measured CW "
            "distributions (802.11b)"
        ),
        columns=["v_slots", "measured_gs_share", "model_gs_share", "abs_error"],
    )
    for v in slots:
        runs = [_one_run(seed, settings.duration_s, v) for seed in settings.seeds]
        measured = median([r[0] for r in runs])
        predicted = median([r[1] for r in runs])
        result.add_row(
            v_slots=v,
            measured_gs_share=measured,
            model_gs_share=predicted,
            abs_error=abs(measured - predicted),
        )
    return result
