"""Figure 7: greedy percentage sweep under TCP NAV inflation.

A stealthy greedy receiver that only manipulates a fraction GP of its CTS
frames still gains substantially — at GP 50 % with 10 ms inflation its lead
is already ~2 Mbps.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, experiment_api, run_nav_pairs, seed_job
from repro.mac.frames import FrameKind
from repro.stats import ExperimentResult, median_over_seeds

FULL_GP = (0.0, 12.5, 25.0, 37.5, 50.0, 62.5, 75.0, 87.5, 100.0)
QUICK_GP = (0.0, 50.0, 100.0)
NAV_MS = (5.0, 10.0, 31.0)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    gps = QUICK_GP if settings.is_quick else FULL_GP
    nav_values = (10.0, 31.0) if settings.is_quick else NAV_MS
    result = ExperimentResult(
        name="Figure 7",
        description=(
            "Goodput of two TCP flows while GR inflates CTS NAV by 5/10/31 ms "
            "on a fraction GP of its CTS frames (802.11b)"
        ),
        columns=["nav_inflation_ms", "greedy_percentage", "goodput_NR", "goodput_GR"],
    )
    for nav_ms in nav_values:
        for gp in gps:
            med = median_over_seeds(
                seed_job(
                    run_nav_pairs,
                    duration_s=settings.duration_s,
                    transport="tcp",
                    nav_inflation_us=nav_ms * 1000.0,
                    inflate_frames=(FrameKind.CTS,),
                    greedy_percentage=gp,
                ),
                settings.seeds,
            )
            result.add_row(
                nav_inflation_ms=nav_ms,
                greedy_percentage=gp,
                goodput_NR=med["goodput_R0"],
                goodput_GR=med["goodput_R1"],
            )
    return result
