"""Figure 8: goodput under 0, 1 or 2 greedy receivers (2 pairs, TCP).

With both receivers greedy, whoever grabs the medium first gets to silence
the other and keep re-grabbing it.
"""

from __future__ import annotations

# The per-seed runner is the shared campaign builder: one definition serves
# this figure, `repro campaign` specs (examples/campaigns/fig8_nav_ngr.toml)
# and the parallel engine alike.
from repro.campaign.builders import nav_pairs_sorted as seed_run
from repro.experiments.common import RunSettings, experiment_api, seed_job
from repro.stats import ExperimentResult, median_over_seeds

NAV_MS = (5.0, 10.0, 31.0)


@experiment_api
def run(settings: RunSettings) -> ExperimentResult:
    """Reproduce this artifact; quick-mode settings shrink sweeps/durations."""
    nav_values = (31.0,) if settings.is_quick else NAV_MS
    result = ExperimentResult(
        name="Figure 8",
        description=(
            "Goodput of two TCP flows under 0/1/2 greedy receivers inflating "
            "CTS NAV by 5/10/31 ms (802.11b); R1 is the (first) greedy one. "
            "goodput_hi/lo are per-seed sorted values: with two greedy "
            "receivers the winner alternates between seeds, so medians of "
            "raw per-receiver values would hide the winner-takes-all outcome"
        ),
        columns=[
            "nav_inflation_ms",
            "n_greedy",
            "goodput_R0",
            "goodput_R1",
            "goodput_hi",
            "goodput_lo",
        ],
    )

    for nav_ms in nav_values:
        for n_greedy in (0, 1, 2):
            med = median_over_seeds(
                seed_job(
                    seed_run,
                    duration_s=settings.duration_s,
                    nav_ms=nav_ms,
                    n_greedy=n_greedy,
                ),
                settings.seeds,
            )
            result.add_row(nav_inflation_ms=nav_ms, n_greedy=n_greedy, **med)
    return result
