"""Figure 8: goodput under 0, 1 or 2 greedy receivers (2 pairs, TCP).

With both receivers greedy, whoever grabs the medium first gets to silence
the other and keep re-grabbing it.
"""

from __future__ import annotations

from repro.experiments.common import RunSettings, run_nav_pairs, seed_job
from repro.mac.frames import FrameKind
from repro.stats import ExperimentResult, median_over_seeds

NAV_MS = (5.0, 10.0, 31.0)


def seed_run(
    seed: int, duration_s: float, nav_ms: float, n_greedy: int
) -> dict[str, float]:
    """One seeded point, sorted per-seed so the winner stays visible
    (module-level so the parallel engine can address it)."""
    out = run_nav_pairs(
        seed,
        duration_s,
        transport="tcp",
        nav_inflation_us=nav_ms * 1000.0 if n_greedy else 0.0,
        inflate_frames=(FrameKind.CTS,),
        n_greedy=max(n_greedy, 1),
    )
    hi, lo = sorted((out["goodput_R0"], out["goodput_R1"]), reverse=True)
    return {
        "goodput_R0": out["goodput_R0"],
        "goodput_R1": out["goodput_R1"],
        "goodput_hi": hi,
        "goodput_lo": lo,
    }


def run(quick: bool = False) -> ExperimentResult:
    """Reproduce this artifact; ``quick`` shrinks sweeps/durations for CI."""
    settings = RunSettings.for_mode(quick)
    nav_values = (31.0,) if quick else NAV_MS
    result = ExperimentResult(
        name="Figure 8",
        description=(
            "Goodput of two TCP flows under 0/1/2 greedy receivers inflating "
            "CTS NAV by 5/10/31 ms (802.11b); R1 is the (first) greedy one. "
            "goodput_hi/lo are per-seed sorted values: with two greedy "
            "receivers the winner alternates between seeds, so medians of "
            "raw per-receiver values would hide the winner-takes-all outcome"
        ),
        columns=[
            "nav_inflation_ms",
            "n_greedy",
            "goodput_R0",
            "goodput_R1",
            "goodput_hi",
            "goodput_lo",
        ],
    )

    for nav_ms in nav_values:
        for n_greedy in (0, 1, 2):
            med = median_over_seeds(
                seed_job(
                    seed_run,
                    duration_s=settings.duration_s,
                    nav_ms=nav_ms,
                    n_greedy=n_greedy,
                ),
                settings.seeds,
            )
            result.add_row(nav_inflation_ms=nav_ms, n_greedy=n_greedy, **med)
    return result
