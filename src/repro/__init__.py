"""Reproduction of "Greedy Receivers in IEEE 802.11 Hotspots: Impacts and
Detection" (Mi Kyung Han and Lili Qiu, DSN 2007).

Package map
-----------

* :mod:`repro.sim` — discrete-event engine and reproducible RNG streams.
* :mod:`repro.phy` — 802.11b/a timing, broadcast medium, capture, BER loss.
* :mod:`repro.mac` — full IEEE 802.11 DCF (NAV, backoff, RTS/CTS, retries).
* :mod:`repro.transport` — CBR/UDP and TCP Reno agents.
* :mod:`repro.net` — nodes, wired links, and the :class:`~repro.net.Scenario`
  builder.
* :mod:`repro.core` — **the paper's contribution**: greedy receiver
  misbehaviors (NAV inflation, ACK spoofing, fake ACKs), the GRC detection
  and mitigation suite, and the analytic model of Equations (1)-(2).
* :mod:`repro.testbed` — models substituting for the paper's hardware testbed
  (frame-corruption address survival, RSSI measurements, MadWifi emulations).
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart
----------

>>> from repro import GreedyConfig, Scenario
>>> s = Scenario(seed=1)
>>> for name in ("NS", "NR", "GS"):
...     _ = s.add_wireless_node(name)
>>> _ = s.add_wireless_node("GR", greedy=GreedyConfig.nav_inflator(10_000.0))
>>> src1, _sink1 = s.udp_flow("NS", "NR")
>>> src2, _sink2 = s.udp_flow("GS", "GR")
>>> src1.start(); src2.start()
>>> s.run(1.0)  # the greedy receiver's flow now dominates the medium
"""

from repro.core.greedy import GreedyConfig, GreedyReceiverPolicy
from repro.core.detection import DetectionReport
from repro.experiments.common import RunSettings
from repro.net.scenario import Scenario
from repro.obs import MetricsRegistry, TelemetrySnapshot, capture
from repro.phy.channel import ChannelConfig, use_channel
from repro.phy.params import dot11a, dot11b
from repro.phy.profiles import resolve_phy
from repro.stats.summary import ExperimentResult
from repro.stats.trace import FrameTracer

__version__ = "1.0.0"

__all__ = [
    "GreedyConfig",
    "GreedyReceiverPolicy",
    "DetectionReport",
    "Scenario",
    "ChannelConfig",
    "use_channel",
    "RunSettings",
    "ExperimentResult",
    "MetricsRegistry",
    "TelemetrySnapshot",
    "capture",
    "FrameTracer",
    "resolve_phy",
    "dot11a",
    "dot11b",
    "__version__",
]
