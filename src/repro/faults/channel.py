"""Gilbert–Elliott bursty-error channel, layered over the base FER model.

The base :class:`repro.phy.error.BitErrorModel` is memoryless: every frame
rolls independently.  Real fades are bursty — a deep fade corrupts *runs*
of consecutive frames, which is exactly the regime where EIFS deferral and
NAV inflation interact pathologically (the paper's greedy receivers profit
most when honest stations keep deferring).  This module adds the classic
two-state model on top: per directed link, a GOOD/BAD Markov chain advanced
once per delivered frame, with a per-state frame error rate.

Determinism: all draws come from the dedicated ``faults.channel`` RNG
stream, and exactly two draws happen per applicable delivery (transition +
loss) regardless of state, so the draw sequence — and therefore every
downstream event — is a pure function of (seed, config, traffic).  The
base medium stream is never touched; a run with the channel *disabled* is
bit-identical to one on a build without this module.
"""

from __future__ import annotations

import random
from typing import Any

from repro.faults.plan import GilbertElliottConfig


class GilbertElliottChannel:
    """Per-directed-link two-state burst-error process."""

    def __init__(
        self,
        config: GilbertElliottConfig,
        rng: random.Random,
        addr_dst_survival: float,
        addr_src_survival: float,
        obs: Any = None,
    ) -> None:
        self.config = config
        self.rng = rng
        self.addr_dst_survival = addr_dst_survival
        self.addr_src_survival = addr_src_survival
        self.obs = obs
        self.corrupted_frames = 0
        self.transitions_to_bad = 0
        self._bad: dict[tuple[str, str], bool] = {}
        self._links = None if config.links is None else set(config.links)

    def on_deliver(
        self, sender: str, receiver: str, corrupted: bool, addr_ok: bool
    ) -> tuple[bool, bool]:
        """Advance the link's chain and possibly corrupt this delivery.

        Called by :meth:`repro.phy.medium.Medium._deliver` after the base
        collision/FER verdict; may only flip a clean frame to corrupted,
        never launder a corrupted one.  When this model (and not the base
        one) corrupts the frame, the address-survival roll (paper Table I)
        comes from the fault stream too.
        """
        link = (sender, receiver)
        if self._links is not None and link not in self._links:
            return corrupted, addr_ok
        config = self.config
        rng_random = self.rng.random
        bad = self._bad.get(link, False)
        if bad:
            if rng_random() < config.p_bad_to_good:
                bad = False
        elif rng_random() < config.p_good_to_bad:
            bad = True
            self.transitions_to_bad += 1
        self._bad[link] = bad
        fer = config.fer_bad if bad else config.fer_good
        hit = rng_random() < fer  # always one loss draw: stable sequence
        if hit and not corrupted:
            corrupted = True
            addr_ok = (
                rng_random() < self.addr_dst_survival
                and rng_random() < self.addr_src_survival
            )
            self.corrupted_frames += 1
            if self.obs is not None:
                self.obs.inc("faults.channel.corrupted_frames")
        return corrupted, addr_ok

    def state_of(self, sender: str, receiver: str) -> str:
        """Current chain state of a link ("good"/"bad"), for tests/debugging."""
        return "bad" if self._bad.get((sender, receiver), False) else "good"
