"""Declarative fault plans: which impairments to inject, with what knobs.

A :class:`FaultPlan` is plain frozen data — experiments and campaign
builders construct one from scalar parameters, hand it to
:meth:`repro.net.scenario.Scenario.install_faults`, and the injector wires
the individual models in.  Keeping the plan declarative (no callables, no
RNG state) means two scenarios built from equal plans and equal seeds are
bit-identical, which is the determinism contract the whole fault subsystem
rests on (tests/test_faults.py holds it down).

All models are **off by default**: a scenario that never calls
``install_faults`` takes the exact pre-fault code paths (the golden traces
in tests/golden/ pin this byte-for-byte).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.params import MAX_NAV_US


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class GilbertElliottConfig:
    """Two-state bursty-error channel layered over the base FER model.

    Every delivered frame advances a per-directed-link Markov chain between
    a GOOD and a BAD state and is then corrupted with the state's frame
    error rate.  The classic parametrisation: long mostly-clean stretches
    (GOOD, ``fer_good``) interrupted by short deep fades (BAD, ``fer_bad``)
    whose mean lengths are ``1/p_good_to_bad`` and ``1/p_bad_to_good``
    frames respectively.
    """

    p_good_to_bad: float = 0.05
    p_bad_to_good: float = 0.30
    fer_good: float = 0.0
    fer_bad: float = 0.8
    #: Directed (sender, receiver) links the chain applies to; None = all.
    links: tuple[tuple[str, str], ...] | None = None

    def __post_init__(self) -> None:
        _check_probability("p_good_to_bad", self.p_good_to_bad)
        _check_probability("p_bad_to_good", self.p_bad_to_good)
        _check_probability("fer_good", self.fer_good)
        _check_probability("fer_bad", self.fer_bad)


@dataclass(frozen=True)
class JammerConfig:
    """A MAC-less station that periodically blasts undecodable energy.

    Each burst occupies the medium for ``burst_us``; receivers that were
    locked onto a real frame see it collide, everyone else defers (carrier
    sense) and then EIFS-defers after the corrupted "frame" ends — the same
    mechanics a real interferer triggers.  ``jitter_us`` adds a uniform
    random extra gap per period (drawn from the dedicated ``faults.jammer``
    stream, so enabling it perturbs no other RNG draws).
    """

    period_us: float = 20_000.0
    burst_us: float = 2_000.0
    start_us: float = 1_000.0
    jitter_us: float = 0.0
    name: str = "JAMMER"
    position: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.burst_us <= 0:
            raise ValueError(f"burst_us must be positive, got {self.burst_us}")
        if self.period_us <= self.burst_us:
            raise ValueError(
                f"period_us ({self.period_us}) must exceed burst_us "
                f"({self.burst_us}) or bursts would overlap themselves"
            )
        if self.jitter_us < 0:
            raise ValueError(f"jitter_us must be >= 0, got {self.jitter_us}")
        if self.start_us < 0:
            raise ValueError(f"start_us must be >= 0, got {self.start_us}")


@dataclass(frozen=True)
class CrashConfig:
    """Crash (and optionally reboot) one station at a fixed simulation time.

    A crash resets the MAC mid-exchange: queued MSDUs are dropped, pending
    timers cancelled, the NAV cleared and any reception in progress lost.
    With ``reboot_after_s`` the station comes back with fresh DCF state and
    re-joins contention as traffic arrives.
    """

    node: str
    at_s: float
    reboot_after_s: float | None = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"at_s must be >= 0, got {self.at_s}")
        if self.reboot_after_s is not None and self.reboot_after_s <= 0:
            raise ValueError(
                f"reboot_after_s must be positive, got {self.reboot_after_s}"
            )


@dataclass(frozen=True)
class RtsFloodConfig:
    """RTS-flood attacker: large-NAV RTS frames to a receiver that never
    replies (the first attack-zoo entry; model in
    :mod:`repro.faults.rtsflood`).

    Every overhearer honors the claimed reservation, so the channel is
    reserved over and over while the attacker pays only the RTS airtime.
    ``nav_us`` is the reservation each RTS claims (clamped to the 802.11
    duration-field maximum), ``period_us`` the flood period; the duty cycle
    of *claimed* airtime is ``nav_us / period_us``.  ``jitter_us`` adds a
    uniform random extra gap per period drawn from the dedicated
    ``faults.rtsflood`` stream.
    """

    period_us: float = 2_000.0
    nav_us: float = 30_000.0
    start_us: float = 1_000.0
    jitter_us: float = 0.0
    name: str = "FLOODER"
    dst: str = "__absent__"
    position: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.period_us <= 0:
            raise ValueError(f"period_us must be positive, got {self.period_us}")
        if not 0 < self.nav_us <= MAX_NAV_US:
            raise ValueError(
                f"nav_us must be in (0, {MAX_NAV_US}], got {self.nav_us}"
            )
        if self.jitter_us < 0:
            raise ValueError(f"jitter_us must be >= 0, got {self.jitter_us}")
        if self.start_us < 0:
            raise ValueError(f"start_us must be >= 0, got {self.start_us}")


@dataclass(frozen=True)
class FaultPlan:
    """The complete impairment configuration of one scenario.

    ``rts_flood`` (an attack-zoo entry, see :mod:`repro.faults.rtsflood`)
    rides the same plan: attacks are impairments with intent, and keeping
    them declarative buys the same bit-identical-replay guarantee.
    """

    channel: GilbertElliottConfig | None = None
    jammer: JammerConfig | None = None
    crashes: tuple[CrashConfig, ...] = ()
    rts_flood: RtsFloodConfig | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))

    @property
    def empty(self) -> bool:
        return (
            self.channel is None
            and self.jammer is None
            and not self.crashes
            and self.rts_flood is None
        )
