"""Chaos harness: prove campaign execution self-heals under injected faults.

The tier above :mod:`repro.runtime`'s unit-level fault tolerance: run a real
campaign while actively sabotaging it, then check the damage never reached
the science.  One :func:`run_chaos` call drives four phases under one root
directory:

1. **reference** — the campaign fault-free, with its own result cache.
2. **chaos** — the same spec against a fresh cache, through a caller-owned
   :class:`~repro.runtime.WorkerPool` that saboteur threads attack mid-run:
   SIGKILL a worker while a job is in flight, truncate result-cache entries
   as they appear on disk, and (profiles with ``hang=True``) make every
   job's first attempt park forever so the watchdog must kill it.
3. **heal** — re-run against the sabotaged cache into a fresh output
   directory: corrupt entries are quarantined and recomputed, intact ones
   replay, and the metrics must still match.
4. **recover** — truncate the chaos run's ``manifest.json`` mid-byte and
   resume: the ``.bak`` rotation restores it and zero points re-execute.

The acceptance bar is byte-identity: the per-point payloads (per-seed
metrics + medians) of phases 1–3 are compared as canonical JSON.  Retried
jobs re-run identical :class:`~repro.runtime.JobSpec`\\ s and every
simulation RNG is seed-derived, so any difference is a real robustness bug,
not noise.  :data:`PROFILES` ships a ``quick`` profile (worker kill + cache
truncation + manifest recovery; the CI ``chaos-smoke`` job) and a ``full``
profile that adds hung-job injection via the ``chaos_sleeper`` builder.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.campaign.manifest import Manifest
from repro.campaign.runner import (
    manifest_path,
    metrics_fingerprint,
    point_path,
    run_campaign,
)
from repro.campaign.spec import spec_from_dict
from repro.runtime import RetryPolicy, WorkerPool

#: Environment variable the ``chaos_sleeper`` builder checks for hang-once
#: injection; its value is the directory for the flag-file handshake.
HANG_ENV = "REPRO_CHAOS_HANG_ONCE"

#: How often saboteur threads poll for something to break.
_SABOTEUR_POLL_S = 0.005


def _default_retry() -> RetryPolicy:
    """Chaos default: tight backoff (tests stay fast), generous rebuilds."""
    return RetryPolicy(
        max_attempts=3,
        backoff_base_s=0.05,
        backoff_max_s=0.25,
        max_pool_rebuilds=8,
    )


@dataclass(frozen=True)
class ChaosProfile:
    """One chaos scenario: the campaign to disturb, and how hard."""

    name: str
    #: Campaign spec as plain data (the TOML document shape).
    spec: Mapping[str, Any]
    jobs: int = 2
    #: Workers to SIGKILL while a job is in flight.
    worker_kills: int = 1
    #: Result-cache entries to truncate mid-run.
    cache_truncations: int = 1
    #: Also truncate manifest.json afterwards and prove --resume recovers.
    recover_manifest: bool = True
    #: Park every job's first attempt (needs a ``retry.timeout_s``).
    hang: bool = False
    retry: RetryPolicy = field(default_factory=_default_retry)


PROFILES: dict[str, ChaosProfile] = {
    # CI smoke: a real-simulator campaign surviving a worker kill and a
    # truncated cache entry, plus manifest .bak recovery.
    "quick": ChaosProfile(
        name="quick",
        spec={
            "campaign": {
                "name": "chaos-quick",
                "builder": "nav_pairs",
                "seeds": [1, 2, 3],
                "duration_s": 0.2,
            },
            "params": {"transport": "udp"},
            "zip": {"alpha": [0, 3, 6], "nav_inflation_us": [0.0, 300.0, 600.0]},
        },
    ),
    # Adds hung-job injection: every first attempt parks, the watchdog kills
    # it, and the retry completes with identical metrics.
    "full": ChaosProfile(
        name="full",
        spec={
            "campaign": {
                "name": "chaos-full",
                "builder": "chaos_sleeper",
                "seeds": [1, 2, 3, 4],
                "duration_s": 0.1,
            },
            "params": {"work_s": 0.15},
            "sweep": {"point": [0, 1, 2]},
        },
        worker_kills=2,
        cache_truncations=2,
        hang=True,
        retry=RetryPolicy(
            max_attempts=4,
            timeout_s=2.0,
            backoff_base_s=0.05,
            backoff_max_s=0.25,
            max_pool_rebuilds=16,
        ),
    ),
}


@dataclass
class ChaosReport:
    """What was injected, what the campaign did about it, and the verdict."""

    profile: str
    points: int
    workers_killed: int
    cache_entries_truncated: int
    cache_entries_quarantined: int
    manifest_recovered: bool | None  # None: phase not run for this profile
    watchdog_kills: int
    retries_recorded: int  # sum of per-point `retries` in the chaos manifest
    pool_rebuilds: int
    degraded_to_serial: bool
    identical: bool
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every injected fault landed and none of them changed a metric."""
        return not self.problems

    def summary_lines(self) -> list[str]:
        verdict = "OK" if self.ok else "FAILED"
        lines = [
            f"chaos[{self.profile}] {verdict}: {self.points} points, "
            f"{self.workers_killed} worker(s) killed, "
            f"{self.cache_entries_truncated} cache entr(ies) truncated "
            f"({self.cache_entries_quarantined} quarantined on heal)",
            f"  retries recorded in manifest: {self.retries_recorded}, "
            f"pool rebuilds: {self.pool_rebuilds}, "
            f"watchdog kills: {self.watchdog_kills}, "
            f"degraded to serial: {self.degraded_to_serial}",
            "  metrics identical across reference/chaos/heal: "
            + ("yes" if self.identical else "NO"),
        ]
        if self.manifest_recovered is not None:
            lines.append(
                "  manifest .bak recovery after truncation: "
                + ("yes" if self.manifest_recovered else "NO")
            )
        for problem in self.problems:
            lines.append(f"  problem: {problem}")
        return lines


# -------------------------------------------------------------- saboteurs ----


def _kill_worker_mid_job(
    pool: WorkerPool, stop: threading.Event, target: int, tally: dict[str, int]
) -> None:
    """SIGKILL ``target`` workers, each while at least one job is in flight.

    Waiting for ``inflight_count() > 0`` guarantees the break is observed as
    a mid-job pool failure (a free retry lands in the manifest), not as an
    idle-time break discovered at the next submit.
    """
    while not stop.is_set() and tally["killed"] < target:
        pids = pool.worker_pids()
        if pids and pool.inflight_count() > 0:
            try:
                os.kill(pids[0], signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
            else:
                tally["killed"] += 1
                time.sleep(0.3)  # let the pool notice and rebuild first
                continue
        time.sleep(_SABOTEUR_POLL_S)


def _truncate_cache_entries(
    cache_dir: Path, stop: threading.Event, target: int, tally: dict[str, Any]
) -> None:
    """Truncate ``target`` distinct cache entry files as they appear."""
    while not stop.is_set() and tally["truncated"] < target:
        _truncate_some(cache_dir, 1, tally)
        time.sleep(_SABOTEUR_POLL_S)


def _truncate_some(cache_dir: Path, count: int, tally: dict[str, Any]) -> int:
    """Cut ``count`` not-yet-sabotaged entries in half; returns how many."""
    done = 0
    if not cache_dir.exists():
        return done
    for path in sorted(cache_dir.glob("*.json")):
        if done >= count:
            break
        if path.name in tally["names"]:
            continue
        try:
            data = path.read_bytes()
            if len(data) < 8:
                continue
            path.write_bytes(data[: len(data) // 2])
        except OSError:
            continue
        tally["names"].add(path.name)
        tally["truncated"] += 1
        done += 1
    return done


# ------------------------------------------------------------- comparison ----


def _compare(
    reference: dict[str, str], other: dict[str, str], label: str
) -> list[str]:
    problems = []
    if set(reference) != set(other):
        problems.append(
            f"{label}: point set differs from reference "
            f"(missing {sorted(set(reference) - set(other))}, "
            f"extra {sorted(set(other) - set(reference))})"
        )
    for pid in sorted(set(reference) & set(other)):
        if reference[pid] != other[pid]:
            problems.append(f"{label}: metrics of point {pid} differ from reference")
    return problems


# ------------------------------------------------------------------ drive ----


def run_chaos(
    profile: ChaosProfile | str,
    root: str | Path,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Run one chaos profile under ``root``; returns the verdict report.

    Never raises on a robustness failure — every broken expectation lands in
    :attr:`ChaosReport.problems` so callers (CLI, CI, tests) can show all of
    them at once.
    """
    if isinstance(profile, str):
        try:
            profile = PROFILES[profile]
        except KeyError:
            raise KeyError(
                f"unknown chaos profile {profile!r}; known: {sorted(PROFILES)}"
            ) from None
    say = progress if progress is not None else lambda _message: None
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    spec = spec_from_dict(profile.spec, source=f"<chaos:{profile.name}>")

    say(f"[chaos:{profile.name}] reference run (fault-free)")
    reference = run_campaign(
        spec,
        out_dir=root / "reference",
        jobs=profile.jobs,
        cache_dir=root / "cache-reference",
    )

    chaos_out = root / "chaos"
    chaos_cache = root / "cache-chaos"
    killed = {"killed": 0}
    truncated: dict[str, Any] = {"truncated": 0, "names": set()}
    stop = threading.Event()
    pool = WorkerPool(jobs=profile.jobs, retry=profile.retry)
    saboteurs = []
    if profile.worker_kills:
        saboteurs.append(
            threading.Thread(
                target=_kill_worker_mid_job,
                args=(pool, stop, profile.worker_kills, killed),
                daemon=True,
            )
        )
    if profile.cache_truncations:
        saboteurs.append(
            threading.Thread(
                target=_truncate_cache_entries,
                args=(chaos_cache, stop, profile.cache_truncations, truncated),
                daemon=True,
            )
        )
    hang_installed = False
    try:
        if profile.hang:
            hang_dir = root / "hang-flags"
            hang_dir.mkdir(exist_ok=True)
            os.environ[HANG_ENV] = str(hang_dir)
            hang_installed = True
        for thread in saboteurs:
            thread.start()
        say(
            f"[chaos:{profile.name}] chaos run "
            f"({profile.worker_kills} worker kill(s), "
            f"{profile.cache_truncations} cache truncation(s)"
            + (", hang-once jobs" if profile.hang else "")
            + ")"
        )
        chaos = run_campaign(
            spec,
            out_dir=chaos_out,
            jobs=profile.jobs,
            cache_dir=chaos_cache,
            pool=pool,
        )
    finally:
        stop.set()
        for thread in saboteurs:
            thread.join(timeout=5.0)
        pool.shutdown()
        if hang_installed:
            del os.environ[HANG_ENV]

    chaos_manifest = Manifest.load(manifest_path(chaos_out))
    retries_recorded = sum(point.retries for point in chaos_manifest.points)
    faults = dict(chaos_manifest.faults)

    # If the run outpaced the truncator, sabotage the cache now — the heal
    # phase must exercise quarantine-and-recompute either way.
    if truncated["truncated"] < profile.cache_truncations:
        _truncate_some(
            chaos_cache,
            profile.cache_truncations - truncated["truncated"],
            truncated,
        )

    say(f"[chaos:{profile.name}] heal run (replay from the sabotaged cache)")
    heal = run_campaign(
        spec, out_dir=root / "healed", jobs=1, cache_dir=chaos_cache
    )
    quarantined = (heal.cache_stats or {}).get("quarantined", 0)

    manifest_recovered: bool | None = None
    if profile.recover_manifest:
        say(f"[chaos:{profile.name}] recovery run (manifest truncated mid-byte)")
        mpath = manifest_path(chaos_out)
        data = mpath.read_bytes()
        mpath.write_bytes(data[: len(data) // 2])
        resumed = run_campaign(
            spec, out_dir=chaos_out, resume=True, cache_dir=chaos_cache
        )
        manifest_recovered = (
            resumed.skipped == len(chaos_manifest.points)
            and resumed.executed == 0
            and resumed.failed == 0
        )

    problems: list[str] = []
    for label, summary in (
        ("reference", reference),
        ("chaos", chaos),
        ("heal", heal),
    ):
        if summary.failed:
            problems.append(f"{label} run has {summary.failed} failed point(s)")
    if killed["killed"] < profile.worker_kills:
        problems.append(
            f"only {killed['killed']}/{profile.worker_kills} worker kills landed"
        )
    if truncated["truncated"] < profile.cache_truncations:
        problems.append(
            f"only {truncated['truncated']}/{profile.cache_truncations} "
            "cache truncations landed"
        )
    if quarantined < truncated["truncated"]:
        problems.append(
            f"heal run quarantined {quarantined} entries, "
            f"expected at least {truncated['truncated']}"
        )
    if profile.worker_kills and retries_recorded == 0:
        problems.append("manifest records no retries despite worker kills")
    if profile.hang and faults.get("worker_kills", 0) == 0:
        problems.append("no watchdog kills despite hang-once injection")
    if manifest_recovered is False:
        problems.append("resume after manifest truncation did not skip all points")

    identical = True
    if not problems or all("run has" not in p for p in problems):
        prints = metrics_fingerprint(root / "reference")
        mismatches = _compare(prints, metrics_fingerprint(chaos_out), "chaos")
        mismatches += _compare(prints, metrics_fingerprint(root / "healed"), "heal")
        identical = not mismatches
        problems += mismatches
    else:  # a run failed outright; point payloads may be missing
        identical = False

    return ChaosReport(
        profile=profile.name,
        points=len(chaos_manifest.points),
        workers_killed=killed["killed"],
        cache_entries_truncated=truncated["truncated"],
        cache_entries_quarantined=quarantined,
        manifest_recovered=manifest_recovered,
        watchdog_kills=faults.get("worker_kills", 0),
        retries_recorded=retries_recorded,
        pool_rebuilds=faults.get("pool_rebuilds", 0),
        degraded_to_serial=bool(faults.get("degraded_to_serial", False)),
        identical=identical,
        problems=problems,
    )
