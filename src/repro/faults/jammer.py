"""Periodic/randomised jammer station: undecodable energy on the medium.

The jammer is a bare :class:`~repro.phy.medium.Radio` with no MAC — it does
not carrier-sense, defer or back off; it just transmits.  Its emissions are
:class:`JamFrame` instances, which the fault hook in
:meth:`repro.phy.medium.Medium._deliver` always marks as corrupted with
unreadable addresses, so receivers that lock onto a burst take the EIFS
deferral path and nothing else.  The interesting damage is indirect and
comes entirely from existing medium mechanics:

* a burst overlapping a real reception garbles it (collision),
* everyone in range sees carrier-busy for the burst duration and freezes
  their backoff — exactly what honest stations do, and exactly what greedy
  NAV inflation already exploits.

Timing is deterministic: bursts fire at ``start_us`` and then every
``period_us``, plus an optional uniform jitter drawn from the dedicated
``faults.jammer`` stream (never from the medium's RNG).
"""

from __future__ import annotations

import random
from typing import Any

from repro.faults.plan import JammerConfig
from repro.mac.frames import Frame, FrameKind
from repro.phy.medium import Medium, Radio
from repro.sim.engine import Simulator


class JamFrame(Frame):
    """A burst of meaningless energy; never decodable by construction."""

    __slots__ = ()
    jam = True

    def __init__(self, src: str, size_bytes: int = 0) -> None:
        super().__init__(FrameKind.DATA, src, "__noise__", 0.0, size_bytes)


class Jammer:
    """Schedules jam bursts on the engine for the lifetime of the run."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        config: JammerConfig,
        rng: random.Random,
        obs: Any = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.rng = rng
        self.obs = obs
        self.radio = Radio(medium, config.name, config.position)
        self.bursts = 0
        sim.call_at(config.start_us, self._burst)

    def _burst(self) -> None:
        config = self.config
        if not self.radio.transmitting:  # config guarantees this, but be safe
            self.radio.transmit(JamFrame(config.name), config.burst_us)
            self.bursts += 1
            if self.obs is not None:
                self.obs.inc("faults.jammer.bursts")
                self.obs.inc("faults.jammer.airtime_us", config.burst_us)
        delay = config.period_us
        if config.jitter_us > 0:
            delay += self.rng.random() * config.jitter_us
        self.sim.call_after(delay, self._burst)
