"""RTS-flood attacker: the first attack-zoo entry beyond the paper.

"Detection and Prevention Against RTS Attacks in Wireless LAN" (PAPERS.md)
names the attack: a station transmits a stream of RTS frames carrying large
NAV values addressed to a receiver that will never reply.  Every overhearer
honors the claimed reservation (virtual carrier sense), so the channel is
reserved over and over while the attacker pays only the RTS airtime — a
denial of service that needs no data traffic at all.  It is the sender-side
dual of the paper's greedy-receiver NAV inflation: same NAV lever, no
exchange behind it.

Mechanically the flooder follows the :class:`~repro.faults.jammer.Jammer`
pattern — a bare MAC-less :class:`~repro.phy.medium.Radio` that neither
carrier-senses nor backs off — but its frames are **real, decodable RTS
frames**: honest stations receive them cleanly, run NAV validation on them
if enabled, and defer.  Nobody answers (the destination does not exist), so
the flood shows up in a trace as RTS after RTS with no DATA behind them —
exactly the statistic
:class:`~repro.core.detection.streaming.StreamingRtsFloodDetector` keys on,
and the axis the ``ext_rts_roc`` campaign sweeps.

Timing is deterministic: floods start at ``start_us`` and repeat every
``period_us`` plus optional uniform jitter from the dedicated
``faults.rtsflood`` stream — enabling the flooder perturbs no other RNG
draws, so the clean goldens stay byte-identical.
"""

from __future__ import annotations

import random
from typing import Any

from repro.faults.plan import RtsFloodConfig
from repro.mac.frames import Frame, FrameKind, frame_size
from repro.phy.medium import Medium, Radio
from repro.sim.engine import Simulator


class RtsFlooder:
    """Schedules the RTS flood on the engine for the lifetime of the run."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        config: RtsFloodConfig,
        rng: random.Random,
        obs: Any = None,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.config = config
        self.rng = rng
        self.obs = obs
        self.radio = Radio(medium, config.name, config.position)
        self.frames_sent = 0
        sim.call_at(config.start_us, self._flood)

    def _flood(self) -> None:
        config = self.config
        if not self.radio.transmitting:  # period > rts_time for sane configs
            frame = Frame(
                FrameKind.RTS,
                config.name,
                config.dst,
                config.nav_us,
                frame_size(FrameKind.RTS),
            )
            self.radio.transmit(frame, self.medium.phy.rts_time)
            self.frames_sent += 1
            if self.obs is not None:
                self.obs.inc("faults.rtsflood.frames")
                self.obs.inc("faults.rtsflood.claimed_nav_us", config.nav_us)
        delay = config.period_us
        if config.jitter_us > 0:
            delay += self.rng.random() * config.jitter_us
        self.sim.call_after(delay, self._flood)
