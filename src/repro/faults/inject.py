"""FaultInjector: wires a :class:`~repro.faults.plan.FaultPlan` into a scenario.

One injector per scenario, created by
:meth:`repro.net.scenario.Scenario.install_faults`.  It instantiates the
enabled models with their dedicated RNG streams (``faults.channel``,
``faults.jammer``) and registers itself as ``medium.faults`` — but only when
a medium-level model is actually enabled, so a crash-only plan (or an empty
one) leaves the delivery hot path untouched, same zero-cost discipline as
``repro.obs``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.faults.channel import GilbertElliottChannel
from repro.faults.jammer import Jammer
from repro.faults.plan import FaultPlan
from repro.faults.rtsflood import RtsFlooder

if TYPE_CHECKING:
    from repro.net.scenario import Scenario
    from repro.phy.medium import Radio, _Transmission

US_PER_S = 1_000_000.0


class FaultInjector:
    """The live fault models of one scenario, plus their counters."""

    def __init__(self, scenario: "Scenario", plan: FaultPlan) -> None:
        self.plan = plan
        self.channel: GilbertElliottChannel | None = None
        self.jammer: Jammer | None = None
        self.rts_flooder: RtsFlooder | None = None
        medium = scenario.medium
        obs = scenario.obs
        if plan.channel is not None:
            self.channel = GilbertElliottChannel(
                plan.channel,
                scenario.streams.stream("faults.channel"),
                medium.addr_dst_survival,
                medium.addr_src_survival,
                obs=obs,
            )
        if plan.jammer is not None:
            self.jammer = Jammer(
                scenario.sim,
                medium,
                plan.jammer,
                scenario.streams.stream("faults.jammer"),
                obs=obs,
            )
        if plan.rts_flood is not None:
            # Real decodable frames on the normal delivery path — like the
            # jammer, no delivery hook is needed, so a flood-only plan keeps
            # ``medium.faults`` unset and the delivery hot path untouched.
            self.rts_flooder = RtsFlooder(
                scenario.sim,
                medium,
                plan.rts_flood,
                scenario.streams.stream("faults.rtsflood"),
                obs=obs,
            )
        for crash in plan.crashes:
            mac = scenario.macs.get(crash.node)
            if mac is None:
                raise ValueError(
                    f"fault plan crashes unknown node {crash.node!r}; "
                    "install_faults() must run after the nodes are added"
                )
            scenario.sim.call_at(crash.at_s * US_PER_S, mac.crash)
            if crash.reboot_after_s is not None:
                scenario.sim.call_at(
                    (crash.at_s + crash.reboot_after_s) * US_PER_S, mac.reboot
                )
        if self.channel is not None or self.jammer is not None:
            medium.faults = self

    def on_deliver(
        self,
        tx: "_Transmission",
        receiver: "Radio",
        frame: Any,
        corrupted: bool,
        addr_ok: bool,
    ) -> tuple[bool, bool]:
        """Medium delivery hook: the one entry point for channel impairments."""
        if getattr(frame, "jam", False):
            return True, False  # jam energy is never decodable
        if self.channel is not None:
            corrupted, addr_ok = self.channel.on_deliver(
                tx.sender.name, receiver.name, corrupted, addr_ok
            )
        return corrupted, addr_ok

    def counters(self) -> dict[str, int]:
        """Flat summary of what the models actually did (for experiments)."""
        out: dict[str, int] = {}
        if self.channel is not None:
            out["channel_corrupted_frames"] = self.channel.corrupted_frames
            out["channel_transitions_to_bad"] = self.channel.transitions_to_bad
        if self.jammer is not None:
            out["jammer_bursts"] = self.jammer.bursts
        if self.rts_flooder is not None:
            out["rtsflood_frames"] = self.rts_flooder.frames_sent
        return out
