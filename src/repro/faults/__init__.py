"""repro.faults — deterministic fault injection, two planes.

**Sim plane** (this package's models): seed-reproducible impairments that
plug into the scenario — a Gilbert–Elliott bursty-error channel
(:mod:`repro.faults.channel`), a periodic jammer station
(:mod:`repro.faults.jammer`) and station crash/reboot events
(:class:`~repro.faults.plan.CrashConfig`, executed by
:meth:`repro.mac.dcf.DcfMac.crash`).  All are off by default; a scenario
without ``install_faults`` is byte-identical to one on a pre-fault build
(golden traces pin this).

**Harness plane** (lives in :mod:`repro.runtime` / :mod:`repro.campaign`):
retries, timeouts, watchdog worker kills, cache quarantine and manifest
recovery.  The chaos harness that proves the harness plane end to end is
:mod:`repro.faults.chaos`.

DESIGN.md §11 documents the determinism guarantees of both planes.
"""

from repro.faults.channel import GilbertElliottChannel
from repro.faults.inject import FaultInjector
from repro.faults.jammer import JamFrame, Jammer
from repro.faults.plan import (
    CrashConfig,
    FaultPlan,
    GilbertElliottConfig,
    JammerConfig,
    RtsFloodConfig,
)
from repro.faults.rtsflood import RtsFlooder

# Harness-plane convenience re-export: the deterministic jittered backoff
# policy lives in repro.runtime.retry, but callers reaching for "how do I
# retry against faults" (the fleet HTTP client foremost) look here first.
from repro.runtime.retry import RetryPolicy

__all__ = [
    "CrashConfig",
    "FaultInjector",
    "FaultPlan",
    "GilbertElliottChannel",
    "GilbertElliottConfig",
    "JamFrame",
    "Jammer",
    "JammerConfig",
    "RetryPolicy",
    "RtsFloodConfig",
    "RtsFlooder",
]
