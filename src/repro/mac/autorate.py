"""Auto Rate Fallback (ARF) — the paper's future-work extension.

The paper's conclusion (Section IX) predicts how rate adaptation interacts
with the misbehaviors:

* **Fake ACKs** (misbehavior 3) *hurt* the greedy receiver under auto-rate:
  the faked feedback makes the sender step *up* to modulations the channel
  cannot support, so the greedy flow drowns in corruption.
* **ACK spoofing** (misbehavior 2) gets *worse* for the victim: spoofed ACKs
  keep the victim's sender at a rate the victim cannot actually receive, so
  the sender never falls back and the victim's losses compound.

ARF (Kamerman & Monteban) is the classic 802.11 rate-adaptation scheme: step
up after N consecutive ACKed transmissions, step down after M consecutive
failures, and immediately fall back if the first "probe" transmission at a
new rate fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: 802.11b data rates in Mbps.
DOT11B_RATES = (1.0, 2.0, 5.5, 11.0)
#: 802.11a data rates in Mbps (the subset most drivers probe).
DOT11A_RATES = (6.0, 12.0, 24.0, 36.0, 48.0, 54.0)


@dataclass
class _DstState:
    index: int
    successes: int = 0
    failures: int = 0
    probing: bool = False  # first transmission after a step up


class ArfRateController:
    """Per-destination ARF state machine.

    Install on a :class:`repro.mac.DcfMac` as ``mac.rate_controller``; the
    MAC calls :meth:`rate_for` when building each data frame and reports
    outcomes through :meth:`on_success` / :meth:`on_failure`.
    """

    def __init__(
        self,
        rates: tuple[float, ...] = DOT11B_RATES,
        success_threshold: int = 10,
        failure_threshold: int = 2,
        initial_index: int | None = None,
    ) -> None:
        if not rates or list(rates) != sorted(rates):
            raise ValueError("rates must be a non-empty ascending sequence")
        if success_threshold < 1 or failure_threshold < 1:
            raise ValueError("thresholds must be >= 1")
        self.rates = tuple(float(r) for r in rates)
        self.success_threshold = success_threshold
        self.failure_threshold = failure_threshold
        self.initial_index = (
            len(self.rates) - 1 if initial_index is None else initial_index
        )
        if not 0 <= self.initial_index < len(self.rates):
            raise ValueError("initial rate index out of range")
        self._state: dict[str, _DstState] = {}
        self.step_ups = 0
        self.step_downs = 0

    def _dst(self, dst: str) -> _DstState:
        state = self._state.get(dst)
        if state is None:
            state = _DstState(index=self.initial_index)
            self._state[dst] = state
        return state

    def rate_for(self, dst: str) -> float:
        """Current transmission rate toward ``dst`` (Mbps)."""
        return self.rates[self._dst(dst).index]

    def on_success(self, dst: str) -> None:
        """Record an ACKed transmission toward ``dst`` (may step the rate up)."""
        state = self._dst(dst)
        state.failures = 0
        state.probing = False
        state.successes += 1
        if (
            state.successes >= self.success_threshold
            and state.index < len(self.rates) - 1
        ):
            state.index += 1
            state.successes = 0
            state.probing = True  # next transmission probes the new rate
            self.step_ups += 1

    def on_failure(self, dst: str) -> None:
        """Record a failed transmission toward ``dst`` (may step the rate down)."""
        state = self._dst(dst)
        state.successes = 0
        if state.probing:
            # The probe at the new rate failed: fall straight back.
            state.probing = False
            state.failures = 0
            if state.index > 0:
                state.index -= 1
                self.step_downs += 1
            return
        state.failures += 1
        if state.failures >= self.failure_threshold:
            state.failures = 0
            if state.index > 0:
                state.index -= 1
                self.step_downs += 1
