"""Receiver-side behavior policy: the hook surface misbehaviors plug into.

A :class:`ReceiverPolicy` is consulted by :class:`repro.mac.DcfMac` at the
three points a *receiver* controls in 802.11:

* when building an outgoing frame (NAV inflation — misbehavior 1),
* when overhearing a data frame destined to someone else (ACK spoofing —
  misbehavior 2),
* when receiving a corrupted data frame destined to itself (fake ACKs —
  misbehavior 3).

The base class implements standard-compliant behavior; greedy variants live in
:mod:`repro.core.greedy`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mac.frames import Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.dcf import DcfMac


class ReceiverPolicy:
    """Standard (well-behaved) IEEE 802.11 receiver behavior."""

    def attach(self, mac: "DcfMac") -> None:
        """Called once when the policy is installed on a MAC."""
        self.mac = mac

    def outgoing_nav(self, frame: Frame) -> float:
        """Return the NAV to put in ``frame`` (already holds the correct one)."""
        return frame.duration

    def should_spoof_ack(self, data_frame: Frame) -> bool:
        """Whether to transmit an ACK on behalf of ``data_frame.dst``."""
        return False

    def should_fake_ack(self, corrupted_frame: Frame) -> bool:
        """Whether to ACK a corrupted frame addressed to this station."""
        return False
