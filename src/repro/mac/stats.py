"""Per-MAC counters and samples used by the paper's figures.

Figure 2 plots the *average contention window* of each sender; Figure 3 needs
the full CW distribution at transmission attempts (to feed Equations 1-2) and
the RTS sending counts; several tables need retry/drop accounting.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class MacStats:
    """Counters for one MAC instance."""

    tx_rts: int = 0
    tx_cts: int = 0
    tx_data: int = 0
    tx_ack: int = 0
    tx_spoofed_ack: int = 0
    tx_fake_ack: int = 0
    retries: int = 0
    drops: int = 0
    queue_drops: int = 0
    msdu_sent: int = 0
    rx_data_clean: int = 0
    rx_data_corrupted: int = 0
    rx_duplicates: int = 0
    acks_ignored_by_grc: int = 0
    # Fault-injection accounting (repro.faults): station crash/reboot events
    # and the MSDUs they cost (queue flushed at crash + arrivals while down).
    crashes: int = 0
    reboots: int = 0
    crash_dropped_msdus: int = 0
    cw_samples: list[int] = field(default_factory=list)
    cw_histogram: Counter = field(default_factory=Counter)
    # Per-destination data-transmission attempts and ACK failures, used by the
    # GRC fake-ACK detector to estimate per-transmission MAC loss rate.
    data_attempts_by_dst: Counter = field(default_factory=Counter)
    ack_failures_by_dst: Counter = field(default_factory=Counter)

    def mac_loss_rate(self, dst: str) -> float:
        """Observed per-transmission loss rate of data frames toward ``dst``."""
        attempts = self.data_attempts_by_dst[dst]
        if attempts == 0:
            return 0.0
        return self.ack_failures_by_dst[dst] / attempts

    def sample_cw(self, cw: int) -> None:
        """Record the contention window in force at a transmission attempt."""
        self.cw_samples.append(cw)
        self.cw_histogram[cw] += 1

    @property
    def average_cw(self) -> float:
        """Mean CW over all attempts (Figure 2 / Table IV metric)."""
        if not self.cw_samples:
            return 0.0
        return sum(self.cw_samples) / len(self.cw_samples)

    def as_metrics(self) -> dict[str, float]:
        """Flatten the counters for the telemetry gauge sweep.

        Keys become ``mac.<station>.<metric>`` entries in a
        :class:`repro.obs.TelemetrySnapshot`; set-semantics (gauges) so a
        repeated sweep never double counts.
        """
        return {
            "tx_rts": float(self.tx_rts),
            "tx_cts": float(self.tx_cts),
            "tx_data": float(self.tx_data),
            "tx_ack": float(self.tx_ack),
            "tx_spoofed_ack": float(self.tx_spoofed_ack),
            "tx_fake_ack": float(self.tx_fake_ack),
            "retries_total": float(self.retries),
            "drops_total": float(self.drops),
            "queue_drops": float(self.queue_drops),
            "msdu_sent": float(self.msdu_sent),
            "rx_data_clean": float(self.rx_data_clean),
            "rx_data_corrupted": float(self.rx_data_corrupted),
            "rx_duplicates": float(self.rx_duplicates),
            "acks_ignored_by_grc": float(self.acks_ignored_by_grc),
            "crashes": float(self.crashes),
            "reboots": float(self.reboots),
            "crash_dropped_msdus": float(self.crash_dropped_msdus),
            "avg_cw": self.average_cw,
        }

    def cw_distribution(self) -> dict[int, float]:
        """Empirical Pr[CW = m] over transmission attempts (Equations 1-2)."""
        total = sum(self.cw_histogram.values())
        if total == 0:
            return {}
        return {cw: count / total for cw, count in sorted(self.cw_histogram.items())}
