"""IEEE 802.11 DCF state machine.

One :class:`DcfMac` per station.  Implements, per IEEE 802.11-1999 and the
paper's Section II description:

* physical carrier sense (from the radio) and virtual carrier sense (NAV),
* DIFS deferral (EIFS after a corrupted reception), slotted backoff drawn
  uniformly from ``[0, CW]``, frozen while the medium is busy,
* binary exponential backoff: CW doubles after each failed transmission up to
  ``CW_max`` and resets to ``CW_min`` on success,
* optional RTS/CTS exchange, SIFS-separated CTS/DATA/ACK responses,
* retry limits (short for RTS, long for data) with packet drop at the limit,
* NAV updates from overheard frames — only when the frame is *not* addressed
  to this station and only when the new value exceeds the current one
  (the rule greedy receivers exploit, Section IV-A).

Misbehavior hooks are delegated to the installed
:class:`repro.mac.policy.ReceiverPolicy`; detection/mitigation hooks (GRC,
Section VII) are the optional ``nav_validator`` and ``ack_inspector``.
"""

from __future__ import annotations

from collections import deque
from functools import lru_cache
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:
    # Type annotations only.  The MAC never draws from the global ``random``
    # module: every stochastic decision (backoff slots) flows through the
    # per-scenario injected ``rng`` stream, so interleaving the construction
    # of two simulators can never perturb either one's results
    # (tests/test_rng_isolation.py holds this invariant down).
    import random

from repro.mac.frames import (
    Frame,
    FrameKind,
    ack_duration,
    cts_duration_from_rts,
    data_duration,
    frame_size,
    rts_duration,
)
from repro.mac.policy import ReceiverPolicy
from repro.mac.stats import MacStats
from repro.phy.medium import Radio
from repro.phy.params import PhyParams
from repro.sim.engine import Event, Simulator

@lru_cache(maxsize=None)
def dcf_transition_tables(
    slot_time: float, difs: float, eifs: float, cw_max: int
) -> tuple[tuple[float, ...], tuple[float, ...], tuple[int, ...]]:
    """Slot-level DCF lookup tables for the ``vectorized`` backend.

    Returns ``(difs_delay, eifs_delay, cw_next)``:

    * ``difs_delay[slots]`` / ``eifs_delay[slots]`` — the access delay
      ``ifs + slots * slot_time`` for every backoff count up to ``cw_max``.
      Precomputing uses the *same expression* the scalar path evaluates per
      access, so each entry is the identical float (no re-association).
    * ``cw_next[cw]`` — the binary-exponential-backoff successor
      ``min(2 * (cw + 1) - 1, cw_max)``, pure integer math.

    Cached per ``(slot_time, difs, eifs, cw_max)``, so every MAC sharing one
    PHY flavor shares one table set (~1024 floats each for 802.11b).  The
    scalar backend keeps the inline arithmetic; ``tests/test_vectorized_phy.py``
    pins table and arithmetic to each other over the full domain.
    """
    difs_delay = tuple(difs + slots * slot_time for slots in range(cw_max + 1))
    eifs_delay = tuple(eifs + slots * slot_time for slots in range(cw_max + 1))
    cw_next = tuple(min(2 * (cw + 1) - 1, cw_max) for cw in range(cw_max + 1))
    return difs_delay, eifs_delay, cw_next


# MAC states.
IDLE = "IDLE"  # nothing to transmit
CONTEND = "CONTEND"  # deferring / backing off toward a transmission
WAIT_CTS = "WAIT_CTS"  # RTS sent, awaiting CTS
SEND_DATA = "SEND_DATA"  # CTS received, data transmission queued at SIFS
WAIT_ACK = "WAIT_ACK"  # data sent, awaiting ACK


class _Msdu:
    """One queued upper-layer packet."""

    __slots__ = ("payload", "dst", "size_bytes", "seq")

    def __init__(self, payload: Any, dst: str, size_bytes: int, seq: int):
        self.payload = payload
        self.dst = dst
        self.size_bytes = size_bytes
        self.seq = seq


class DcfMac:
    """802.11 DCF MAC for one station."""

    def __init__(
        self,
        sim: Simulator,
        phy: PhyParams,
        radio: Radio,
        rng: random.Random,
        policy: ReceiverPolicy | None = None,
        rts_enabled: bool = True,
        queue_limit: int = 50,
        retransmissions_enabled: bool = True,
        cw_min: int | None = None,
        cw_max: int | None = None,
        eifs_enabled: bool = True,
        dcf_tables: bool = False,
    ) -> None:
        self.sim = sim
        self.phy = phy
        self.radio = radio
        radio.mac = self
        self.name = radio.name
        self.rng = rng
        self.policy = policy or ReceiverPolicy()
        self.policy.attach(self)
        self.rts_enabled = rts_enabled
        self.queue_limit = queue_limit
        #: False emulates the testbed's "disable MAC retransmissions" trick
        #: used to study ACK spoofing (Table VIII).
        self.retransmissions_enabled = retransmissions_enabled
        #: Destinations toward which MAC retransmission is disabled — the
        #: per-victim variant of the same testbed emulation.
        self.no_retransmit_to: set[str] = set()
        #: Per-destination CW_max override: ``{dst: cw_min}`` emulates the
        #: testbed's fake-ACK study (Table IX), where the sender never backs
        #: off when transmitting to the greedy receiver.
        self.cw_max_to: dict[str, int] = {}
        self.cw_min = phy.cw_min if cw_min is None else cw_min
        self.cw_max = phy.cw_max if cw_max is None else cw_max
        #: EIFS deferral after corrupted receptions (802.11 default: on).
        #: Exposed for the ablation study of the fake-ACK dynamics.
        self.eifs_enabled = eifs_enabled

        # GRC hooks (Section VII).  ``nav_validator`` corrects overheard NAVs;
        # ``ack_inspector`` vets incoming MAC ACKs for spoofing.
        self.nav_validator: Any = None
        self.ack_inspector: Any = None
        #: Optional per-destination rate adaptation (ARF); None = fixed rate.
        self.rate_controller: Any = None

        # Upper-layer callbacks.
        self.on_deliver: Callable[[Any, str], None] | None = None
        self.on_msdu_sent: Callable[[Any, str], None] | None = None
        self.on_msdu_dropped: Callable[[Any, str], None] | None = None

        self.stats = MacStats()
        #: Telemetry registry (:mod:`repro.obs`) or None; every hook is
        #: ``is not None`` guarded so telemetry-off runs are untouched.
        self.obs: Any = None

        # Hot-path timing constants, resolved once: these are pure float
        # arithmetic on the frozen PhyParams, so hoisting them out of the
        # per-frame path is bit-exact (tests/test_mac_timing.py and the
        # golden traces pin the values).
        self._difs = phy.difs
        self._eifs = phy.eifs
        self._slot_time = phy.slot_time
        self._sifs = phy.sifs
        self._cts_timeout_us = phy.cts_timeout()
        self._ack_timeout_us = phy.ack_timeout()
        self._randrange = rng.randrange  # randint(0, cw) == randrange(cw + 1)
        # Vectorized-backend transition tables (None on the scalar backend).
        # Entries are computed from the exact per-access expressions, so
        # lookup and arithmetic agree to the bit; out-of-table indices
        # (custom cw_min above cw_max, per-dst CW caps) fall back to the
        # scalar arithmetic inline.
        self._delay_tables: tuple[tuple[float, ...], tuple[float, ...]] | None = None
        self._cw_next: tuple[int, ...] | None = None
        if dcf_tables:
            difs_delay, eifs_delay, cw_next = dcf_transition_tables(
                self._slot_time, self._difs, self._eifs, self.cw_max
            )
            self._delay_tables = (difs_delay, eifs_delay)
            self._cw_next = cw_next

        self._queue: deque[_Msdu] = deque()
        self._state = IDLE
        self.cw = self.cw_min
        self._short_retries = 0
        self._long_retries = 0
        self._seq = 0
        self._backoff_slots: int | None = None
        self._access_event: Event | None = None
        self._access_start = 0.0
        self._access_ifs = 0.0
        self._timeout_event: Event | None = None
        self._use_eifs = False
        self.nav_until = 0.0
        self._nav_event: Event | None = None
        self._rx_seen: dict[str, set[int]] = {}
        self._last_tx_kind: FrameKind | None = None
        #: True between :meth:`crash` and :meth:`reboot`: the station is
        #: dead — it neither transmits, receives nor reacts to the medium.
        self._offline = False

    # ------------------------------------------------------------------ API --

    def send(self, payload: Any, dst: str, size_bytes: int) -> bool:
        """Enqueue one MSDU for ``dst``.  Returns False on queue overflow."""
        if self._offline:
            self.stats.crash_dropped_msdus += 1
            return False
        if len(self._queue) >= self.queue_limit:
            self.stats.queue_drops += 1
            return False
        self._queue.append(_Msdu(payload, dst, size_bytes, self._next_seq()))
        if self._state == IDLE:
            self._state = CONTEND
            self._try_start_access()
        return True

    @property
    def queue_length(self) -> int:
        """Number of MSDUs waiting in the interface queue."""
        return len(self._queue)

    @property
    def state(self) -> str:
        """Current DCF state (IDLE/CONTEND/WAIT_CTS/SEND_DATA/WAIT_ACK)."""
        return self._state

    def _next_seq(self) -> int:
        self._seq = (self._seq + 1) % (1 << 12)
        return self._seq

    # -------------------------------------------------------- crash/reboot --

    @property
    def offline(self) -> bool:
        """True while the station is crashed (between crash() and reboot())."""
        return self._offline

    def crash(self) -> None:
        """Power-fail this station: drop all state, go deaf and mute.

        Queued MSDUs are lost, pending access/timeout/NAV timers cancelled
        and any reception in progress abandoned.  A frame this station had
        on the air keeps propagating (the energy was already emitted) but no
        response timer is ever armed for it.  Idempotent while offline.
        """
        if self._offline:
            return
        self._offline = True
        self.stats.crashes += 1
        if self.obs is not None:
            self.obs.inc(f"mac.{self.name}.crashes")
        self._cancel_timeout()
        if self._access_event is not None:
            self.sim.cancel(self._access_event)
            self._access_event = None
        if self._nav_event is not None:
            self.sim.cancel(self._nav_event)
            self._nav_event = None
        self.nav_until = 0.0
        self.stats.crash_dropped_msdus += len(self._queue)
        if self.on_msdu_dropped is not None:
            for msdu in self._queue:
                self.on_msdu_dropped(msdu.payload, msdu.dst)
        self._queue.clear()
        self._reset_exchange()
        self._state = IDLE
        self._use_eifs = False
        self._rx_seen.clear()
        self.radio._lock = None  # the frame being decoded dies with us

    def reboot(self) -> None:
        """Bring a crashed station back with factory-fresh DCF state.

        The MSDU sequence counter deliberately survives (so peers' duplicate
        detection never discards post-reboot traffic); everything else —
        CW, retries, NAV, queue — starts clean.  No-op unless crashed.
        """
        if not self._offline:
            return
        self._offline = False
        self.stats.reboots += 1
        if self.obs is not None:
            self.obs.inc(f"mac.{self.name}.reboots")

    # -------------------------------------------------------- carrier sense --

    def _medium_idle(self) -> bool:
        radio = self.radio  # inline of radio.carrier_busy (hot path)
        return (
            not (radio.transmitting or radio._energy)
            and self.sim.now >= self.nav_until
        )

    def phy_busy(self) -> None:
        """Radio reports energy on the channel: freeze any countdown."""
        if self._offline:
            return
        self._freeze_access()

    def phy_idle(self) -> None:
        """Radio reports the channel went quiet."""
        if self._offline:
            return
        self._try_start_access()

    def _update_nav(self, until: float) -> None:
        now = self.sim.now
        if until <= self.nav_until or until <= now:
            return
        if self.obs is not None:
            # NAV-deferral time: microseconds of virtual-carrier busy added
            # by this update — the signal the paper's NAV validator consumes.
            self.obs.inc(
                f"mac.{self.name}.nav_deferral_us",
                until - (self.nav_until if self.nav_until > now else now),
            )
        self.nav_until = until
        self._freeze_access()
        if self._nav_event is not None:
            self.sim.cancel(self._nav_event)
        self._nav_event = self.sim.schedule_at(until, self._nav_expired)

    def _nav_expired(self) -> None:
        self._nav_event = None
        self._try_start_access()

    # ------------------------------------------------------- backoff engine --

    def _try_start_access(self) -> None:
        if self._state != CONTEND or self._access_event is not None:
            return
        if not self._medium_idle():
            return
        if self._backoff_slots is None:
            self._backoff_slots = self._randrange(self.cw + 1)
        slots = self._backoff_slots
        self._access_start = self.sim.now
        tables = self._delay_tables
        if self._use_eifs:
            self._access_ifs = self._eifs
            if tables is not None and slots < len(tables[1]):
                delay = tables[1][slots]
            else:
                delay = self._eifs + slots * self._slot_time
        else:
            self._access_ifs = self._difs
            if tables is not None and slots < len(tables[0]):
                delay = tables[0][slots]
            else:
                delay = self._difs + slots * self._slot_time
        self._access_event = self.sim.schedule(delay, self._access_granted)

    def _freeze_access(self) -> None:
        if self._access_event is None:
            return
        elapsed = self.sim.now - self._access_start
        if elapsed > self._access_ifs:
            consumed = int((elapsed - self._access_ifs) // self._slot_time)
            assert self._backoff_slots is not None
            self._backoff_slots = max(0, self._backoff_slots - consumed)
        self.sim.cancel(self._access_event)
        self._access_event = None

    def _access_granted(self) -> None:
        self._access_event = None
        if not self._queue:  # defensive: nothing left to send
            self._state = IDLE
            return
        msdu = self._queue[0]
        self.stats.sample_cw(self.cw)
        obs = self.obs
        if obs is not None:
            obs.observe(f"mac.{self.name}.cw", self.cw)
            obs.observe(
                f"mac.{self.name}.backoff_stage",
                self._short_retries + self._long_retries,
            )
        if self.rts_enabled:
            self._send_rts(msdu)
        else:
            self._send_data(msdu)

    # ----------------------------------------------------------- transmit ----

    def _airtime(self, frame: Frame) -> float:
        if frame.kind is FrameKind.DATA:
            rate = frame.rate if frame.rate is not None else self.phy.data_rate
        else:
            rate = self.phy.basic_rate
        return self.phy.airtime(frame.size_bytes, rate)

    def _transmit(self, frame: Frame) -> None:
        self._last_tx_kind = frame.kind
        self.radio.transmit(frame, self._airtime(frame))

    def _send_rts(self, msdu: _Msdu) -> None:
        nav = rts_duration(self.phy, msdu.size_bytes)
        frame = Frame(FrameKind.RTS, self.name, msdu.dst, nav, frame_size(FrameKind.RTS))
        frame.duration = self.policy.outgoing_nav(frame)
        self._state = WAIT_CTS
        self.stats.tx_rts += 1
        self._transmit(frame)

    def _send_data(self, msdu: _Msdu) -> None:
        rate = None
        if self.rate_controller is not None:
            rate = self.rate_controller.rate_for(msdu.dst)
        frame = Frame(
            FrameKind.DATA,
            self.name,
            msdu.dst,
            data_duration(self.phy),
            frame_size(FrameKind.DATA, msdu.size_bytes),
            seq=msdu.seq,
            retry=self._long_retries > 0 or self._short_retries > 0,
            payload=msdu.payload,
            rate=rate,
        )
        frame.duration = self.policy.outgoing_nav(frame)
        self._state = WAIT_ACK
        self.stats.tx_data += 1
        self.stats.data_attempts_by_dst[msdu.dst] += 1
        self._transmit(frame)

    def phy_tx_done(self) -> None:
        """Our own transmission ended: arm the matching response timeout."""
        kind = self._last_tx_kind
        self._last_tx_kind = None
        if self._offline:
            return  # crashed mid-transmit: no response timers for the dead
        if kind is FrameKind.RTS and self._state == WAIT_CTS:
            self._timeout_event = self.sim.schedule(
                self._cts_timeout_us, self._cts_timeout
            )
        elif kind is FrameKind.DATA and self._state == WAIT_ACK:
            self._timeout_event = self.sim.schedule(
                self._ack_timeout_us, self._ack_timeout
            )

    # ------------------------------------------------------------ timeouts ---

    def _cancel_timeout(self) -> None:
        if self._timeout_event is not None:
            self.sim.cancel(self._timeout_event)
            self._timeout_event = None

    def _cts_timeout(self) -> None:
        self._timeout_event = None
        self._short_retries += 1
        self._retry(self._short_retries > self.phy.short_retry_limit)

    def _ack_timeout(self) -> None:
        self._timeout_event = None
        if self._queue:
            self.stats.ack_failures_by_dst[self._queue[0].dst] += 1
            if self.rate_controller is not None:
                self.rate_controller.on_failure(self._queue[0].dst)
        limit = (
            self.phy.long_retry_limit if self.rts_enabled else self.phy.short_retry_limit
        )
        self._long_retries += 1
        exceeded = self._long_retries > limit
        no_retransmit = not self.retransmissions_enabled or (
            self._queue and self._queue[0].dst in self.no_retransmit_to
        )
        if no_retransmit:
            # Testbed emulation of spoofed ACKs: give up after one attempt but
            # do not double CW (the sender believes the frame was delivered).
            self._complete_current(success=True)
            return
        self._retry(exceeded)

    def _retry(self, drop: bool) -> None:
        self.stats.retries += 1
        obs = self.obs
        if obs is not None:
            obs.inc(f"mac.{self.name}.retries")
            if drop:
                obs.inc(f"mac.{self.name}.drops")
        cw_cap = self.cw_max
        if self._queue and self._queue[0].dst in self.cw_max_to:
            cw_cap = self.cw_max_to[self._queue[0].dst]
        cw_next = self._cw_next
        if cw_next is not None and cw_cap == self.cw_max and self.cw < len(cw_next):
            self.cw = cw_next[self.cw]
        else:
            self.cw = min(2 * (self.cw + 1) - 1, cw_cap)
        if drop:
            self.stats.drops += 1
            msdu = self._queue.popleft()
            self._reset_exchange()
            if self.on_msdu_dropped is not None:
                self.on_msdu_dropped(msdu.payload, msdu.dst)
            self._next_packet()
            return
        self._backoff_slots = None
        self._state = CONTEND
        self._try_start_access()

    def _reset_exchange(self) -> None:
        self.cw = self.cw_min
        self._short_retries = 0
        self._long_retries = 0
        self._backoff_slots = None

    def _complete_current(self, success: bool) -> None:
        self._cancel_timeout()
        msdu = self._queue.popleft()
        self._reset_exchange()
        if success:
            self.stats.msdu_sent += 1
            if self.rate_controller is not None:
                self.rate_controller.on_success(msdu.dst)
            if self.on_msdu_sent is not None:
                self.on_msdu_sent(msdu.payload, msdu.dst)
        elif self.on_msdu_dropped is not None:
            self.on_msdu_dropped(msdu.payload, msdu.dst)
        self._next_packet()

    def _next_packet(self) -> None:
        self._state = CONTEND if self._queue else IDLE
        self._try_start_access()

    # -------------------------------------------------------------- receive --

    def phy_receive(self, frame: Frame, corrupted: bool, addr_ok: bool, rssi_db: float) -> None:
        """Handle a frame delivered by the radio (possibly corrupted)."""
        if self._offline:
            return
        if corrupted:
            self._use_eifs = self.eifs_enabled
            if (
                addr_ok
                and frame.kind is FrameKind.DATA
                and frame.dst == self.name
            ):
                self.stats.rx_data_corrupted += 1
                if self.policy.should_fake_ack(frame):
                    self.stats.tx_fake_ack += 1
                    self._schedule_response(self._build_ack(frame))
            return

        self._use_eifs = False
        if frame.dst == self.name:
            self._receive_addressed(frame, rssi_db)
        else:
            self._receive_overheard(frame, rssi_db)

    def _receive_addressed(self, frame: Frame, rssi_db: float) -> None:
        kind = frame.kind
        if kind is FrameKind.RTS:
            # Respond with CTS only when virtual carrier sense is idle.
            if self.sim.now >= self.nav_until:
                self._schedule_response(self._build_cts(frame))
            return
        if kind is FrameKind.DATA:
            self.stats.rx_data_clean += 1
            if self.ack_inspector is not None:
                self.ack_inspector.observe_data(frame.src, rssi_db, self.sim.now)
            self._schedule_response(self._build_ack(frame))
            self._deliver_up(frame)
            return
        if kind is FrameKind.CTS:
            if self._state == WAIT_CTS:
                self._cancel_timeout()
                self._state = SEND_DATA
                # Never cancelled (the state guard in _data_after_cts handles
                # interruptions), so the fire-and-forget fast path applies.
                self.sim.call_after(self._sifs, self._data_after_cts)
            return
        if kind is FrameKind.ACK:
            if self._state != WAIT_ACK:
                return
            if self.ack_inspector is not None and self.ack_inspector.is_spoofed(
                frame, rssi_db, self.sim.now
            ):
                self.stats.acks_ignored_by_grc += 1
                return  # let the ACK timeout fire and retransmit as we should
            self._complete_current(success=True)

    def _receive_overheard(self, frame: Frame, rssi_db: float) -> None:
        duration = frame.duration
        if self.nav_validator is not None:
            duration = self.nav_validator.observe_and_validate(
                frame, self.sim.now, rssi_db
            )
        self._update_nav(self.sim.now + duration)
        if frame.kind is FrameKind.DATA and self.policy.should_spoof_ack(frame):
            spoof = self._build_ack(frame, impersonate=frame.dst)
            self.stats.tx_spoofed_ack += 1
            self._schedule_response(spoof)

    def _data_after_cts(self) -> None:
        if self._state != SEND_DATA or not self._queue:
            return
        if self.radio.transmitting:
            # Half-duplex conflict: a SIFS response we owed a peer is still
            # on the air when the data send should start (the CTS and the
            # frame that provoked the response arrived within one SIFS).
            # Abandon the round and re-contend, as after a lost CTS.
            self._short_retries += 1
            self._retry(self._short_retries > self.phy.short_retry_limit)
            return
        self._send_data(self._queue[0])

    def _deliver_up(self, frame: Frame) -> None:
        seen = self._rx_seen.setdefault(frame.src, set())
        if frame.seq in seen:
            self.stats.rx_duplicates += 1
            return
        if len(seen) > 4096:
            seen.clear()
        seen.add(frame.seq)
        if self.on_deliver is not None:
            self.on_deliver(frame.payload, frame.src)

    # ------------------------------------------------------------ responses --

    def _build_cts(self, rts: Frame) -> Frame:
        nav = cts_duration_from_rts(self.phy, rts.duration)
        cts = Frame(FrameKind.CTS, self.name, rts.src, nav, frame_size(FrameKind.CTS))
        cts.duration = self.policy.outgoing_nav(cts)
        return cts

    def _build_ack(self, data: Frame, impersonate: str | None = None) -> Frame:
        src = impersonate if impersonate is not None else self.name
        ack = Frame(FrameKind.ACK, src, data.src, ack_duration(), frame_size(FrameKind.ACK))
        ack.duration = self.policy.outgoing_nav(ack)
        return ack

    def _schedule_response(self, frame: Frame) -> None:
        # SIFS responses are never cancelled once queued (half-duplex
        # conflicts are resolved inside _send_response), so skip the
        # cancellable-Event allocation.
        self.sim.call_after(self._sifs, self._send_response, frame)

    def _send_response(self, frame: Frame) -> None:
        if self.radio.transmitting:
            return  # half-duplex conflict: the response is lost
        if frame.kind is FrameKind.CTS:
            self.stats.tx_cts += 1
        elif frame.kind is FrameKind.ACK:
            self.stats.tx_ack += 1
        self._transmit(frame)
