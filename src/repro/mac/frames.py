"""MAC frame types and duration (NAV) arithmetic.

The ``duration`` field of each frame is the NAV reservation in microseconds —
the value greedy receivers inflate.  Helper functions compute the *correct*
duration values for each frame of an exchange, which the GRC NAV validator
(Section VII-A) uses as its expectation.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.phy.params import (
    ACK_SIZE,
    CTS_SIZE,
    DATA_HEADER_SIZE,
    MAX_NAV_US,
    RTS_SIZE,
    PhyParams,
)


class FrameKind(enum.Enum):
    """The four 802.11 DCF frame types the simulator models."""

    RTS = "RTS"
    CTS = "CTS"
    DATA = "DATA"
    ACK = "ACK"


class Frame:
    """One MAC frame.

    ``src``/``dst`` are node names.  For ACK frames ``dst`` identifies the
    station being acknowledged and ``src`` the *claimed* responder — a greedy
    receiver spoofing an ACK on behalf of a normal receiver sets ``src`` to
    the impersonated station, exactly because 802.11 ACK frames carry no
    transmitter address that could give the spoofer away.
    """

    __slots__ = (
        "kind",
        "src",
        "dst",
        "duration",
        "size_bytes",
        "seq",
        "retry",
        "payload",
        "rate",
    )

    def __init__(
        self,
        kind: FrameKind,
        src: str,
        dst: str,
        duration: float,
        size_bytes: int,
        seq: int = 0,
        retry: bool = False,
        payload: Any = None,
        rate: float | None = None,
    ) -> None:
        if duration < 0:
            raise ValueError(f"negative NAV duration: {duration}")
        self.kind = kind
        self.src = src
        self.dst = dst
        self.duration = min(float(duration), float(MAX_NAV_US))
        self.size_bytes = size_bytes
        self.seq = seq
        self.retry = retry
        self.payload = payload
        #: PHY rate (Mbps) this frame is modulated at; None = the PHY default.
        #: Set by rate-adapting senders so the medium can apply rate-dependent
        #: error rates (the auto-rate extension, Section IX future work).
        self.rate = rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Frame({self.kind.value} {self.src}->{self.dst} "
            f"nav={self.duration:.0f}us size={self.size_bytes}B seq={self.seq})"
        )


def rts_duration(phy: PhyParams, payload_bytes: int) -> float:
    """NAV carried by an RTS: CTS + DATA + ACK plus three SIFS gaps."""
    return (
        3 * phy.sifs + phy.cts_time + phy.data_time(payload_bytes) + phy.ack_time
    )


def cts_duration_from_rts(phy: PhyParams, rts_nav: float) -> float:
    """NAV carried by a CTS, derived from the soliciting RTS's NAV."""
    return max(0.0, rts_nav - phy.sifs - phy.cts_time)


def data_duration(phy: PhyParams) -> float:
    """NAV carried by a (non-fragmented) data frame: SIFS + ACK."""
    return phy.sifs + phy.ack_time


def ack_duration() -> float:
    """NAV carried by a final ACK: zero without fragmentation."""
    return 0.0


def expected_cts_nav(phy: PhyParams, overheard_rts_nav: float) -> float:
    """What a validator that heard the RTS expects the CTS NAV to be."""
    return cts_duration_from_rts(phy, overheard_rts_nav)


def max_cts_nav(phy: PhyParams, mtu_bytes: int = 1500) -> float:
    """Upper bound on a legitimate CTS NAV assuming ``mtu_bytes`` payloads.

    Used by validators out of the sender's range (Section VII-A): they cannot
    know the true payload size, so they bound the reservation by the largest
    Internet packet (Ethernet MTU, 1500 bytes).
    """
    return 2 * phy.sifs + phy.data_time(mtu_bytes) + phy.ack_time


def frame_size(kind: FrameKind, payload_bytes: int = 0) -> int:
    """Size in bytes of a frame of ``kind`` carrying ``payload_bytes``."""
    if kind is FrameKind.RTS:
        return RTS_SIZE
    if kind is FrameKind.CTS:
        return CTS_SIZE
    if kind is FrameKind.ACK:
        return ACK_SIZE
    return DATA_HEADER_SIZE + payload_bytes
