"""IEEE 802.11 DCF MAC layer.

Implements the full DCF access cycle the paper's misbehaviors exploit:
virtual (NAV) + physical carrier sense, DIFS/EIFS deferral, slotted binary
exponential backoff with freeze/resume, optional RTS/CTS, SIFS-separated
responses, retry limits and contention-window doubling.
"""

from repro.mac.frames import Frame, FrameKind
from repro.mac.policy import ReceiverPolicy
from repro.mac.stats import MacStats
from repro.mac.dcf import DcfMac
from repro.mac.autorate import ArfRateController, DOT11A_RATES, DOT11B_RATES

__all__ = [
    "Frame",
    "FrameKind",
    "ReceiverPolicy",
    "MacStats",
    "DcfMac",
    "ArfRateController",
    "DOT11A_RATES",
    "DOT11B_RATES",
]
