"""WorkerPool fault tolerance: retries, timeouts, watchdog, rebuild, fallback.

Runner functions live at module level so :class:`repro.runtime.JobSpec` can
address them across process boundaries.  Cross-attempt state (how often a
job failed/hung so far) is communicated through flag files in a per-test
directory — the only channel that survives a SIGKILLed worker.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

import pytest

from repro.runtime import (
    NON_RETRYABLE,
    ExecutionReport,
    JobExecutionError,
    JobTimeoutError,
    PoolBrokenError,
    ResultCache,
    RetryPolicy,
    WorkerPool,
    map_over_seeds,
    seed_job,
)

FAST = RetryPolicy(max_attempts=3, backoff_base_s=0.01, backoff_max_s=0.05)


# ------------------------------------------------------- runner functions ----


def ok_runner(seed: int) -> dict[str, float]:
    return {"value": float(seed * 2)}


def flaky_runner(seed: int, flag_dir: str = "", fail_times: int = 1) -> dict[str, float]:
    """Raise on the first ``fail_times`` attempts of each seed, then succeed."""
    done = len(list(Path(flag_dir).glob(f"attempt-{seed}-*")))
    if done < fail_times:
        (Path(flag_dir) / f"attempt-{seed}-{done}").touch()
        raise RuntimeError(f"transient #{done} for seed {seed}")
    return {"value": float(seed * 2)}


def doomed_runner(seed: int) -> dict[str, float]:
    raise RuntimeError(f"always broken (seed {seed})")


def bad_input_runner(seed: int) -> dict[str, float]:
    raise ValueError("deterministic bad input")


def hang_once_runner(seed: int, flag_dir: str = "") -> dict[str, float]:
    """Park forever on the first attempt; succeed on the retry."""
    flag = Path(flag_dir) / f"hang-{seed}"
    try:
        flag.touch(exist_ok=False)
    except FileExistsError:
        return {"value": float(seed)}
    time.sleep(3600.0)
    return {"value": -1.0}  # pragma: no cover - the watchdog kills us first


def hang_always_runner(seed: int) -> dict[str, float]:
    time.sleep(3600.0)
    return {"value": -1.0}  # pragma: no cover


def suicide_runner(seed: int, flag_dir: str = "", deaths: int = 1) -> dict[str, float]:
    """SIGKILL the worker on the first ``deaths`` attempts, then succeed."""
    done = len(list(Path(flag_dir).glob(f"death-{seed}-*")))
    if done < deaths:
        (Path(flag_dir) / f"death-{seed}-{done}").touch()
        os.kill(os.getpid(), signal.SIGKILL)
    return {"value": float(seed * 3)}


# ------------------------------------------------------------ RetryPolicy ----


def test_backoff_is_exponential_capped_and_deterministic():
    policy = RetryPolicy(backoff_base_s=0.5, backoff_factor=2.0, backoff_max_s=3.0)
    assert policy.backoff_s(1, key="a") == policy.backoff_s(1, key="a")
    assert policy.backoff_s(1, key="a") != policy.backoff_s(1, key="b")
    # jitter multiplies by at most (1 + jitter), never shrinks below base
    for attempt, base in ((1, 0.5), (2, 1.0), (3, 2.0), (4, 3.0), (9, 3.0)):
        value = policy.backoff_s(attempt, key="x")
        assert base <= value <= base * (1.0 + policy.jitter)


def test_retryable_classification():
    policy = RetryPolicy()
    assert policy.retryable(RuntimeError("boom"))
    assert policy.retryable(JobTimeoutError("slow"))
    assert policy.retryable(PoolBrokenError("dead"))
    for exc_type in NON_RETRYABLE:
        assert not policy.retryable(exc_type("deterministic"))


def test_execution_report_aggregates_and_serializes():
    report = ExecutionReport()
    report.job(1).retries += 1
    report.job(1).errors.append("RuntimeError: x")
    report.job(2).timeouts += 1
    as_dict = report.as_dict()
    assert report.total_retries == 1
    assert report.total_timeouts == 1
    assert report.last_error == "RuntimeError: x"
    assert as_dict == {
        "retries": 1,
        "timeouts": 1,
        "pool_rebuilds": 0,
        "worker_kills": 0,
        "degraded_to_serial": False,
        "last_error": "RuntimeError: x",
    }


# ---------------------------------------------------------- serial driver ----


def test_serial_retries_until_success(tmp_path):
    specs = {
        s: seed_job(flaky_runner, flag_dir=str(tmp_path), fail_times=2).with_seed(s)
        for s in (1, 2)
    }
    report = ExecutionReport()
    with WorkerPool(jobs=1, retry=FAST) as pool:
        results, failures = pool.run(specs, report=report)
    assert failures == {}
    assert results == {1: {"value": 2.0}, 2: {"value": 4.0}}
    assert report.job(1).attempts == 2 and report.job(1).retries == 2
    assert report.job(1).ok


def test_serial_exhausts_attempts_and_reports_last_error():
    specs = {7: seed_job(doomed_runner).with_seed(7)}
    report = ExecutionReport()
    with WorkerPool(jobs=1, retry=FAST) as pool:
        results, failures = pool.run(specs, report=report)
    assert results == {}
    assert "always broken (seed 7)" in failures[7]
    assert report.job(7).attempts == FAST.max_attempts
    assert not report.job(7).ok


def test_non_retryable_errors_fail_fast():
    policy = RetryPolicy(max_attempts=5, backoff_base_s=0.01)
    specs = {1: seed_job(bad_input_runner).with_seed(1)}
    report = ExecutionReport()
    with WorkerPool(jobs=1, retry=policy) as pool:
        _, failures = pool.run(specs, report=report)
    assert "deterministic bad input" in failures[1]
    assert report.job(1).attempts == 1  # no pointless re-runs


# -------------------------------------------------------- parallel driver ----


def test_parallel_retries_flaky_jobs(tmp_path):
    specs = {
        s: seed_job(flaky_runner, flag_dir=str(tmp_path)).with_seed(s)
        for s in (1, 2, 3)
    }
    report = ExecutionReport()
    with WorkerPool(jobs=2, retry=FAST) as pool:
        results, failures = pool.run(specs, report=report)
    assert failures == {}
    assert results == {1: {"value": 2.0}, 2: {"value": 4.0}, 3: {"value": 6.0}}
    assert report.total_retries >= 3  # every seed failed once before passing


def test_parallel_mixed_success_and_failure(tmp_path):
    specs = {
        1: seed_job(ok_runner).with_seed(1),
        2: seed_job(doomed_runner).with_seed(2),
    }
    with WorkerPool(jobs=2, retry=FAST) as pool:
        results, failures = pool.run(specs)
    assert results == {1: {"value": 2.0}}
    assert list(failures) == [2] and "always broken" in failures[2]


def test_watchdog_kills_hung_worker_and_retry_succeeds(tmp_path):
    policy = RetryPolicy(max_attempts=3, timeout_s=0.5, backoff_base_s=0.01)
    specs = {
        s: seed_job(hang_once_runner, flag_dir=str(tmp_path)).with_seed(s)
        for s in (1, 2)
    }
    report = ExecutionReport()
    with WorkerPool(jobs=2, retry=policy) as pool:
        results, failures = pool.run(specs, report=report)
        assert pool.worker_kills >= 1
        assert not pool.degraded  # watchdog kills never degrade the pool
    assert failures == {}
    assert results == {1: {"value": 1.0}, 2: {"value": 2.0}}
    assert report.total_timeouts >= 1
    assert report.worker_kills >= 1


def test_watchdog_exhausts_attempts_of_a_job_that_always_hangs():
    policy = RetryPolicy(max_attempts=2, timeout_s=0.3, backoff_base_s=0.01)
    specs = {5: seed_job(hang_always_runner).with_seed(5)}
    report = ExecutionReport()
    with WorkerPool(jobs=2, retry=policy) as pool:
        results, failures = pool.run(specs, report=report)
    assert results == {}
    assert "JobTimeoutError" in failures[5]
    assert report.job(5).timeouts == 2
    assert report.job(5).attempts == 2


def test_killed_worker_is_a_free_retry(tmp_path):
    specs = {4: seed_job(suicide_runner, flag_dir=str(tmp_path)).with_seed(4)}
    report = ExecutionReport()
    with WorkerPool(jobs=2, retry=FAST) as pool:
        results, failures = pool.run(specs, report=report)
        assert pool.rebuilds >= 1
    assert failures == {}
    assert results == {4: {"value": 12.0}}
    assert report.job(4).attempts == 0  # pool breaks don't consume the budget
    assert report.job(4).retries >= 1
    assert any("PoolBrokenError" in e for e in report.job(4).errors)


def test_pool_that_keeps_dying_degrades_to_serial(tmp_path):
    policy = RetryPolicy(max_attempts=3, backoff_base_s=0.01, max_pool_rebuilds=1)
    # Two suicides: break #1 rebuilds, break #2 exceeds the budget and the
    # pool degrades; by then two flag files exist, so the serial in-process
    # attempt (which must never SIGKILL the test process) succeeds.
    specs = {
        1: seed_job(suicide_runner, flag_dir=str(tmp_path), deaths=2).with_seed(1)
    }
    report = ExecutionReport()
    with WorkerPool(jobs=2, retry=policy) as pool:
        results, failures = pool.run(specs, report=report)
        assert pool.degraded
        assert pool.rebuilds == 2
    assert failures == {}
    assert results == {1: {"value": 3.0}}
    assert report.degraded_to_serial


# ---------------------------------------------------- map_over_seeds glue ----


def test_map_over_seeds_uses_caller_pool_and_reports(tmp_path):
    job = seed_job(flaky_runner, flag_dir=str(tmp_path))
    report = ExecutionReport()
    with WorkerPool(jobs=2, retry=FAST) as pool:
        out = map_over_seeds(job, [1, 2], jobs=2, pool=pool, report=report)
    assert out == {1: {"value": 2.0}, 2: {"value": 4.0}}
    assert report.total_retries >= 2


def test_map_over_seeds_raises_after_caching_survivors(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    job = seed_job(doomed_runner)
    ok = seed_job(ok_runner)
    with pytest.raises(JobExecutionError) as excinfo:
        map_over_seeds(job, [3], jobs=1, cache=cache, retry=FAST)
    assert "[3] RuntimeError: always broken (seed 3)" in str(excinfo.value)
    assert excinfo.value.failures == {
        3: "RuntimeError: always broken (seed 3)"
    }
    # successful sibling seeds of a different job land in the cache normally
    map_over_seeds(ok, [1, 2], jobs=1, cache=cache)
    assert cache.stats()["stores"] == 2


def test_map_over_seeds_partial_failure_caches_successes(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    flags = tmp_path / "flags"
    flags.mkdir()
    # seed 1 fails more times than the budget allows; seed 2 passes first try
    job = seed_job(flaky_runner, flag_dir=str(flags), fail_times=99)

    def run_once(seed):
        return {"value": float(seed * 2)}

    with pytest.raises(JobExecutionError):
        map_over_seeds(job, [1], jobs=1, cache=cache, retry=FAST)
    map_over_seeds(seed_job(ok_runner), [2], jobs=1, cache=cache)
    assert cache.stats()["stores"] == 1
    assert map_over_seeds(run_once, [2]) == {2: {"value": 4.0}}


def test_worker_pids_and_inflight_reflect_pool_state():
    pool = WorkerPool(jobs=2, retry=FAST)
    assert pool.worker_pids() == []
    assert pool.inflight_count() == 0
    results, failures = pool.run({1: seed_job(ok_runner).with_seed(1)})
    assert failures == {}
    assert pool.worker_pids()  # workers stay warm between runs
    pool.shutdown()
    assert pool.worker_pids() == []
