"""Differential fuzzing: random scenarios must fingerprint identically.

The golden traces pin four hand-picked operating points; this fuzzer walks
the configuration space around them.  Each case derives a small random
topology (pair count, positions, transport mix, greedy misbehavior, error
model, RTS on/off, optional fault plan) deterministically from a case seed,
runs it on the scalar and vectorized backends, and requires byte-identical
traces, exact metrics and equal event counts via
:func:`repro.perf.diff.diff_backend_runs`.

Two tiers:

* tier-1 (always on): a fixed 10-case subset plus a short hypothesis sweep
  — fast enough for every ``pytest`` run.
* ``-m slow``: a wide hypothesis sweep, every registered perf scenario at
  golden length, and every registered experiment in quick mode through
  :func:`repro.perf.diff.diff_experiment` — the full pre-release gate the
  CI ``backend-diff-smoke`` job samples from.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.greedy import GreedyConfig
from repro.mac.frames import FrameKind
from repro.net.scenario import Scenario
from repro.perf.diff import BackendRun, diff_backend_runs, diff_scenario
from repro.perf.scenarios import scenario_names
from repro.phy.channel import ChannelConfig
from repro.phy.error import set_ber_all_pairs
from repro.sim.backend import numpy_available, use_backend
from repro.stats.trace import FrameTracer

pytestmark = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")

US_PER_S = 1_000_000.0
CASE_DURATION_S = 0.05

#: The always-on subset: first ten case seeds of the fuzz space.
QUICK_CASES = list(range(10))


def _build_case(case_seed: int) -> Scenario:
    """Derive one random-but-deterministic scenario from a case seed.

    All randomness comes from ``random.Random(case_seed)`` at *build* time —
    the simulation itself then runs from ``Scenario(seed=...)``'s own
    streams, so the same case seed always produces the same workload on
    every backend.
    """
    pick = random.Random(case_seed)
    n_pairs = pick.randint(1, 3)
    rts = pick.random() < 0.7
    ranged = pick.random() < 0.3
    s = Scenario(
        seed=1000 + case_seed,
        rts_enabled=rts,
        channel=ChannelConfig(ranges=(55.0, 99.0)) if ranged else None,
    )
    greedy_kind = pick.choice(["none", "nav", "spoof", "fake"])
    positions = {}
    for i in range(n_pairs):
        positions[f"S{i}"] = (pick.uniform(0.0, 30.0), pick.uniform(0.0, 30.0))
        positions[f"R{i}"] = (pick.uniform(0.0, 30.0), pick.uniform(0.0, 30.0))
    for i in range(n_pairs):
        s.add_wireless_node(f"S{i}", position=positions[f"S{i}"])
    for i in range(n_pairs):
        greedy = None
        if i == n_pairs - 1:
            if greedy_kind == "nav":
                frames = frozenset({FrameKind.CTS if rts else FrameKind.ACK})
                greedy = GreedyConfig.nav_inflator(pick.uniform(300.0, 5000.0), frames)
            elif greedy_kind == "spoof" and n_pairs > 1:
                greedy = GreedyConfig.ack_spoofer(victims=frozenset({"R0"}))
            elif greedy_kind == "fake":
                greedy = GreedyConfig.ack_faker()
        s.add_wireless_node(f"R{i}", position=positions[f"R{i}"], greedy=greedy)
    error_kind = pick.choice(["clean", "ber", "data_fer"])
    if error_kind == "ber":
        set_ber_all_pairs(
            s.error_model, list(s.nodes), pick.choice([1e-5, 1e-4, 2e-4])
        )
    elif error_kind == "data_fer":
        # Includes the explicit-0.0 edge: still consumes one uniform per
        # data frame, which is exactly what desynchronizes a sloppy backend.
        s.error_model.set_data_fer("S0", "R0", pick.choice([0.0, 0.2, 0.5]))
    for i in range(n_pairs):
        if pick.random() < 0.5:
            src, _sink = s.udp_flow(f"S{i}", f"R{i}")
        else:
            src, _sink = s.tcp_flow(f"S{i}", f"R{i}")
        src.start()
    if pick.random() < 0.3:
        from repro.faults import FaultPlan, GilbertElliottConfig, JammerConfig

        if pick.random() < 0.5:
            s.install_faults(FaultPlan(channel=GilbertElliottConfig()))
        else:
            s.install_faults(FaultPlan(jammer=JammerConfig(period_us=10_000.0)))
    return s


def _run_case(case_seed: int, backend: str) -> BackendRun:
    with use_backend(backend):
        scenario = _build_case(case_seed)
        tracer = FrameTracer(scenario.medium)
        scenario.run(CASE_DURATION_S)
    lines = tuple(
        json.dumps(record.to_dict(), sort_keys=True) for record in tracer.records
    )
    totals = tracer.airtime_by_sender()
    metrics = {f"airtime_{name}": value for name, value in sorted(totals.items())}
    return BackendRun(
        backend=backend,
        trace_lines=lines,
        metrics=metrics,
        events=scenario.sim.events_processed,
    )


def _assert_case_identical(case_seed: int) -> None:
    scalar = _run_case(case_seed, "scalar")
    vectorized = _run_case(case_seed, "vectorized")
    assert scalar.trace_lines, f"case {case_seed} produced no traffic"
    problems = diff_backend_runs(scalar, vectorized)
    assert not problems, f"case {case_seed} diverged:\n" + "\n".join(problems)
    assert scalar.fingerprint == vectorized.fingerprint


# ------------------------------------------------------------ tier-1 tier --


@pytest.mark.parametrize("case_seed", QUICK_CASES)
def test_quick_fuzz_case_is_backend_identical(case_seed):
    _assert_case_identical(case_seed)


@given(case_seed=st.integers(min_value=10, max_value=5_000))
@settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_hypothesis_fuzz_short_sweep(case_seed):
    _assert_case_identical(case_seed)


# -------------------------------------------------------------- slow tier --


@pytest.mark.slow
@given(case_seed=st.integers(min_value=0, max_value=1_000_000))
@settings(
    max_examples=150, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_hypothesis_fuzz_full_sweep(case_seed):
    _assert_case_identical(case_seed)


@pytest.mark.slow
@pytest.mark.parametrize("name", scenario_names())
def test_every_perf_scenario_diffs_clean_at_golden_length(name):
    report = diff_scenario(name)
    assert report.ok, "\n".join(report.problems)


@pytest.mark.slow
def test_every_registered_experiment_diffs_clean_in_quick_mode():
    from repro.experiments import entries
    from repro.perf.diff import diff_experiment

    failures = []
    for entry in entries():
        report = diff_experiment(entry.id, quick=True)
        if not report.ok:
            failures.append(f"{entry.id}:\n  " + "\n  ".join(report.problems))
    assert not failures, "experiments diverged across backends:\n" + "\n".join(
        failures
    )
