"""Unit tests for the fleet service's crash-safe job journal.

Everything here runs against the raw :class:`repro.fleet.JobJournal` — no
HTTP, no orchestrator — and pins the durability contract the service
relies on: fsync'd appends replay in order, a torn tail is dropped
silently, mid-file corruption keeps the valid prefix (with a warning),
compaction is equivalent to the journal it replaces, and replaying a
snapshot *plus* the lines it already covers is idempotent (the crash
window between snapshot and truncate).
"""

from __future__ import annotations

import json

import pytest

from repro.fleet import JobJournal, JobRecord, JournalError
from repro.fleet import journal as jl

SPEC = {"campaign": {"name": "j", "builder": "nav_pairs", "seeds": [1]}}


def _submit(journal: JobJournal, job_id: str, priority: int = 0) -> None:
    journal.append(
        job_id,
        jl.SUBMITTED,
        spec=SPEC,
        spec_hash="abc123",
        code_version="v1",
        priority=priority,
        n_shards=2,
        jobs=1,
        quick=False,
    )
    journal.append(job_id, jl.QUEUED)


def test_append_replay_round_trip(tmp_path):
    journal = JobJournal(tmp_path)
    _submit(journal, "0001-j", priority=7)
    journal.append("0001-j", jl.RUNNING)
    journal.append("0001-j", jl.MERGED, shard_attempts={"0": 1, "1": 2})
    _submit(journal, "0002-j")
    journal.append("0002-j", jl.RUNNING)
    journal.append(
        "0002-j", jl.FAILED, error="boom", shard_attempts={"0": 3}
    )
    _submit(journal, "0003-j")

    jobs = JobJournal(tmp_path).replay()
    assert set(jobs) == {"0001-j", "0002-j", "0003-j"}
    first = jobs["0001-j"]
    assert first.status == jl.MERGED and first.terminal
    assert first.priority == 7
    assert first.spec == SPEC and first.spec_hash == "abc123"
    assert first.code_version == "v1"
    assert first.shard_attempts == {"0": 1, "1": 2}
    failed = jobs["0002-j"]
    assert failed.status == jl.FAILED and failed.error == "boom"
    assert failed.shard_attempts == {"0": 3}
    queued = jobs["0003-j"]
    assert queued.status == jl.QUEUED and not queued.terminal
    # Admission order is recoverable from submitted_seq.
    seqs = [jobs[j].submitted_seq for j in ("0001-j", "0002-j", "0003-j")]
    assert seqs == sorted(seqs) and all(seqs)


def test_replay_restores_sequence_counter(tmp_path):
    journal = JobJournal(tmp_path)
    _submit(journal, "0001-j")
    last = journal.append("0001-j", jl.RUNNING)

    reopened = JobJournal(tmp_path)
    reopened.replay()
    assert reopened.seq == last
    assert reopened.append("0001-j", jl.MERGED) == last + 1


def test_torn_tail_is_dropped_silently(tmp_path, recwarn):
    journal = JobJournal(tmp_path)
    _submit(journal, "0001-j")
    journal.append("0001-j", jl.RUNNING)
    # Simulate a crash mid-append: chop the last line in half.
    text = journal.path.read_text()
    journal.path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])

    jobs = JobJournal(tmp_path).replay()
    assert jobs["0001-j"].status == jl.QUEUED  # the torn "running" is gone
    assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]


def test_midfile_corruption_keeps_prefix_and_warns(tmp_path):
    journal = JobJournal(tmp_path)
    _submit(journal, "0001-j")
    journal.append("0001-j", jl.RUNNING)
    journal.append("0001-j", jl.MERGED)
    lines = journal.path.read_text().splitlines()
    lines[2] = lines[2][:-10] + "tampered!!"  # break the running event
    journal.path.write_text("\n".join(lines) + "\n")

    with pytest.warns(RuntimeWarning, match="dropping this line"):
        jobs = JobJournal(tmp_path).replay()
    # Integrity ends at the bad line: merged (after it) is not trusted.
    assert jobs["0001-j"].status == jl.QUEUED


def test_checksum_catches_value_tampering(tmp_path):
    journal = JobJournal(tmp_path)
    _submit(journal, "0001-j")
    journal.append("0001-j", jl.FAILED, error="real error")
    lines = journal.path.read_text().splitlines()
    record = json.loads(lines[-1])
    record["data"]["error"] = "doctored"
    lines[-1] = json.dumps(record, sort_keys=True, separators=(",", ":"))
    journal.path.write_text("\n".join(lines) + "\n")

    jobs = JobJournal(tmp_path).replay()
    # The tampered terminal line fails its checksum and is dropped.
    assert jobs["0001-j"].status == jl.QUEUED


def test_compaction_is_equivalent_and_resets_lag(tmp_path):
    journal = JobJournal(tmp_path)
    _submit(journal, "0001-j")
    journal.append("0001-j", jl.RUNNING)
    journal.append("0001-j", jl.MERGED, shard_attempts={"0": 1})
    _submit(journal, "0002-j")
    before = {jid: rec.to_dict() for jid, rec in JobJournal(tmp_path).replay().items()}

    assert journal.lag > 0
    journal.compact({jid: JobRecord.from_dict(doc) for jid, doc in before.items()})
    assert journal.lag == 0
    assert journal.path.read_text() == ""

    reopened = JobJournal(tmp_path)
    after = {jid: rec.to_dict() for jid, rec in reopened.replay().items()}
    assert after == before
    # The sequence counter survives compaction: new appends keep ascending.
    assert reopened.seq == journal.seq
    assert reopened.append("0002-j", jl.RUNNING) == journal.seq + 1


def test_replay_after_crash_between_snapshot_and_truncate(tmp_path):
    journal = JobJournal(tmp_path)
    _submit(journal, "0001-j")
    journal.append("0001-j", jl.RUNNING)
    journal.append("0001-j", jl.MERGED)
    old_lines = journal.path.read_text()
    journal.compact(JobJournal(tmp_path).replay())
    # Crash window: snapshot written, journal not yet truncated.
    journal.path.write_text(old_lines)

    jobs = JobJournal(tmp_path).replay()
    # Re-applying already-covered lines is a no-op (seq <= last_seq skipped).
    assert jobs["0001-j"].status == jl.MERGED
    assert jobs["0001-j"].seq <= journal.seq


def test_snapshot_backup_fallback(tmp_path, recwarn):
    journal = JobJournal(tmp_path)
    _submit(journal, "0001-j")
    journal.append("0001-j", jl.MERGED)
    journal.compact(JobJournal(tmp_path).replay())
    # A second compaction rotates the first snapshot to .bak ...
    _submit(journal, "0002-j")
    journal.compact(JobJournal(tmp_path).replay())
    assert journal.snapshot_path.with_suffix(".json.bak").exists() or (
        tmp_path / "journal" / "snapshot.json.bak"
    ).exists()
    # ... so a corrupted current snapshot falls back to it.
    journal.snapshot_path.write_text("{ not json")
    with pytest.warns(RuntimeWarning, match="unreadable"):
        jobs = JobJournal(tmp_path).replay()
    assert jobs["0001-j"].status == jl.MERGED
    # 0002-j lives only in the lost snapshot generation — the fallback is
    # lossy for the window between the two compactions, by design.


def test_maybe_compact_threshold(tmp_path):
    journal = JobJournal(tmp_path, compact_every=3)
    _submit(journal, "0001-j")  # 2 lines
    assert not journal.maybe_compact({"0001-j": JobRecord(job="0001-j", status=jl.QUEUED)})
    journal.append("0001-j", jl.RUNNING)  # 3rd line
    assert journal.maybe_compact(
        {"0001-j": JobRecord(job="0001-j", status=jl.RUNNING, seq=journal.seq)}
    )
    assert journal.lag == 0


def test_snapshot_version_mismatch_raises(tmp_path):
    journal = JobJournal(tmp_path)
    _submit(journal, "0001-j")
    journal.compact(JobJournal(tmp_path).replay())
    doc = json.loads(journal.snapshot_path.read_text())
    doc["v"] = 999
    journal.snapshot_path.write_text(json.dumps(doc))
    bak = journal.snapshot_path.parent / (journal.snapshot_path.name + ".bak")
    if bak.exists():
        bak.unlink()
    with pytest.raises(JournalError, match="version 999"):
        JobJournal(tmp_path).replay()


def test_job_record_apply_is_idempotent_and_forward_compatible(tmp_path):
    record = JobRecord(job="x")
    record.apply(jl.SUBMITTED, 1, {"priority": 3, "spec": SPEC})
    record.apply(jl.QUEUED, 2, {})
    record.apply(jl.QUEUED, 2, {})  # replayed duplicate: no-op
    record.apply("hologram", 3, {})  # unknown event: seq advances, state kept
    assert record.status == jl.QUEUED
    assert record.seq == 3
    # An older seq can never roll the record back.
    record.apply(jl.RUNNING, 1, {})
    assert record.status == jl.QUEUED

    # to_dict/from_dict round-trips everything replay needs.
    assert JobRecord.from_dict(record.to_dict()).to_dict() == record.to_dict()


def test_empty_and_missing_journal(tmp_path):
    journal = JobJournal(tmp_path)
    assert journal.replay() == {}
    assert journal.seq == 0 and journal.lag == 0
