"""Region behavior of GRC NAV validation over distance (Figure 23 geometry).

Three regimes, determined by who can hear what:

* **in RTS range** of the greedy pair's sender: validators know the exact
  packet size and clamp the CTS NAV precisely -> full fairness;
* **in CTS range but not RTS range**: validators fall back to the 1500-byte
  MTU bound, leaving the greedy receiver a bounded residual reservation
  (the paper quantifies it as 46.48 % above the actual packet airtime);
* **out of range**: the inflated CTS is never heard and does no harm.
"""

import pytest

from repro.experiments.common import run_grc_nav_distance
from repro.mac.frames import max_cts_nav, rts_duration, cts_duration_from_rts
from repro.phy.params import dot11b


def test_mtu_bound_overshoot_matches_paper_figure():
    """The paper: the 1500 B MTU assumption "is 46.48 % larger than the
    actual data packet size" (1024 B).  In airtime the overreservation is
    smaller because preamble and control overheads are fixed."""
    assert (1500 - 1024) / 1024 == pytest.approx(0.4648, abs=0.0005)
    phy = dot11b()
    actual = cts_duration_from_rts(phy, rts_duration(phy, 1024 + 40))
    bound = max_cts_nav(phy, 1500)
    overshoot = (bound - actual) / actual
    assert 0.0 < overshoot < 0.4648  # bounded residual advantage


def test_close_range_grc_restores_fairness():
    out = run_grc_nav_distance(1, 1.5, pair_distance_m=20.0, grc=True)
    assert out["nav_detections"] > 0
    assert out["goodput_R1"] > 0.4 * out["goodput_R2"]


def test_close_range_without_grc_starves():
    out = run_grc_nav_distance(1, 1.5, pair_distance_m=20.0, grc=False)
    assert out["goodput_R2"] > 5 * max(out["goodput_R1"], 1e-3)


def test_out_of_range_attack_is_harmless():
    out = run_grc_nav_distance(1, 1.5, pair_distance_m=120.0, grc=False)
    # Both pairs run independently at full single-cell rate.
    assert out["goodput_R1"] > 2.5
    assert out["goodput_R2"] > 2.5


def test_interference_band_hurts_without_decoding():
    """Between communication (55 m) and interference (99 m) range, the pairs
    sense each other's energy but cannot decode NAVs at all: no starvation,
    but also no detections."""
    out = run_grc_nav_distance(1, 1.5, pair_distance_m=80.0, grc=True)
    assert out["nav_detections"] == 0
    assert out["goodput_R1"] > 0.5


def test_honest_pairs_fair_at_any_distance():
    for d in (20.0, 60.0, 120.0):
        out = run_grc_nav_distance(1, 1.0, pair_distance_m=d, grc=False, nav_inflation_us=0.0)
        ratio = out["goodput_R1"] / max(out["goodput_R2"], 1e-9)
        assert 0.4 < ratio < 2.5, d
