"""Tests for the experiment registry and a sample of quick experiment runs."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, get
from repro.stats import ExperimentResult


def test_registry_covers_every_paper_artifact():
    expected = {f"fig{i}" for i in list(range(1, 20)) + [21, 22, 23, 24]}
    expected |= {f"table{i}" for i in range(1, 10)}
    # fig20 is the paper's detection flow chart (no data to reproduce).
    assert set(ALL_EXPERIMENTS) == expected


def test_get_unknown_experiment_raises():
    with pytest.raises(KeyError):
        get("fig99")


def test_every_experiment_is_importable_and_callable():
    for experiment_id in ALL_EXPERIMENTS:
        run = get(experiment_id)
        assert callable(run)


@pytest.mark.parametrize("experiment_id", ["table1", "table3", "fig21", "fig22"])
def test_cheap_experiments_produce_wellformed_rows(experiment_id):
    result = get(experiment_id)(quick=True)
    assert isinstance(result, ExperimentResult)
    assert result.rows, experiment_id
    for row in result.rows:
        assert set(result.columns) <= set(row)
    text = result.to_text()
    assert result.name in text


def test_quick_mode_smaller_than_full_settings():
    from repro.experiments.common import RunSettings

    quick = RunSettings.quick()
    full = RunSettings()
    assert quick.duration_s < full.duration_s
    assert len(quick.seeds) < len(full.seeds)
    assert RunSettings.for_mode(True) == quick
    assert RunSettings.for_mode(False) == full
