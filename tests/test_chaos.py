"""Chaos harness acceptance: sabotaged campaigns finish with identical metrics.

The issue's bar: kill at least one worker and corrupt at least one cache
entry mid-campaign, and the campaign must complete with metrics bit-identical
to a fault-free run while the manifest records the retries.  The heavy
real-simulator version of this is the ``quick`` profile (also the CI
``chaos-smoke`` job); the unit-style tests here use the no-simulator
``chaos_sleeper`` builder so each phase runs in a couple of seconds.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.faults.chaos import PROFILES, ChaosProfile, run_chaos
from repro.runtime import RetryPolicy

TOY_SPEC = {
    "campaign": {
        "name": "chaos-toy",
        "builder": "chaos_sleeper",
        "seeds": [1, 2, 3],
        "duration_s": 0.1,
    },
    "params": {"work_s": 0.15},
    "sweep": {"point": [0, 1]},
}

TOY = ChaosProfile(
    name="toy",
    spec=TOY_SPEC,
    jobs=2,
    worker_kills=1,
    cache_truncations=1,
    retry=RetryPolicy(
        max_attempts=3, backoff_base_s=0.02, backoff_max_s=0.1, max_pool_rebuilds=8
    ),
)


@pytest.fixture()
def quiet():
    """Quarantine warnings during heal are the harness working as intended."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


def test_profiles_registry_has_quick_and_full():
    assert "quick" in PROFILES and "full" in PROFILES
    assert PROFILES["full"].hang and PROFILES["full"].retry.timeout_s is not None


def test_unknown_profile_name_raises():
    with pytest.raises(KeyError, match="unknown chaos profile"):
        run_chaos("nope", "/tmp/never-used")


def test_toy_campaign_survives_kill_and_corruption(tmp_path, quiet):
    report = run_chaos(TOY, tmp_path, progress=lambda _m: None)
    assert report.problems == []
    assert report.ok
    assert report.identical
    assert report.workers_killed >= 1
    assert report.cache_entries_truncated >= 1
    assert report.cache_entries_quarantined >= 1
    assert report.retries_recorded >= 1  # the manifest records the retries
    assert report.manifest_recovered is True
    assert report.points == 2
    # the summary is printable and names the verdict
    text = "\n".join(report.summary_lines())
    assert "chaos[toy] OK" in text


def test_toy_artifacts_land_under_root(tmp_path, quiet):
    report = run_chaos(TOY, tmp_path)
    assert report.ok
    for phase in ("reference", "chaos", "healed"):
        manifest = json.loads((tmp_path / phase / "manifest.json").read_text())
        assert {p["status"] for p in manifest["points"]} == {"done"}
    chaos_manifest = json.loads((tmp_path / "chaos" / "manifest.json").read_text())
    assert sum(p["retries"] for p in chaos_manifest["points"]) >= 1
    # the sabotaged entries were moved aside, not silently deleted
    quarantine = tmp_path / "cache-chaos" / "quarantine"
    assert quarantine.exists() and any(quarantine.iterdir())


def test_hang_injection_heals_via_watchdog(tmp_path, quiet):
    profile = ChaosProfile(
        name="toy-hang",
        spec={
            "campaign": {
                "name": "chaos-toy-hang",
                "builder": "chaos_sleeper",
                "seeds": [1, 2],
                "duration_s": 0.1,
            },
            "params": {"work_s": 0.05},
            "sweep": {"point": [0, 1]},
        },
        jobs=2,
        worker_kills=0,
        cache_truncations=0,
        recover_manifest=False,
        hang=True,
        retry=RetryPolicy(
            max_attempts=3,
            timeout_s=1.0,
            backoff_base_s=0.02,
            backoff_max_s=0.1,
            max_pool_rebuilds=8,
        ),
    )
    report = run_chaos(profile, tmp_path)
    assert report.problems == []
    assert report.identical
    assert report.watchdog_kills >= 1  # every first attempt parked and was shot
    assert report.manifest_recovered is None  # phase disabled for this profile
