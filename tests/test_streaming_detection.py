"""Streaming detection pipeline: chunking invariance, state round-trips,
bounded memory, and the live tap's no-perturbation guarantee."""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.detection.streaming import (
    DetectionTap,
    LiveDetectionSession,
    StreamingDetectionPipeline,
    StreamingNavDetector,
    StreamingRtsFloodDetector,
    current_live_detection,
    default_pipeline,
    live_detection,
)
from repro.detect.diff import canonical_event_lines
from repro.net.scenario import Scenario
from repro.perf.golden import GOLDEN_TRACE_RUNS, trace_filename
from repro.stats.trace import FrameTracer, TraceRecord, load_trace_jsonl

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def nav_records():
    """The densest committed trace: NAV inflation under active validators."""
    return load_trace_jsonl(GOLDEN_DIR / trace_filename("grc_nav"))


def _feed_in_chunks(records, cuts):
    """Feed ``records`` split at ``cuts`` with a JSON snapshot/restore and a
    fresh pipeline at every boundary; return the canonical event lines."""
    events = []
    pipeline = default_pipeline()
    position = 0
    for cut in [*sorted(cuts), len(records)]:
        for record in records[position:cut]:
            events.extend(pipeline.feed(record))
        position = cut
        state = json.loads(json.dumps(pipeline.snapshot()))
        resumed = default_pipeline()
        resumed.restore(state)
        pipeline = resumed
    return canonical_event_lines(events)


def test_one_event_at_a_time_equals_straight_feed(nav_records):
    straight = default_pipeline()
    straight.feed_many(nav_records)
    assert straight.events, "golden trace should produce detections"
    one_by_one = _feed_in_chunks(nav_records, range(1, len(nav_records)))
    assert one_by_one == canonical_event_lines(straight.events)


@given(cuts=st.sets(st.integers(min_value=0, max_value=457), max_size=12))
@settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_chunking_invariance_at_arbitrary_split_points(nav_records, cuts):
    straight = default_pipeline()
    straight.feed_many(nav_records)
    chunked = _feed_in_chunks(nav_records, {c for c in cuts if c <= len(nav_records)})
    assert chunked == canonical_event_lines(straight.events)


def test_snapshot_restore_round_trips_mid_stream(nav_records):
    half = len(nav_records) // 2
    pipeline = default_pipeline()
    pipeline.feed_many(nav_records[:half])
    state = pipeline.snapshot()
    assert state == json.loads(json.dumps(state)), "snapshot must be JSON-able"
    resumed = default_pipeline()
    resumed.restore(state)
    assert resumed.records_seen == half
    assert resumed.snapshot() == state


def test_restore_rejects_detector_count_mismatch():
    pipeline = default_pipeline()
    lone = StreamingDetectionPipeline([StreamingNavDetector()])
    with pytest.raises(ValueError, match="detector states"):
        lone.restore(pipeline.snapshot())


def test_memory_high_water_stays_within_bound(nav_records):
    pipeline = default_pipeline()
    pipeline.feed_many(nav_records)
    assert 0 < pipeline.high_water <= pipeline.bound()


def test_nav_detector_purges_expired_exchanges():
    detector = StreamingNavDetector()
    for i in range(50):
        detector.feed(
            TraceRecord(
                time_us=i * 100_000.0, sender=f"S{i}", kind="RTS",
                src=f"S{i}", dst=f"R{i}", nav_us=600.0,
                size_bytes=20, rate_mbps=None, airtime_us=248.0,
            )
        )
    # Each RTS expires (~600 us) long before the next feed purges the table.
    assert detector.state_size() <= 2


def test_flood_detector_windows_are_bounded():
    detector = StreamingRtsFloodDetector(max_window_frames=16)
    for i in range(1000):
        detector.feed(
            TraceRecord(
                time_us=float(i), sender="F", kind="RTS", src="F",
                dst="X", nav_us=30_000.0, size_bytes=20,
                rate_mbps=None, airtime_us=248.0,
            )
        )
    assert detector.state_size() <= detector.bound()
    assert len(detector._rts["F"]) <= 16


def test_flood_detector_validates_parameters():
    with pytest.raises(ValueError, match="window_us"):
        StreamingRtsFloodDetector(window_us=0.0)
    with pytest.raises(ValueError, match="threshold"):
        StreamingRtsFloodDetector(threshold=0)


def test_pipeline_requires_a_detector():
    with pytest.raises(ValueError, match="at least one"):
        StreamingDetectionPipeline([])


# ---------------------------------------------------------------- live tap --


def _golden_scenario(name="fig1_nav_udp"):
    from repro.perf.scenarios import get_scenario

    seed, _duration = GOLDEN_TRACE_RUNS[name]
    return get_scenario(name).build(seed).scenario


def test_tap_does_not_perturb_the_simulation():
    plain = _golden_scenario()
    plain_tracer = FrameTracer(plain.medium)
    plain.run(0.1)

    tapped = _golden_scenario()
    tapped.attach_streaming_detection()
    tapped_tracer = FrameTracer(tapped.medium)
    tapped.run(0.1)

    assert [r.to_line() for r in plain_tracer.records] == [
        r.to_line() for r in tapped_tracer.records
    ]


def test_live_tap_equals_replaying_the_trace():
    scenario = _golden_scenario()
    pipeline = scenario.attach_streaming_detection()
    tracer = FrameTracer(scenario.medium)
    scenario.run(0.1)
    assert pipeline.records_seen == len(tracer.records)

    replay = default_pipeline(scenario.phy)
    replay.feed_many(tracer.records)
    assert canonical_event_lines(pipeline.events) == canonical_event_lines(
        replay.events
    )


def test_attach_twice_raises():
    scenario = Scenario(seed=1)
    scenario.attach_streaming_detection()
    with pytest.raises(RuntimeError, match="already attached"):
        scenario.attach_streaming_detection()


def test_tap_detach_restores_transmit():
    scenario = Scenario(seed=1)
    original = scenario.medium.transmit
    pipeline = default_pipeline(scenario.phy)
    tap = DetectionTap(scenario.medium, pipeline)
    assert scenario.medium.transmit != original
    tap.detach()
    assert scenario.medium.transmit == original


def test_ambient_live_detection_attaches_to_every_scenario():
    assert current_live_detection() is None
    with live_detection() as session:
        assert current_live_detection() is session
        a = Scenario(seed=1)
        b = Scenario(seed=2)
        assert a.streaming_pipeline in session.pipelines
        assert b.streaming_pipeline in session.pipelines
        assert len(session.pipelines) == 2
    assert current_live_detection() is None
    outside = Scenario(seed=3)
    assert outside.streaming_pipeline is None


def test_session_summary_rolls_up_by_detector():
    session = LiveDetectionSession()
    with live_detection(session):
        scenario = _golden_scenario()
    scenario.run(0.1)
    summary = session.summary()
    assert summary["scenarios"] == 1
    assert summary["events"] == session.total_events() > 0
    assert summary["by_detector"]["nav"] > 0
    assert summary["high_water"] > 0


def test_run_settings_streaming_detection_attaches_summary():
    from repro.experiments import fig1_nav_udp
    from repro.experiments.common import RunSettings

    settings_ = RunSettings.quick().replace(
        duration_s=0.1, seeds=(1,), streaming_detection=True
    )
    result = fig1_nav_udp.run(settings_)
    assert result.streaming["scenarios"] >= 1
    assert result.streaming["by_detector"].get("nav", 0) > 0
