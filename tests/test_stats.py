"""Unit tests for result containers and statistics helpers."""

import pytest

from repro.mac.stats import MacStats
from repro.stats import ExperimentResult, format_table, median, median_over_seeds


def test_median():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([1.0, 2.0]) == 1.5
    with pytest.raises(ValueError):
        median([])


def test_median_over_seeds():
    outcomes = {1: {"x": 1.0, "y": 10.0}, 2: {"x": 3.0, "y": 30.0}, 3: {"x": 2.0, "y": 20.0}}
    result = median_over_seeds(lambda seed: outcomes[seed], [1, 2, 3])
    assert result == {"x": 2.0, "y": 20.0}


def test_median_over_seeds_validates_inputs():
    with pytest.raises(ValueError):
        median_over_seeds(lambda s: {}, [])
    outcomes = {1: {"x": 1.0}, 2: {"y": 2.0}}
    with pytest.raises(ValueError):
        median_over_seeds(lambda seed: outcomes[seed], [1, 2])


def test_experiment_result_rows_and_series():
    result = ExperimentResult("T", "desc", columns=["a", "b"])
    result.add_row(a=1, b=2.0)
    result.add_row(a=2, b=4.0)
    assert result.series("a", "b") == [(1, 2.0), (2, 4.0)]
    assert result.column("b") == [2.0, 4.0]


def test_experiment_result_rejects_missing_columns():
    result = ExperimentResult("T", "desc", columns=["a", "b"])
    with pytest.raises(ValueError):
        result.add_row(a=1)


def test_experiment_result_to_text():
    result = ExperimentResult("T", "desc", columns=["a"])
    result.add_row(a=1.23456)
    text = result.to_text()
    assert "== T ==" in text
    assert "1.235" in text  # 4 significant digits


def test_format_table_alignment():
    out = format_table(["col", "x"], [["a", "1"], ["bb", "22"]])
    lines = out.splitlines()
    assert lines[0].startswith("col")
    assert len(lines) == 4


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_mac_stats_cw_accounting():
    stats = MacStats()
    for cw in (31, 31, 63):
        stats.sample_cw(cw)
    assert stats.average_cw == pytest.approx((31 + 31 + 63) / 3)
    dist = stats.cw_distribution()
    assert dist[31] == pytest.approx(2 / 3)
    assert dist[63] == pytest.approx(1 / 3)


def test_mac_stats_empty():
    stats = MacStats()
    assert stats.average_cw == 0.0
    assert stats.cw_distribution() == {}
    assert stats.mac_loss_rate("x") == 0.0


def test_mac_loss_rate():
    stats = MacStats()
    stats.data_attempts_by_dst["r"] = 10
    stats.ack_failures_by_dst["r"] = 3
    assert stats.mac_loss_rate("r") == 0.3
