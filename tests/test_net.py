"""Unit tests for nodes, routing, and wired links."""

import pytest

from repro.net.scenario import Scenario
from repro.transport.packets import Packet, PacketKind


def test_missing_route_raises():
    s = Scenario(seed=1)
    node = s.add_wireless_node("a")
    packet = Packet(PacketKind.UDP_DATA, "f", "a", "ghost")
    with pytest.raises(LookupError):
        node.send_packet(packet)


def test_wireless_route_without_mac_raises():
    s = Scenario(seed=1)
    wired = s.add_wired_node("w")
    wired.add_wireless_route("b")
    with pytest.raises(RuntimeError):
        wired.send_packet(Packet(PacketKind.UDP_DATA, "f", "w", "b"))


def test_duplicate_flow_binding_rejected():
    s = Scenario(seed=1)
    node = s.add_wireless_node("a")
    node.bind_agent("f", object())
    with pytest.raises(ValueError):
        node.bind_agent("f", object())


def test_duplicate_node_names_rejected():
    s = Scenario(seed=1)
    s.add_wireless_node("a")
    with pytest.raises(ValueError):
        s.add_wireless_node("a")
    with pytest.raises(ValueError):
        s.add_wired_node("a")


def test_wired_link_delivers_after_delay():
    s = Scenario(seed=1)
    a = s.add_wired_node("a")
    b = s.add_wired_node("b")
    link = s.wired_link("a", "b", one_way_delay_us=5000.0)
    received = []

    class Agent:
        def receive(self, packet):
            received.append((packet.seq, s.sim.now))

    b.bind_agent("f", Agent())
    a.add_wired_route("b", link)
    a.send_packet(Packet(PacketKind.UDP_DATA, "f", "a", "b", seq=7))
    s.sim.run()
    assert received == [(7, 5000.0)]


def test_wired_link_bandwidth_serialization():
    s = Scenario(seed=1)
    a = s.add_wired_node("a")
    b = s.add_wired_node("b")
    # 1 Mbps: a 1000+40 B packet takes 8320 us to serialize.
    link = s.wired_link("a", "b", one_way_delay_us=0.0, bandwidth_bps=1e6)
    times = []

    class Agent:
        def receive(self, packet):
            times.append(s.sim.now)

    b.bind_agent("f", Agent())
    a.add_wired_route("b", link)
    for i in range(2):
        a.send_packet(
            Packet(PacketKind.UDP_DATA, "f", "a", "b", seq=i, payload_bytes=1000)
        )
    s.sim.run()
    assert times[0] == pytest.approx(8320.0)
    assert times[1] == pytest.approx(16640.0)  # queued behind the first


def test_wired_link_rejects_foreign_sender():
    s = Scenario(seed=1)
    a = s.add_wired_node("a")
    b = s.add_wired_node("b")
    c = s.add_wired_node("c")
    link = s.wired_link("a", "b", 100.0)
    with pytest.raises(ValueError):
        link.transmit(Packet(PacketKind.UDP_DATA, "f", "c", "b"), c)


def test_negative_delay_rejected():
    s = Scenario(seed=1)
    s.add_wired_node("a")
    s.add_wired_node("b")
    with pytest.raises(ValueError):
        s.wired_link("a", "b", -1.0)


def test_ap_forwards_between_wire_and_wireless():
    """Remote host -> wired link -> AP -> wireless client, and back."""
    s = Scenario(seed=1)
    s.add_wireless_node("AP")
    s.add_wireless_node("client")
    remote = s.add_wired_node("remote")
    link = s.wired_link("remote", "AP", 2000.0)
    s.route_remote_flow("remote", "AP", "client", link)
    snd, rcv = s.tcp_flow("remote", "client", auto_route=False)
    snd.start()
    s.run(2.0)
    assert rcv.segments_received > 50
    assert s.nodes["AP"].forwarded > 100  # data down + ACKs back up
