"""Deterministic fault injection: configs, channel, jammer, crashes.

The contract under test (DESIGN.md §11): every impairment is off by
default and zero-cost when disabled; enabled impairments draw only from
their dedicated RNG streams (``faults.channel`` / ``faults.jammer``), so
equal seeds plus equal plans give bit-identical runs; and a crash resets
exactly the MAC state the paper's machines would lose.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    CrashConfig,
    FaultPlan,
    GilbertElliottConfig,
    JammerConfig,
)
from repro.net.scenario import Scenario

US = 1_000_000.0


def _two_pairs(seed: int, plan: FaultPlan | None = None, install_empty: bool = False):
    s = Scenario(seed=seed, rts_enabled=False)
    for name in ("S0", "S1", "R0", "R1"):
        s.add_wireless_node(name)
    if plan is not None and (install_empty or not plan.empty):
        s.install_faults(plan)
    f0, k0 = s.udp_flow("S0", "R0")
    f1, k1 = s.udp_flow("S1", "R1")
    f0.start()
    f1.start()
    return s, k0, k1


def _run(seed: int, plan: FaultPlan | None = None, duration_s: float = 0.4,
         install_empty: bool = False):
    s, k0, k1 = _two_pairs(seed, plan, install_empty=install_empty)
    s.run(duration_s)
    us = duration_s * US
    return s, (k0.goodput_mbps(us), k1.goodput_mbps(us))


# ------------------------------------------------------------- validation ----


def test_gilbert_elliott_config_rejects_bad_probabilities():
    with pytest.raises(ValueError, match="p_good_to_bad"):
        GilbertElliottConfig(p_good_to_bad=1.5)
    with pytest.raises(ValueError, match="fer_bad"):
        GilbertElliottConfig(fer_bad=-0.1)


def test_jammer_config_rejects_degenerate_timing():
    with pytest.raises(ValueError, match="burst_us"):
        JammerConfig(burst_us=0.0)
    with pytest.raises(ValueError, match="period_us"):
        JammerConfig(period_us=100.0, burst_us=200.0)
    with pytest.raises(ValueError, match="jitter_us"):
        JammerConfig(jitter_us=-1.0)


def test_crash_config_rejects_negative_times():
    with pytest.raises(ValueError, match="at_s"):
        CrashConfig("S0", at_s=-1.0)
    with pytest.raises(ValueError, match="reboot_after_s"):
        CrashConfig("S0", at_s=1.0, reboot_after_s=0.0)


def test_fault_plan_empty_property():
    assert FaultPlan().empty
    assert not FaultPlan(jammer=JammerConfig()).empty
    assert not FaultPlan(crashes=[CrashConfig("S0", at_s=1.0)]).empty
    # list input is coerced to a tuple (plans stay hashable/frozen)
    assert isinstance(FaultPlan(crashes=[CrashConfig("S0", at_s=1.0)]).crashes, tuple)


def test_crashing_unknown_node_raises():
    s = Scenario(seed=1)
    s.add_wireless_node("S0")
    with pytest.raises(ValueError, match="unknown node 'GHOST'"):
        s.install_faults(FaultPlan(crashes=(CrashConfig("GHOST", at_s=0.1),)))


def test_install_faults_twice_raises():
    s = Scenario(seed=1)
    s.add_wireless_node("S0")
    s.install_faults(FaultPlan(jammer=JammerConfig()))
    with pytest.raises(RuntimeError, match="once"):
        s.install_faults(FaultPlan())


# ---------------------------------------------------------- zero-cost off ----


def test_faults_off_by_default():
    s = Scenario(seed=1)
    assert s.fault_injector is None
    assert s.medium.faults is None


def test_empty_plan_is_bit_identical_to_no_install():
    _, base = _run(3)
    s, installed = _run(3, FaultPlan(), install_empty=True)
    assert installed == base
    assert s.medium.faults is None  # empty plan never touches the hot path


def test_channel_on_unmatched_links_changes_nothing():
    # The chain is armed but filtered to a link that never carries traffic;
    # its draws come from the dedicated stream, so the run stays identical.
    _, base = _run(3)
    plan = FaultPlan(
        channel=GilbertElliottConfig(fer_bad=1.0, links=(("GHOST", "NOBODY"),))
    )
    s, filtered = _run(3, plan)
    assert filtered == base
    assert s.fault_injector.counters()["channel_corrupted_frames"] == 0


# ------------------------------------------------------------- GE channel ----


BURSTY = FaultPlan(
    channel=GilbertElliottConfig(
        p_good_to_bad=0.05, p_bad_to_good=0.2, fer_good=0.0, fer_bad=0.9
    )
)


def test_channel_is_seed_deterministic():
    s1, g1 = _run(5, BURSTY)
    s2, g2 = _run(5, BURSTY)
    assert g1 == g2
    assert s1.fault_injector.counters() == s2.fault_injector.counters()
    _, g3 = _run(6, BURSTY)
    assert g3 != g1


def test_channel_corrupts_frames_and_costs_goodput():
    _, clean = _run(5)
    s, lossy = _run(5, BURSTY)
    counters = s.fault_injector.counters()
    assert counters["channel_corrupted_frames"] > 0
    assert counters["channel_transitions_to_bad"] > 0
    assert sum(lossy) < sum(clean)


def test_channel_always_bad_is_a_blackout():
    plan = FaultPlan(
        channel=GilbertElliottConfig(
            p_good_to_bad=1.0, p_bad_to_good=0.0, fer_good=1.0, fer_bad=1.0
        )
    )
    _, goodput = _run(2, plan)
    assert goodput == (0.0, 0.0)


# ----------------------------------------------------------------- jammer ----


JAMMED = FaultPlan(
    jammer=JammerConfig(period_us=10_000.0, burst_us=2_000.0, jitter_us=500.0)
)


def test_jammer_is_seed_deterministic_and_costs_goodput():
    s1, g1 = _run(7, JAMMED)
    s2, g2 = _run(7, JAMMED)
    assert g1 == g2
    assert s1.fault_injector.counters() == s2.fault_injector.counters()
    assert s1.fault_injector.counters()["jammer_bursts"] > 0
    _, clean = _run(7)
    assert sum(g1) < sum(clean)


def test_jam_bursts_are_never_decodable_data():
    s, _ = _run(7, JAMMED)
    for mac in s.macs.values():
        # jam energy shows up as corrupted receptions, never as clean frames
        assert mac.stats.rx_data_clean >= 0
    bursts = s.fault_injector.counters()["jammer_bursts"]
    assert bursts == s.fault_injector.jammer.bursts
    # roughly duration/period bursts fired (jitter stretches the period)
    assert bursts <= 0.4 * US / 10_000.0 + 1


# ---------------------------------------------------------- crash/reboot ----


def test_crash_drops_queue_and_stops_the_flow():
    plan = FaultPlan(crashes=(CrashConfig("S0", at_s=0.15),))
    _, clean = _run(4)
    s, crashed = _run(4, plan)
    stats = s.macs["S0"].stats
    assert stats.crashes == 1
    assert stats.reboots == 0
    assert stats.crash_dropped_msdus > 0
    assert s.macs["S0"].offline
    assert crashed[0] < clean[0]  # the crashed pair loses goodput


def test_reboot_restores_the_flow():
    crash_only = FaultPlan(crashes=(CrashConfig("S0", at_s=0.1),))
    with_reboot = FaultPlan(
        crashes=(CrashConfig("S0", at_s=0.1, reboot_after_s=0.1),)
    )
    s1, dead = _run(4, crash_only)
    s2, revived = _run(4, with_reboot)
    assert s2.macs["S0"].stats.reboots == 1
    assert not s2.macs["S0"].offline
    assert revived[0] > dead[0]


def test_crash_is_seed_deterministic():
    plan = FaultPlan(
        crashes=(CrashConfig("S0", at_s=0.12, reboot_after_s=0.08),)
    )
    s1, g1 = _run(9, plan)
    s2, g2 = _run(9, plan)
    assert g1 == g2
    assert (
        s1.macs["S0"].stats.crash_dropped_msdus
        == s2.macs["S0"].stats.crash_dropped_msdus
    )


def test_crash_is_idempotent_and_offline_mac_sends_nothing():
    s = Scenario(seed=1)
    s.add_wireless_node("S0")
    s.add_wireless_node("R0")
    flow, _sink = s.udp_flow("S0", "R0")
    flow.start()
    s.run(0.05)
    mac = s.macs["S0"]
    mac.crash()
    mac.crash()  # second crash of a dead station is a no-op
    assert mac.stats.crashes == 1
    dropped_before = mac.stats.crash_dropped_msdus
    assert mac.send(b"x" * 100, "R0", 100) is False
    assert mac.stats.crash_dropped_msdus == dropped_before + 1
    mac.reboot()
    mac.reboot()  # rebooting a live station is a no-op too
    assert mac.stats.reboots == 1
    assert mac.send(b"x" * 100, "R0", 100) is True


def test_crash_only_plan_leaves_medium_hot_path_alone():
    s = Scenario(seed=1)
    s.add_wireless_node("S0")
    s.install_faults(FaultPlan(crashes=(CrashConfig("S0", at_s=0.1),)))
    assert s.medium.faults is None  # no medium-level model enabled
    assert s.fault_injector is not None
