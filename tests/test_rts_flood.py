"""The RTS-flood attack-zoo entry: attacker model, config validation,
frozen-seed ROC regression for its streaming detector, and the ext_rts_roc
experiment/campaign plumbing."""

from __future__ import annotations

import pytest

from repro.experiments.ext_rts_roc import run_rts_flood_roc
from repro.faults import FaultPlan, RtsFloodConfig
from repro.net.scenario import Scenario
from repro.phy.channel import ChannelConfig
from repro.stats.trace import FrameTracer


def _flooded_scenario(seed=3, jitter_us=0.0):
    s = Scenario(seed=seed, channel=ChannelConfig(ranges=(55.0, 99.0)))
    s.add_wireless_node("S1", (0.0, 0.0))
    s.add_wireless_node("R1", (5.0, 0.0))
    tracer = FrameTracer(s.medium)
    s.install_faults(
        FaultPlan(
            rts_flood=RtsFloodConfig(
                period_us=2_000.0, nav_us=30_000.0, jitter_us=jitter_us
            )
        )
    )
    src, _sink = s.udp_flow("S1", "R1")
    src.start()
    return s, tracer


# -------------------------------------------------------------- attacker ----


def test_flood_config_validation():
    with pytest.raises(ValueError, match="period_us"):
        RtsFloodConfig(period_us=0.0)
    with pytest.raises(ValueError, match="nav_us"):
        RtsFloodConfig(nav_us=0.0)
    with pytest.raises(ValueError, match="nav_us"):
        RtsFloodConfig(nav_us=40_000.0)  # beyond the duration-field cap
    with pytest.raises(ValueError, match="jitter_us"):
        RtsFloodConfig(jitter_us=-1.0)
    with pytest.raises(ValueError, match="start_us"):
        RtsFloodConfig(start_us=-1.0)


def test_flood_plan_is_not_empty_and_counts_frames():
    plan = FaultPlan(rts_flood=RtsFloodConfig())
    assert not plan.empty
    s, tracer = _flooded_scenario()
    s.run(0.1)
    counters = s.fault_injector.counters()
    flood_frames = [
        r for r in tracer.records if r.sender == "FLOODER" and r.kind == "RTS"
    ]
    assert counters["rtsflood_frames"] == len(flood_frames) > 0
    assert all(r.nav_us == 30_000.0 for r in flood_frames)
    # Real decodable frames need no delivery hook: medium.faults stays unset.
    assert s.medium.faults is None


def test_flood_reserves_the_channel():
    """The DoS itself: honest traffic collapses once the flood starts."""
    clean = Scenario(seed=3, channel=ChannelConfig(ranges=(55.0, 99.0)))
    clean.add_wireless_node("S1", (0.0, 0.0))
    clean.add_wireless_node("R1", (5.0, 0.0))
    src, sink_clean = clean.udp_flow("S1", "R1")
    src.start()
    clean.run(0.25)
    flooded_s, tracer = _flooded_scenario()
    flooded_s.run(0.25)
    first_flood = min(
        r.time_us for r in tracer.records if r.sender == "FLOODER"
    )
    honest_after = [
        r
        for r in tracer.records
        if r.sender == "S1" and r.kind == "DATA" and r.time_us > first_flood
    ]
    assert sink_clean.goodput_mbps(250_000.0) > 0
    # Every overhearer defers for the claimed 30 ms reservation per 2 ms
    # period, so once the first flood RTS lands the honest pair gets nothing.
    assert honest_after == []


def test_flood_timing_is_deterministic_with_jitter():
    a_s, a_tracer = _flooded_scenario(jitter_us=500.0)
    a_s.run(0.1)
    b_s, b_tracer = _flooded_scenario(jitter_us=500.0)
    b_s.run(0.1)
    assert [r.to_line() for r in a_tracer.records] == [
        r.to_line() for r in b_tracer.records
    ]


# ------------------------------------------------ frozen-seed ROC pinning ---

#: Pinned operating points of the streaming flood detector at seed 1 over
#: 0.5 simulated seconds (flood period 10 ms, window 100 ms — ~10 flood RTS
#: per window): threshold -> (flagged on flooded run, detections on flooded
#: run, honest senders flagged on clean run, detections on clean run).
ROC_SEED = 1
ROC_DURATION_S = 0.5
ROC_PINNED = {
    2: (1.0, 5.0, 2.0, 6.0),
    8: (1.0, 5.0, 0.0, 0.0),
    32: (0.0, 0.0, 0.0, 0.0),
}


@pytest.mark.parametrize("threshold", sorted(ROC_PINNED))
def test_roc_operating_point_is_pinned(threshold):
    expected_tp, expected_det, expected_fp, expected_clean_det = ROC_PINNED[
        threshold
    ]
    flooded = run_rts_flood_roc(
        ROC_SEED, ROC_DURATION_S, threshold=threshold, flood=True
    )
    clean = run_rts_flood_roc(
        ROC_SEED, ROC_DURATION_S, threshold=threshold, flood=False
    )
    failures = []
    for name, got, pinned in (
        ("true_positive", flooded["flooder_flagged"], expected_tp),
        ("flood_detections", flooded["detections"], expected_det),
        ("false_positive", clean["honest_flagged"], expected_fp),
        ("clean_detections", clean["detections"], expected_clean_det),
    ):
        if got != pinned:
            failures.append(
                f"threshold {threshold}: {name} drifted to {got:g} — "
                f"pinned {pinned:g} (seed {ROC_SEED}, "
                f"{ROC_DURATION_S:g}s simulated)"
            )
    assert not failures, "\n".join(failures)


def test_roc_monotonicity_across_pinned_thresholds():
    """Raising the threshold never flags more: both rates fall (or hold)."""
    tps = [ROC_PINNED[t][0] for t in sorted(ROC_PINNED)]
    fps = [ROC_PINNED[t][2] for t in sorted(ROC_PINNED)]
    assert tps == sorted(tps, reverse=True)
    assert fps == sorted(fps, reverse=True)


# --------------------------------------------------- experiment plumbing ----


def test_ext_rts_roc_quick_end_to_end():
    from repro.experiments import get_entry
    from repro.experiments.common import RunSettings

    entry = get_entry("ext_rts_roc")
    assert entry.extension and entry.builder == "rts_flood_roc"
    settings = RunSettings(duration_s=0.3, seeds=(1,), mode="quick")
    result = entry.runner(settings)
    assert result.column("threshold") == [1.0, 4.0, 16.0]
    for row in result.rows:
        assert 0.0 <= row["true_positive"] <= 1.0
        assert 0.0 <= row["false_positive"] <= 1.0


def test_campaign_builder_matches_runner():
    from repro.campaign import get_builder

    builder = get_builder("rts_flood_roc")
    assert builder(5, 0.2, threshold=4, flood=True) == run_rts_flood_roc(
        5, 0.2, threshold=4, flood=True
    )


def test_campaign_spec_loads_and_runs_one_point(tmp_path):
    from repro.campaign import run_campaign
    from repro.campaign.spec import load_spec

    spec = load_spec("examples/campaigns/ext_rts_roc.toml", quick=True)
    assert spec.n_points == 6
    run_campaign(spec, out_dir=tmp_path / "run", use_cache=False)
