"""Orchestrator + subprocess executor end to end: dispatch, kill, heal, merge.

The expensive cases (real OS worker processes) run on a deliberately tiny
grid.  The chaos case is the PR's core claim: SIGKILL one shard's worker
mid-run, let the orchestrator re-dispatch it, and require the healed merged
output to be byte-identical to an undisturbed single-host run.
"""

from __future__ import annotations

import json

import pytest

pytest.importorskip("tomllib", reason="TOML campaign specs need Python 3.11+")

from repro.campaign import metrics_fingerprint, run_campaign
from repro.campaign.spec import spec_from_dict
from repro.cli import main
from repro.fleet import (
    CHAOS_KILL_ENV,
    FleetError,
    FleetState,
    fleet_state_path,
    fleet_status_document,
    run_fleet,
    shard_dir,
)

SPEC_TOML = """\
[campaign]
name = "fleet_small"
builder = "nav_pairs"
seeds = [1, 2]
duration_s = 0.2

[params]
transport = "udp"

[sweep]
n_greedy = [0, 1]

[zip]
alpha = [0, 6]
nav_inflation_us = [0.0, 600.0]
"""

SPEC_DOC = {
    "campaign": {
        "name": "fleet_small",
        "builder": "nav_pairs",
        "seeds": [1, 2],
        "duration_s": 0.2,
    },
    "params": {"transport": "udp"},
    "sweep": {"n_greedy": [0, 1]},
    "zip": {"alpha": [0, 6], "nav_inflation_us": [0.0, 600.0]},
}


@pytest.fixture()
def spec():
    return spec_from_dict(SPEC_DOC)


@pytest.fixture()
def spec_toml(tmp_path):
    path = tmp_path / "fleet_small.toml"
    path.write_text(SPEC_TOML)
    return path


def test_subprocess_executor_matches_single_host(tmp_path, spec):
    single = tmp_path / "single"
    run_campaign(spec, out_dir=single)

    fleet_out = tmp_path / "fleet"
    result = run_fleet(spec, fleet_out, n_shards=2, executor="subprocess")
    assert result.ok and result.merged
    assert result.manifest.complete
    # Independent OS processes actually ran: each shard kept a worker log.
    assert (shard_dir(fleet_out, 0) / "worker.log").exists()
    assert (shard_dir(fleet_out, 1) / "worker.log").exists()

    assert metrics_fingerprint(fleet_out) == metrics_fingerprint(single)
    assert (fleet_out / "results.csv").read_bytes() == (
        single / "results.csv"
    ).read_bytes()


def test_killed_shard_is_redispatched_and_merge_is_byte_identical(
    tmp_path, spec, monkeypatch
):
    """SIGKILL shard 0's worker after its first point; healing must restore
    the exact single-host bytes."""
    single = tmp_path / "single"
    run_campaign(spec, out_dir=single)

    monkeypatch.setenv(CHAOS_KILL_ENV, "0")
    fleet_out = tmp_path / "fleet"
    result = run_fleet(spec, fleet_out, n_shards=2, executor="subprocess")
    assert result.ok and result.merged

    state = result.state
    assert state.shards[0].attempts == 2  # killed once, healed on re-dispatch
    assert state.shards[1].attempts == 1
    assert (shard_dir(fleet_out, 0) / ".chaos-killed").exists()

    assert metrics_fingerprint(fleet_out) == metrics_fingerprint(single)
    assert (fleet_out / "results.csv").read_bytes() == (
        single / "results.csv"
    ).read_bytes()


def test_more_shards_than_points(tmp_path):
    spec = spec_from_dict(
        {
            "campaign": {
                "name": "tiny",
                "builder": "nav_pairs",
                "seeds": [1],
                "duration_s": 0.15,
            },
            "sweep": {"n_greedy": [0, 1]},
        }
    )
    result = run_fleet(spec, tmp_path / "fleet", n_shards=5, executor="local")
    assert result.ok
    assert result.manifest.complete
    empties = [entry for entry in result.state.shards if not entry.point_ids]
    assert len(empties) == 3
    assert all(entry.status == "done" for entry in result.state.shards)


def test_stale_out_dir_is_refused(tmp_path, spec):
    fleet_out = tmp_path / "fleet"
    result = run_fleet(spec, fleet_out, n_shards=2, executor="local")
    assert result.ok
    other = spec_from_dict(
        {**SPEC_DOC, "campaign": {**SPEC_DOC["campaign"], "seeds": [1, 2, 3]}}
    )
    with pytest.raises(FleetError, match="fresh --out"):
        run_fleet(other, fleet_out, n_shards=2, executor="local")


def test_fleet_state_round_trips(tmp_path, spec):
    fleet_out = tmp_path / "fleet"
    result = run_fleet(spec, fleet_out, n_shards=3, executor="local")
    assert result.ok
    state = FleetState.load(fleet_state_path(fleet_out))
    assert state.merged
    assert state.n_shards == 3
    assert [entry.shard for entry in state.shards] == [0, 1, 2]
    assert {pid for entry in state.shards for pid in entry.point_ids} == {
        point.id for point in result.manifest.points
    }


def test_fleet_status_document(tmp_path, spec):
    fleet_out = tmp_path / "fleet"
    run_fleet(spec, fleet_out, n_shards=2, executor="local")
    doc = fleet_status_document(fleet_out)
    assert doc["merged"] and doc["complete"]
    assert doc["done"] == doc["total"] == spec.n_points
    assert len(doc["shards"]) == 2
    assert all(shard["status"] == "done" for shard in doc["shards"])
    json.dumps(doc)  # the whole document is JSON-serializable


# -------------------------------------------------------------------- CLI ---


def run_cli(*argv):
    return main([str(arg) for arg in argv])


def test_cli_fleet_run_and_status(tmp_path, spec_toml, capsys):
    single = tmp_path / "single"
    assert run_cli("campaign", "run", spec_toml, "--out", single) == 0
    capsys.readouterr()

    fleet_out = tmp_path / "fleet"
    code = run_cli(
        "fleet", "run", spec_toml, "--shards", 2, "--executor", "local",
        "--out", fleet_out, "-v",
    )
    assert code == 0
    text = capsys.readouterr().out
    assert "merged: 4/4 points done" in text
    assert (fleet_out / "results.csv").read_bytes() == (
        single / "results.csv"
    ).read_bytes()

    assert run_cli("fleet", "status", fleet_out, "--expect-complete") == 0
    text = capsys.readouterr().out
    assert "4/4 points done" in text

    assert run_cli("fleet", "status", fleet_out, "--json") == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["complete"] is True
    assert doc["n_shards"] == 2


def test_cli_fleet_status_on_missing_dir(tmp_path, capsys):
    assert run_cli("fleet", "status", tmp_path / "nope") == 2
    assert "no fleet state" in capsys.readouterr().err
