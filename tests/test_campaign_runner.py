"""End-to-end campaign runs: manifests, resume, failures, serial equivalence.

The acceptance bar from the issue: a campaign run of the Figure 1 spec must
reproduce the serial ``repro run fig1`` numbers exactly for the same seeds,
and resuming a finished campaign re-executes zero points.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign import (
    BACKUP_SUFFIX,
    DONE,
    FAILED,
    PENDING,
    CampaignError,
    Manifest,
    ManifestError,
    aggregate,
    load_point_results,
    manifest_path,
    point_path,
    run_campaign,
    spec_from_dict,
    spec_hash,
)
from repro.experiments import fig1_nav_udp

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "campaigns"

SMALL = {
    "campaign": {
        "name": "small",
        "builder": "nav_pairs",
        "seeds": [1, 2],
        "duration_s": 0.2,
    },
    "params": {"transport": "udp"},
    "zip": {"alpha": [0, 6], "nav_inflation_us": [0.0, 600.0]},
}


def small_spec():
    return spec_from_dict(SMALL)


def test_run_produces_manifest_points_and_reports(tmp_path):
    spec = small_spec()
    summary = run_campaign(spec, out_dir=tmp_path, jobs=1)
    assert summary.executed == 2 and summary.skipped == 0 and summary.failed == 0
    manifest = Manifest.load(manifest_path(tmp_path))
    assert manifest.complete and manifest.total == 2
    assert manifest.spec_hash == spec_hash(spec)
    for point in manifest.points:
        assert point.status == DONE
        assert point.seeds_done == [1, 2]
        payload = json.loads(point_path(tmp_path, point).read_text())
        assert set(payload["per_seed"]) == {"1", "2"}
        assert "goodput_R0" in payload["median"]
    assert (tmp_path / "results.csv").exists()
    assert (tmp_path / "results.json").exists()


def test_resume_reexecutes_nothing(tmp_path):
    spec = small_spec()
    run_campaign(spec, out_dir=tmp_path)
    summary = run_campaign(spec, out_dir=tmp_path, resume=True)
    assert summary.executed == 0
    assert summary.skipped == 2


def test_rerun_without_resume_hits_the_cache(tmp_path):
    spec = small_spec()
    first = run_campaign(spec, out_dir=tmp_path)
    assert first.cache_stats["hits"] == 0
    again = run_campaign(spec, out_dir=tmp_path)  # fresh manifest, same cache
    assert again.executed == 2  # points re-run ...
    assert again.cache_stats["hits"] == 4  # ... but every seed comes from cache


def test_resume_after_simulated_interrupt(tmp_path):
    spec = small_spec()
    run_campaign(spec, out_dir=tmp_path)
    # Simulate a run interrupted mid-point: the manifest says pending and the
    # point file never landed.
    manifest = Manifest.load(manifest_path(tmp_path))
    victim = manifest.points[0]
    victim.status = PENDING
    victim.seeds_done = []
    manifest.save(manifest_path(tmp_path))
    point_path(tmp_path, victim).unlink()

    summary = run_campaign(spec, out_dir=tmp_path, resume=True)
    assert summary.executed == 1  # only the interrupted point
    assert summary.skipped == 1
    assert Manifest.load(manifest_path(tmp_path)).complete


def test_resume_refuses_a_changed_spec(tmp_path):
    run_campaign(small_spec(), out_dir=tmp_path)
    changed = dict(SMALL, campaign=dict(SMALL["campaign"], duration_s=0.3))
    with pytest.raises(CampaignError, match="spec"):
        run_campaign(spec_from_dict(changed), out_dir=tmp_path, resume=True)


def test_resume_refuses_a_changed_code_version(tmp_path):
    spec = small_spec()
    run_campaign(spec, out_dir=tmp_path)
    manifest = Manifest.load(manifest_path(tmp_path))
    manifest.code_version = "0" * 16  # as if the simulator changed since
    manifest.save(manifest_path(tmp_path))
    with pytest.raises(CampaignError, match="code changed"):
        run_campaign(spec, out_dir=tmp_path, resume=True)


def test_failed_point_is_recorded_and_run_continues(tmp_path):
    data = {
        "campaign": {
            "name": "failing",
            "builder": "nav_pairs",
            "seeds": [1],
            "duration_s": 0.1,
        },
        "params": {"transport": "udp"},
        # the second value names a frame kind that does not exist, so that
        # point's builder raises inside the worker
        "sweep": {"inflate_frames": [["CTS"], ["NOPE"]]},
    }
    summary = run_campaign(spec_from_dict(data), out_dir=tmp_path)
    assert summary.executed == 1 and summary.failed == 1
    manifest = Manifest.load(manifest_path(tmp_path))
    assert manifest.count(DONE) == 1
    assert manifest.count(FAILED) == 1
    failed = next(p for p in manifest.points if p.status == FAILED)
    assert "NOPE" in failed.error
    assert not manifest.complete
    # reports cover the done point only
    results = load_point_results(tmp_path, manifest)
    columns, rows = aggregate(manifest, results)
    assert len(rows) == 1
    assert columns[:2] == ["index", "point"]


def test_corrupt_point_file_is_a_readable_error(tmp_path):
    run_campaign(small_spec(), out_dir=tmp_path)
    manifest = Manifest.load(manifest_path(tmp_path))
    point_path(tmp_path, manifest.points[0]).write_text("{not json")
    with pytest.raises(CampaignError, match="missing or corrupt"):
        load_point_results(tmp_path, manifest)


def test_parallel_campaign_matches_serial_campaign(tmp_path):
    spec = small_spec()
    serial = run_campaign(spec, out_dir=tmp_path / "serial", jobs=1)
    fanned = run_campaign(spec, out_dir=tmp_path / "fanned", jobs=2)
    a = load_point_results(tmp_path / "serial", serial.manifest)
    b = load_point_results(tmp_path / "fanned", fanned.manifest)
    assert a == b  # floats exact, no tolerance


@pytest.mark.skipif(
    not (EXAMPLES / "fig1_nav_udp.toml").exists(), reason="example spec missing"
)
def test_fig1_campaign_matches_serial_experiment(tmp_path):
    """Acceptance: campaign medians == `repro run fig1` numbers, bit for bit."""
    tomllib = pytest.importorskip("tomllib")  # noqa: F841
    from repro.campaign import load_spec

    spec = load_spec(EXAMPLES / "fig1_nav_udp.toml", quick=True)
    summary = run_campaign(spec, out_dir=tmp_path, jobs=2)
    assert summary.failed == 0 and summary.manifest.complete
    results = load_point_results(tmp_path, summary.manifest)
    by_alpha = {
        payload["params"]["alpha"]: payload["median"] for payload in results.values()
    }

    serial = fig1_nav_udp.run(quick=True)
    assert len(serial.rows) == len(by_alpha) == 5
    for row in serial.rows:
        med = by_alpha[row["alpha"]]
        assert med["goodput_R0"] == row["goodput_NR"]
        assert med["goodput_R1"] == row["goodput_GR"]


# -------------------------------------------- crash-consistent manifests ----


def test_manifest_save_rotates_a_backup(tmp_path):
    run_campaign(small_spec(), out_dir=tmp_path)
    backup = Path(str(manifest_path(tmp_path)) + BACKUP_SUFFIX)
    assert backup.exists()
    # the backup is itself a loadable manifest (the pre-finalize snapshot)
    recovered = Manifest.load(backup)
    assert recovered.total == 2


def test_torn_manifest_recovers_from_backup(tmp_path):
    run_campaign(small_spec(), out_dir=tmp_path)
    path = manifest_path(tmp_path)
    intact = path.read_bytes()
    path.write_bytes(intact[: len(intact) // 2])  # SIGKILL mid-write

    with pytest.raises(ManifestError, match="unreadable manifest"):
        Manifest.load(path)
    recovered = Manifest.load_or_recover(path)
    assert recovered.total == 2
    # recovery re-publishes the primary so plain load works again
    assert Manifest.load(path).total == 2


def test_resume_after_torn_manifest_skips_done_points(tmp_path):
    spec = small_spec()
    run_campaign(spec, out_dir=tmp_path)
    path = manifest_path(tmp_path)
    intact = path.read_bytes()
    path.write_bytes(intact[: len(intact) // 2])

    summary = run_campaign(spec, out_dir=tmp_path, resume=True)
    assert summary.executed == 0
    assert summary.skipped == 2
    assert summary.failed == 0


def test_torn_manifest_without_backup_is_a_hard_error(tmp_path):
    run_campaign(small_spec(), out_dir=tmp_path)
    path = manifest_path(tmp_path)
    intact = path.read_bytes()
    path.write_bytes(intact[: len(intact) // 2])
    Path(str(path) + BACKUP_SUFFIX).unlink()
    with pytest.raises(ManifestError, match="unreadable manifest"):
        Manifest.load_or_recover(path)


def test_retry_telemetry_roundtrips_through_save_and_load(tmp_path):
    run_campaign(small_spec(), out_dir=tmp_path)
    path = manifest_path(tmp_path)
    manifest = Manifest.load(path)
    manifest.points[0].retries = 3
    manifest.points[0].last_failure = "JobTimeoutError: watchdog"
    manifest.faults = {"pool_rebuilds": 1, "worker_kills": 2,
                      "degraded_to_serial": False}
    manifest.save(path)

    loaded = Manifest.load(path)
    assert loaded.points[0].retries == 3
    assert loaded.points[0].last_failure == "JobTimeoutError: watchdog"
    assert loaded.faults["worker_kills"] == 2


def test_manifest_from_before_fault_tolerance_still_loads(tmp_path):
    """Forward compatibility: pre-repro.faults manifests lack the new keys."""
    run_campaign(small_spec(), out_dir=tmp_path)
    path = manifest_path(tmp_path)
    data = json.loads(path.read_text())
    data.pop("faults", None)
    data.pop("telemetry", None)
    for point in data["points"]:
        point.pop("retries", None)
        point.pop("last_failure", None)
    path.write_text(json.dumps(data))

    loaded = Manifest.load(path)
    assert loaded.faults == {}
    assert all(p.retries == 0 and p.last_failure is None for p in loaded.points)
