"""Tests for the testbed emulation scenarios (Tables VI-IX)."""

import pytest

from repro.testbed import emulation


def test_table6_greedy_starves_victim():
    fair = emulation.table6_nav_rts_tcp(greedy=False, duration_s=1.5)
    greedy = emulation.table6_nav_rts_tcp(greedy=True, duration_s=1.5)
    assert 0.4 < fair["R1"] / max(fair["R2"], 1e-9) < 2.5
    assert greedy["R1"] > 5 * max(greedy["R2"], 1e-3)


@pytest.mark.parametrize("variant", ["ack_no_rtscts", "cts", "cts_ack"])
def test_table7_variants(variant):
    greedy = emulation.table7_nav_udp(variant=variant, greedy=True, duration_s=1.5)
    assert greedy["R1"] > 5 * max(greedy["R2"], 1e-3)


def test_table7_unknown_variant_rejected():
    with pytest.raises(ValueError):
        emulation.table7_nav_udp(variant="bogus")


def test_table8_spoof_emulation():
    fair = emulation.table8_spoof_emulation_tcp(greedy=False, duration_s=2.0)
    greedy = emulation.table8_spoof_emulation_tcp(greedy=True, duration_s=2.0)
    assert greedy["R1"] > fair["R1"]  # the greedy flow gains
    assert greedy["R2"] < fair["R2"]  # the victim loses


def test_table9_fake_ack_emulation():
    fair = emulation.table9_fake_ack_emulation_udp(greedy=False, duration_s=2.0)
    greedy = emulation.table9_fake_ack_emulation_udp(greedy=True, duration_s=2.0)
    assert greedy["R1"] > fair["R1"]
    assert greedy["R2"] < fair["R2"]


def test_table9_effect_scales_with_loss_rate():
    """The CW clamp only pays when losses trigger backoff, so the greedy
    flow's relative gain must grow with the link loss rate (collisions alone
    provide a small baseline effect)."""

    def relative_gain(data_fer):
        out = emulation.table9_fake_ack_emulation_udp(
            greedy=True, duration_s=2.0, data_fer=data_fer
        )
        return out["R1"] / max(out["R2"], 1e-9)

    assert relative_gain(0.4) > relative_gain(0.0)
