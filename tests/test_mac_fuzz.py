"""Fuzz the MAC receive path with randomized frame sequences.

The DCF state machine must never crash or corrupt its invariants no matter
what arrives off the air — including nonsense sequences a misbehaving or
buggy station could emit (CTS without RTS, ACKs out of the blue, corrupted
frames with broken addresses, NAV extremes).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mac.dcf import DcfMac, IDLE, CONTEND, SEND_DATA, WAIT_ACK, WAIT_CTS
from repro.mac.frames import Frame, FrameKind
from repro.phy.error import BitErrorModel
from repro.phy.medium import Medium, Radio
from repro.phy.params import MAX_NAV_US, dot11b
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

VALID_STATES = {IDLE, CONTEND, SEND_DATA, WAIT_ACK, WAIT_CTS}

frame_strategy = st.builds(
    Frame,
    kind=st.sampled_from(list(FrameKind)),
    src=st.sampled_from(["n0", "n1", "n2", "ghost"]),
    dst=st.sampled_from(["n0", "n1", "n2", "ghost", "*"]),
    duration=st.floats(min_value=0.0, max_value=MAX_NAV_US * 2),
    size_bytes=st.integers(min_value=1, max_value=2000),
    seq=st.integers(min_value=0, max_value=100),
)

event_strategy = st.tuples(
    frame_strategy,
    st.booleans(),  # corrupted
    st.booleans(),  # addr_ok
    st.floats(min_value=-20.0, max_value=80.0),  # rssi
    st.floats(min_value=0.0, max_value=2000.0),  # inter-arrival us
)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(event_strategy, min_size=1, max_size=40), st.booleans())
def test_mac_survives_arbitrary_receive_sequences(events, has_traffic):
    sim = Simulator()
    streams = RngStreams(1)
    medium = Medium(sim, dot11b(), streams.stream("m"), error_model=BitErrorModel())
    radio = Radio(medium, "n1", (0.0, 0.0))
    peer = Radio(medium, "n2", (0.0, 0.0))
    mac = DcfMac(sim, dot11b(), radio, streams.stream("mac"))
    DcfMac(sim, dot11b(), peer, streams.stream("mac2"))
    if has_traffic:
        mac.send("payload", "n2", 1024)

    for frame, corrupted, addr_ok, rssi, gap in events:
        sim.run(until=sim.now + gap)
        mac.phy_receive(frame, corrupted, addr_ok, rssi)
        assert mac.state in VALID_STATES
        assert mac.cw_min <= mac.cw <= max(mac.cw_max, mac.cw_min)
        assert mac.nav_until >= 0.0
    sim.run(until=sim.now + 100_000.0)
    assert mac.state in VALID_STATES
    # Queue drained or still pending — never negative, never duplicated.
    assert 0 <= mac.queue_length <= 1


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(frame_strategy, min_size=1, max_size=20))
def test_nav_never_decreases_from_overheard_frames(frames):
    """Virtual carrier sense may only extend, never shrink."""
    sim = Simulator()
    streams = RngStreams(2)
    medium = Medium(sim, dot11b(), streams.stream("m"), error_model=BitErrorModel())
    radio = Radio(medium, "me", (0.0, 0.0))
    mac = DcfMac(sim, dot11b(), radio, streams.stream("mac"))
    nav = mac.nav_until
    for frame in frames:
        if frame.dst == "me":
            continue
        mac.phy_receive(frame, False, True, 30.0)
        assert mac.nav_until >= nav
        nav = mac.nav_until
        sim.run(until=sim.now + 10.0)
