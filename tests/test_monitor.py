"""Unit + integration tests for the misbehavior monitor."""

import pytest

from repro.core.detection import DetectionReport, MisbehaviorMonitor
from repro.core.greedy import GreedyConfig
from repro.mac.frames import FrameKind
from repro.net.scenario import Scenario


def seeded_report():
    report = DetectionReport()
    for i in range(10):
        report.record(i * 100_000.0, "nav", "NS", "GR")
    for i in range(4):
        report.record(i * 200_000.0, "rssi-spoof", "AP", "GR")
    report.record(0.0, "nav", "NR", "innocent")  # a single stray event
    return report


def test_verdicts_rank_by_detections():
    monitor = MisbehaviorMonitor(seeded_report())
    verdicts = monitor.verdicts()
    assert [v.offender for v in verdicts] == ["GR"]
    gr = verdicts[0]
    assert gr.total_detections == 14
    assert gr.by_detector == {"nav": 10, "rssi-spoof": 4}
    assert gr.observers == ("AP", "NS")
    assert gr.corroborated


def test_min_detections_filters_strays():
    monitor = MisbehaviorMonitor(seeded_report(), min_detections=3)
    assert all(v.offender != "innocent" for v in monitor.verdicts())
    lax = MisbehaviorMonitor(seeded_report(), min_detections=1)
    assert any(v.offender == "innocent" for v in lax.verdicts())


def test_rate_computation():
    report = DetectionReport()
    for i in range(11):
        report.record(i * 100_000.0, "nav", "a", "x")  # 11 events over 1 s
    monitor = MisbehaviorMonitor(report)
    (verdict,) = monitor.verdicts()
    assert verdict.rate_per_s == pytest.approx(11.0, rel=0.05)


def test_rate_threshold():
    report = DetectionReport()
    for i in range(5):
        report.record(i * 10_000_000.0, "nav", "a", "slow")  # 0.1/s
    monitor = MisbehaviorMonitor(report, min_rate_per_s=1.0)
    assert monitor.verdicts() == []


def test_invalid_thresholds():
    with pytest.raises(ValueError):
        MisbehaviorMonitor(DetectionReport(), min_detections=0)


def test_to_text():
    monitor = MisbehaviorMonitor(seeded_report())
    text = monitor.to_text()
    assert "GR: 14 detections" in text
    assert "corroborated" in text
    assert MisbehaviorMonitor(DetectionReport()).to_text() == "no misbehavior detected\n"


def test_end_to_end_monitor_names_the_greedy_receiver():
    s = Scenario(seed=1)
    s.add_wireless_node("NS")
    s.add_wireless_node("GS")
    s.add_wireless_node("NR")
    s.add_wireless_node(
        "GR", greedy=GreedyConfig.nav_inflator(31_000.0, {FrameKind.CTS})
    )
    s.enable_nav_validation()
    f1, _ = s.udp_flow("NS", "NR")
    f2, _ = s.udp_flow("GS", "GR")
    f1.start()
    f2.start()
    s.run(1.0)
    monitor = MisbehaviorMonitor(s.report)
    verdicts = monitor.verdicts()
    assert len(verdicts) == 1
    assert verdicts[0].offender == "GR"
    assert len(verdicts[0].observers) >= 2  # NS and NR both validate
