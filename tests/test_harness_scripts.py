"""Tests for the run_all / make_experiments_md harness scripts."""

import importlib.util
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def load_script(name):
    path = ROOT / "benchmarks" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_run_all_subset_quick(tmp_path, capsys):
    run_all = load_script("run_all")
    rc = run_all.main(["table3", "--quick", "--results-dir", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "table3.txt").exists()
    assert (tmp_path / "ALL.txt").exists()
    assert "Table III" in (tmp_path / "table3.txt").read_text()


def test_run_all_rejects_unknown(tmp_path):
    run_all = load_script("run_all")
    with pytest.raises(SystemExit):
        run_all.main(["fig99", "--results-dir", str(tmp_path)])


def test_run_all_order_covers_every_artifact():
    run_all = load_script("run_all")
    from repro.experiments import ALL_EXPERIMENTS, EXTENSIONS

    assert set(run_all.ORDER) == set(ALL_EXPERIMENTS) | set(EXTENSIONS)


def test_commentary_covers_every_artifact():
    make_md = load_script("make_experiments_md")
    from repro.experiments import ALL_EXPERIMENTS, EXTENSIONS

    assert set(make_md.COMMENTARY) == set(ALL_EXPERIMENTS) | set(EXTENSIONS)
    assert set(make_md.ORDER) == set(make_md.COMMENTARY)
    for paper, verdict in make_md.COMMENTARY.values():
        assert paper.strip() and verdict.strip()
