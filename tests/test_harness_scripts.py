"""Tests for the run_all / make_experiments_md harness scripts."""

import importlib.util
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def load_script(name):
    path = ROOT / "benchmarks" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    # Register under its name so worker processes can unpickle references to
    # the script's module-level functions (e.g. run_all.run_one).
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_run_all_subset_quick(tmp_path, capsys):
    run_all = load_script("run_all")
    rc = run_all.main(["table3", "--quick", "--results-dir", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "table3.txt").exists()
    assert (tmp_path / "ALL.txt").exists()
    assert "Table III" in (tmp_path / "table3.txt").read_text()


def test_run_all_rejects_unknown(tmp_path):
    run_all = load_script("run_all")
    with pytest.raises(SystemExit):
        run_all.main(["fig99", "--results-dir", str(tmp_path)])


def strip_timing_footer(text):
    """Drop the '(generated in Xs, ... mode)' lines: the only varying part."""
    return "\n".join(
        line for line in text.splitlines() if not line.startswith("(generated in ")
    )


def test_run_all_jobs_flag_matches_serial_run(tmp_path):
    run_all = load_script("run_all")
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    ids = ["table3", "table1"]
    argv = ids + ["--quick", "--no-cache"]
    assert run_all.main(argv + ["--results-dir", str(serial_dir)]) == 0
    assert run_all.main(argv + ["--jobs", "2", "--results-dir", str(parallel_dir)]) == 0
    for name in ("table3.txt", "table1.txt", "ALL.txt"):
        serial = strip_timing_footer((serial_dir / name).read_text())
        parallel = strip_timing_footer((parallel_dir / name).read_text())
        assert serial == parallel, f"{name} differs between serial and --jobs 2"


def test_run_all_writes_bench_summary_and_populates_cache(tmp_path):
    import json

    # table6 goes through median_over_seeds/JobSpec, so its per-seed points
    # land in the on-disk cache; a second invocation must recompute nothing.
    run_all = load_script("run_all")
    assert run_all.main(["table6", "--quick", "--results-dir", str(tmp_path)]) == 0
    summary = json.loads((tmp_path / "BENCH_parallel.json").read_text())
    assert summary["mode"] == "quick"
    assert summary["experiments"][0]["id"] == "table6"
    assert summary["experiments"][0]["wall_s"] >= 0
    assert summary["total_cpu_s"] >= 0
    first_stores = summary["cache"]["stores"]
    assert first_stores > 0
    assert list((tmp_path / ".cache").glob("*.json")), "cache dir not populated"
    # Second invocation reuses every seeded point.
    assert run_all.main(["table6", "--quick", "--results-dir", str(tmp_path)]) == 0
    summary = json.loads((tmp_path / "BENCH_parallel.json").read_text())
    assert summary["cache"]["hits"] == first_stores
    assert summary["cache"]["stores"] == 0


def test_write_atomic_never_leaves_partial_files(tmp_path, monkeypatch):
    run_all = load_script("run_all")
    target = tmp_path / "out.txt"
    target.write_text("intact")

    class ExplodingHandle:
        def write(self, _text):
            raise RuntimeError("disk full")

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

    import os

    def exploding_fdopen(fd, mode):
        os.close(fd)
        return ExplodingHandle()

    monkeypatch.setattr(run_all.os, "fdopen", exploding_fdopen)
    with pytest.raises(RuntimeError, match="disk full"):
        run_all.write_atomic(target, "replacement")
    assert target.read_text() == "intact"  # old content untouched
    assert list(tmp_path.iterdir()) == [target]  # no temp litter


def test_write_atomic_replaces_content(tmp_path):
    run_all = load_script("run_all")
    target = tmp_path / "out.txt"
    run_all.write_atomic(target, "first")
    run_all.write_atomic(target, "second")
    assert target.read_text() == "second"
    assert list(tmp_path.iterdir()) == [target]


def test_run_all_order_covers_every_artifact():
    run_all = load_script("run_all")
    from repro.experiments import ALL_EXPERIMENTS, EXTENSIONS

    assert set(run_all.ORDER) == set(ALL_EXPERIMENTS) | set(EXTENSIONS)


def test_commentary_covers_every_artifact():
    make_md = load_script("make_experiments_md")
    from repro.experiments import ALL_EXPERIMENTS, EXTENSIONS

    assert set(make_md.COMMENTARY) == set(ALL_EXPERIMENTS) | set(EXTENSIONS)
    assert set(make_md.ORDER) == set(make_md.COMMENTARY)
    for paper, verdict in make_md.COMMENTARY.values():
        assert paper.strip() and verdict.strip()
