"""Unit tests for CBR/UDP sources and sinks."""

import random

import pytest

from repro.net.scenario import Scenario
from repro.transport.packets import Packet, PacketKind
from repro.transport.udp import BacklogSource, CbrSource, UdpSink


def test_cbr_interval_from_rate():
    s = Scenario(seed=1)
    node = s.add_wireless_node("a")
    src = CbrSource(s.sim, node, "f", "b", rate_bps=1_000_000, packet_size=1000)
    # 1000 B at 1 Mbps -> one packet every 8000 us.
    assert src.interval_us == pytest.approx(8000.0)


def test_cbr_rejects_bad_params():
    s = Scenario(seed=1)
    node = s.add_wireless_node("a")
    with pytest.raises(ValueError):
        CbrSource(s.sim, node, "f", "b", rate_bps=0.0)
    with pytest.raises(ValueError):
        CbrSource(s.sim, node, "f2", "b", rate_bps=1e6, jitter_fraction=1.5)


def test_cbr_generates_at_configured_rate():
    s = Scenario(seed=1)
    s.add_wireless_node("a")
    s.add_wireless_node("b")
    src, sink = s.udp_flow("a", "b", rate_bps=500_000, packet_size=1000)
    src.start()
    s.run(1.0)
    # 500 kbps / 8000 bits per packet = ~62 packets per second.
    assert 50 <= src.packets_generated <= 75
    assert sink.packets_received > 40


def test_sink_counts_only_new_packets():
    s = Scenario(seed=1)
    node = s.add_wireless_node("x")
    sink = UdpSink(s.sim, node, "flow")
    p = Packet(PacketKind.UDP_DATA, "flow", "a", "x", seq=1, payload_bytes=100)
    sink.receive(p)
    sink.receive(p)  # duplicate
    assert sink.packets_received == 1
    assert sink.bytes_received == 100


def test_sink_goodput():
    s = Scenario(seed=1)
    node = s.add_wireless_node("x")
    sink = UdpSink(s.sim, node, "flow")
    for i in range(10):
        sink.receive(
            Packet(PacketKind.UDP_DATA, "flow", "a", "x", seq=i, payload_bytes=1250)
        )
    # 10 x 1250 B = 100_000 bits over 1 s.
    assert sink.goodput_mbps(1_000_000.0) == pytest.approx(0.1)
    assert sink.goodput_mbps(0.0) == 0.0


def test_cbr_stop():
    s = Scenario(seed=1)
    s.add_wireless_node("a")
    s.add_wireless_node("b")
    src, sink = s.udp_flow("a", "b", rate_bps=1e6)
    src.start()
    s.run(0.2)
    src.stop()
    generated = src.packets_generated
    s.run(0.5)
    assert src.packets_generated == generated


def test_cbr_jitter_varies_intervals():
    s = Scenario(seed=1)
    s.add_wireless_node("a")
    s.add_wireless_node("b")
    src, _sink = s.udp_flow("a", "b", rate_bps=1e6)
    assert src.rng is not None  # scenario wires a jitter stream
    assert src.jitter_fraction > 0


def test_backlog_source_keeps_window_outstanding():
    s = Scenario(seed=1)
    a = s.add_wireless_node("a")
    s.add_wireless_node("b")
    s._auto_route("a", "b")
    src = BacklogSource(s.sim, a, "flow", "b", window=2)
    sink = UdpSink(s.sim, s.nodes["b"], "flow")
    src.start()
    s.run(1.0)
    # Completions trigger refills: far more than the initial window sent.
    assert src.packets_generated > 50
    assert sink.packets_received > 50
    # Outstanding never exceeds the window.
    assert src._outstanding <= 2


def test_backlog_source_requires_mac():
    s = Scenario(seed=1)
    wired = s.add_wired_node("w")
    with pytest.raises(ValueError):
        BacklogSource(s.sim, wired, "flow", "b")


def test_backlog_source_rejects_bad_window():
    s = Scenario(seed=1)
    a = s.add_wireless_node("a")
    with pytest.raises(ValueError):
        BacklogSource(s.sim, a, "flow", "b", window=0)
