"""Unit tests for the GRC NAV validator."""

import pytest

from repro.core.detection import DetectionReport, NavValidator
from repro.mac.frames import (
    Frame,
    FrameKind,
    cts_duration_from_rts,
    max_cts_nav,
    rts_duration,
)
from repro.phy.params import MAX_NAV_US, dot11b

PHY = dot11b()


def make_validator(**kwargs):
    report = DetectionReport()
    return NavValidator(PHY, "observer", report, **kwargs), report


def test_honest_frames_pass_unchanged():
    validator, report = make_validator()
    rts = Frame(FrameKind.RTS, "s", "r", rts_duration(PHY, 1024), 20)
    assert validator.observe_and_validate(rts, 0.0, 10.0) == rts.duration
    cts = Frame(FrameKind.CTS, "r", "s", cts_duration_from_rts(PHY, rts.duration), 14)
    assert validator.observe_and_validate(cts, 500.0, 10.0) == cts.duration
    assert not report.events


def test_inflated_cts_clamped_exactly_when_rts_was_heard():
    validator, report = make_validator()
    rts = Frame(FrameKind.RTS, "s", "gr", rts_duration(PHY, 1024), 20)
    validator.observe_and_validate(rts, 0.0, 10.0)
    expected = cts_duration_from_rts(PHY, rts.duration)
    evil_cts = Frame(FrameKind.CTS, "gr", "s", float(MAX_NAV_US), 14)
    corrected = validator.observe_and_validate(evil_cts, 500.0, 10.0)
    assert corrected == pytest.approx(expected)
    assert report.count("nav", offender="gr") == 1


def test_inflated_cts_bounded_by_mtu_without_rts_context():
    validator, report = make_validator(mtu_bytes=1500)
    evil_cts = Frame(FrameKind.CTS, "gr", "s", float(MAX_NAV_US), 14)
    corrected = validator.observe_and_validate(evil_cts, 0.0, 10.0)
    assert corrected == pytest.approx(max_cts_nav(PHY, 1500))
    assert report.count("nav") == 1


def test_ack_nav_must_be_zero():
    validator, report = make_validator()
    evil_ack = Frame(FrameKind.ACK, "gr", "s", 20_000.0, 14)
    assert validator.observe_and_validate(evil_ack, 0.0, 10.0) == 0.0
    assert report.count("nav") == 1
    honest_ack = Frame(FrameKind.ACK, "r", "s", 0.0, 14)
    assert validator.observe_and_validate(honest_ack, 1.0, 10.0) == 0.0
    assert report.count("nav") == 1  # unchanged


def test_data_nav_bounded_by_sifs_plus_ack():
    validator, report = make_validator()
    evil_data = Frame(FrameKind.DATA, "gr", "s", 30_000.0, 1052)
    corrected = validator.observe_and_validate(evil_data, 0.0, 10.0)
    assert corrected == pytest.approx(PHY.sifs + PHY.ack_time)
    assert report.count("nav") == 1


def test_inflated_rts_bounded_by_mtu():
    validator, report = make_validator(mtu_bytes=1500)
    evil_rts = Frame(FrameKind.RTS, "gr", "gs", float(MAX_NAV_US), 20)
    corrected = validator.observe_and_validate(evil_rts, 0.0, 10.0)
    assert corrected == pytest.approx(rts_duration(PHY, 1500))
    assert report.count("nav") == 1


def test_cts_expectation_derived_from_inflated_rts_is_bounded():
    """An attacker cannot poison the validator by inflating the RTS first."""
    validator, report = make_validator(mtu_bytes=1500)
    evil_rts = Frame(FrameKind.RTS, "gr", "gs", float(MAX_NAV_US), 20)
    validator.observe_and_validate(evil_rts, 0.0, 10.0)
    evil_cts = Frame(FrameKind.CTS, "gs", "gr", float(MAX_NAV_US), 14)
    corrected = validator.observe_and_validate(evil_cts, 400.0, 10.0)
    assert corrected <= rts_duration(PHY, 1500)


def test_expectation_expires():
    validator, report = make_validator()
    rts = Frame(FrameKind.RTS, "s", "r", rts_duration(PHY, 100), 20)
    validator.observe_and_validate(rts, 0.0, 10.0)
    # Long after the exchange ended, the stored expectation no longer binds;
    # the validator falls back to the (larger) MTU bound.
    late_cts = Frame(FrameKind.CTS, "r", "s", max_cts_nav(PHY, 1500) - 1.0, 14)
    corrected = validator.observe_and_validate(late_cts, 1e9, 10.0)
    assert corrected == late_cts.duration
    assert report.count("nav") == 0


def test_tolerance_absorbs_small_deviation():
    validator, report = make_validator(tolerance_us=5.0)
    ack = Frame(FrameKind.ACK, "r", "s", 4.0, 14)
    assert validator.observe_and_validate(ack, 0.0, 10.0) == 4.0
    assert not report.events


def test_report_offender_accounting():
    validator, report = make_validator()
    for i in range(3):
        evil = Frame(FrameKind.ACK, "gr", "s", 20_000.0, 14)
        validator.observe_and_validate(evil, float(i), 10.0)
    assert report.offenders("nav")["gr"] == 3
    assert validator.corrections == 3
