"""Unit tests for frame tracing and goodput time series."""

import pytest

from repro.core.greedy import GreedyConfig
from repro.mac.frames import FrameKind
from repro.net.scenario import Scenario
from repro.sim.engine import Simulator
from repro.stats.trace import (
    FrameTracer,
    GoodputSeries,
    attach_goodput_series,
    sparkline,
)


def traced_scenario(greedy=None, seed=1):
    s = Scenario(seed=seed)
    s.add_wireless_node("S0")
    s.add_wireless_node("S1")
    s.add_wireless_node("R0")
    s.add_wireless_node("R1", greedy=greedy)
    tracer = FrameTracer(s.medium)
    f0, k0 = s.udp_flow("S0", "R0")
    f1, k1 = s.udp_flow("S1", "R1")
    f0.start()
    f1.start()
    return s, tracer, (k0, k1)


def test_tracer_records_all_frame_kinds():
    s, tracer, _sinks = traced_scenario()
    s.run(0.3)
    kinds = {r.kind for r in tracer.records}
    assert kinds == {"RTS", "CTS", "DATA", "ACK"}
    assert len(tracer.records) == s.medium.frames_sent


def test_tracer_filters():
    s, tracer, _sinks = traced_scenario()
    s.run(0.3)
    cts = tracer.filter(kind="CTS")
    assert cts and all(r.kind == "CTS" for r in cts)
    from_s0 = tracer.filter(sender="S0")
    assert from_s0 and all(r.sender == "S0" for r in from_s0)
    late = tracer.filter(since_us=200_000.0)
    assert all(r.time_us >= 200_000.0 for r in late)


def test_tracer_catches_inflated_navs():
    config = GreedyConfig.nav_inflator(10_000.0, {FrameKind.CTS})
    s, tracer, _sinks = traced_scenario(greedy=config)
    s.run(0.3)
    inflated = tracer.filter(kind="CTS", min_nav=5_000.0)
    assert inflated
    assert all(r.sender == "R1" for r in inflated)


def test_tracer_sees_impersonations():
    s = Scenario(seed=2)
    s.add_wireless_node("NS", position=(0, 0))
    s.add_wireless_node("NR", position=(10, 0))
    s.add_wireless_node(
        "GR", position=(30, 0), greedy=GreedyConfig.ack_spoofer(victims={"NR"})
    )
    s.error_model.set_ber("NS", "NR", 8e-4)
    tracer = FrameTracer(s.medium)
    snd, _rcv = s.tcp_flow("NS", "NR")
    snd.start()
    s.run(1.0)
    fakes = tracer.impersonations()
    assert fakes
    assert all(r.sender == "GR" and r.src == "NR" for r in fakes)


def test_tracer_airtime_accounting():
    s, tracer, _sinks = traced_scenario()
    s.run(0.3)
    airtime = tracer.airtime_by_sender()
    total = sum(airtime.values())
    assert 0 < total <= 300_000.0  # cannot exceed wall-clock airtime


def test_tracer_detach_stops_recording():
    s, tracer, _sinks = traced_scenario()
    s.run(0.1)
    count = len(tracer.records)
    tracer.detach()
    s.run(0.1)
    assert len(tracer.records) == count


def test_tracer_bounded_memory():
    s, tracer, _sinks = traced_scenario()
    tracer.max_records = 10
    s.run(0.3)
    assert len(tracer.records) == 10
    assert tracer.dropped > 0


def test_trace_record_to_line():
    s, tracer, _sinks = traced_scenario()
    s.run(0.05)
    line = tracer.records[0].to_line()
    assert "RTS" in line or "DATA" in line
    assert "nav=" in line
    assert tracer.to_text(limit=3).count("\n") == 2


def test_goodput_series_windows():
    sim = Simulator()
    series = GoodputSeries(sim, window_us=1000.0)
    sim.schedule(100.0, series.record, 125)  # window 0
    sim.schedule(1500.0, series.record, 250)  # window 1
    sim.schedule(3500.0, series.record, 125)  # window 3 (window 2 empty)
    sim.run()
    samples = series.series()
    assert len(samples) == 4
    assert samples[0][1] == pytest.approx(1.0)  # 125 B over 1000 us = 1 Mbps
    assert samples[1][1] == pytest.approx(2.0)
    assert samples[2][1] == 0.0
    assert samples[3][1] == pytest.approx(1.0)


def test_goodput_series_rejects_bad_window():
    with pytest.raises(ValueError):
        GoodputSeries(Simulator(), window_us=0.0)


def test_attach_goodput_series_counts_only_goodput():
    s, _tracer, (k0, _k1) = traced_scenario()
    series = attach_goodput_series(s.sim, k0, window_us=100_000.0)
    s.run(0.5)
    samples = series.series()
    assert samples
    total_mbps_avg = sum(v for _t, v in samples) / len(samples)
    assert total_mbps_avg == pytest.approx(k0.goodput_mbps(500_000.0), rel=0.25)


def test_sparkline():
    assert sparkline([]) == ""
    flat = sparkline([0.0, 0.0, 0.0])
    assert set(flat) == {" "}
    line = sparkline([0.0, 1.0, 2.0, 4.0])
    assert len(line) == 4
    assert line[-1] == "@"
    # Downsampling keeps the requested width.
    assert len(sparkline(list(range(1000)), width=40)) == 40


def test_to_jsonl_roundtrip(tmp_path):
    import json

    s, tracer, _sinks = traced_scenario()
    s.run(0.2)
    assert tracer.records
    path = tmp_path / "sub" / "trace.jsonl"  # parent dir is created on demand
    written = tracer.to_jsonl(path)
    lines = path.read_text().splitlines()
    assert written == len(lines) == len(tracer.records)
    for line, record in zip(lines, tracer.records):
        assert json.loads(line) == record.to_dict()

    assert tracer.to_jsonl(path, limit=3) == 3
    assert len(path.read_text().splitlines()) == 3
