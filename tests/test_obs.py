"""Telemetry layer (repro.obs): zero-cost-when-disabled and schema contracts.

The two non-negotiables from DESIGN.md §10:

* **Zero-write when disabled** — a disabled (or absent) registry is never
  wired into components, so a telemetry-off run performs literally zero
  registry mutations and the golden traces stay byte-identical.
* **Schema stability** — snapshots carry an explicit ``schema_version``,
  every key is ``layer.station.metric``, and the JSON round-trip is exact.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.scenario import Scenario
from repro.obs import (
    SCHEMA_VERSION,
    MetricsRegistry,
    TelemetrySnapshot,
    capture,
    current_registry,
    validate_snapshot,
)
from repro.perf.golden import GOLDEN_TRACE_RUNS, capture_trace, trace_filename

GOLDEN_DIR = Path(__file__).parent / "golden"


def _tiny_scenario(telemetry=None) -> Scenario:
    s = Scenario(seed=3, telemetry=telemetry)
    s.add_wireless_node("S0")
    s.add_wireless_node("R0")
    src, _sink = s.udp_flow("S0", "R0")
    src.start()
    return s


# ------------------------------------------------------- zero-cost contract --


def test_disabled_registry_sees_zero_writes():
    registry = MetricsRegistry(enabled=False)
    with capture(registry):
        s = _tiny_scenario()
        s.run(0.2)
    assert s.obs is None, "Scenario must refuse to wire a disabled registry"
    assert registry.writes == 0
    assert registry.scenarios == 0
    assert len(registry) == 0


def test_no_capture_means_no_registry():
    s = _tiny_scenario()
    assert current_registry() is None
    assert s.obs is None
    s.run(0.1)  # nothing to write to; must simply run


def test_telemetry_false_overrides_ambient_capture():
    registry = MetricsRegistry()
    with capture(registry):
        s = _tiny_scenario(telemetry=False)
        s.run(0.1)
    assert s.obs is None
    assert registry.writes == 0


@pytest.mark.parametrize("name", sorted(GOLDEN_TRACE_RUNS))
def test_golden_traces_byte_identical_with_disabled_registry(name, tmp_path):
    """The pre-instrumentation code path survives an ambient disabled registry."""
    registry = MetricsRegistry(enabled=False)
    replay = tmp_path / trace_filename(name)
    with capture(registry):
        records = capture_trace(name, replay)
    assert records > 100
    assert registry.writes == 0
    assert replay.read_bytes() == (GOLDEN_DIR / trace_filename(name)).read_bytes()


def test_enabled_run_is_equivalent_to_disabled_run(tmp_path):
    """Telemetry hooks observe; they must never perturb the simulation."""
    name = "fig1_nav_udp"
    on_path = tmp_path / "on.jsonl"
    with capture(MetricsRegistry()) as registry:
        capture_trace(name, on_path)
    assert registry.writes > 0
    assert on_path.read_bytes() == (GOLDEN_DIR / trace_filename(name)).read_bytes()


# ----------------------------------------------------------- enabled content --


def test_enabled_registry_collects_per_station_layer_metrics():
    registry = MetricsRegistry()
    with capture(registry):
        s = _tiny_scenario()
        s.run(0.3)
    assert s.obs is registry
    assert registry.scenarios == 1
    snapshot = registry.snapshot(seed=3)
    assert validate_snapshot(snapshot) == []
    assert {"mac", "phy", "sim", "transport"} <= set(snapshot.layers())
    assert {"S0", "R0", "engine", "medium"} <= set(snapshot.stations())
    # Live counters and swept gauges both present, with plausible content.
    assert snapshot.counters["transport.S0.tx_packets"] > 0
    assert snapshot.gauges["sim.engine.events_processed"] > 0
    assert snapshot.gauges["phy.medium.frames_sent"] > 0
    assert snapshot.gauges["mac.S0.tx_data"] > 0
    assert snapshot.meta["scenarios"] == 1
    assert snapshot.meta["seed"] == 3


def test_sweep_is_idempotent_across_runs():
    """Gauges use set semantics: running twice must not double-count."""
    registry = MetricsRegistry()
    with capture(registry):
        s = _tiny_scenario()
        s.run(0.2)
        first = dict(registry.gauges)
        s.run(0.2)  # continue the same simulation
    assert registry.gauges["phy.medium.frames_sent"] >= first["phy.medium.frames_sent"]
    # The sweep replaced, not accumulated: a third zero-length run changes nothing.
    before = dict(registry.gauges)
    with capture(registry):
        s.run(0.0)
    assert registry.gauges == before


def test_capture_nests_innermost_wins():
    outer, inner = MetricsRegistry(), MetricsRegistry()
    with capture(outer):
        with capture(inner):
            s = _tiny_scenario()
            s.run(0.1)
    assert s.obs is inner
    assert inner.writes > 0
    assert outer.writes == 0


# ------------------------------------------------------------ snapshot schema --


def test_snapshot_json_round_trip():
    registry = MetricsRegistry()
    registry.inc("mac.S0.tx_data", 4)
    registry.gauge("sim.engine.events_processed", 123.0)
    registry.observe("transport.S0.rtt_us", 1500.0)
    registry.observe("transport.S0.rtt_us", 1500.0)
    snapshot = registry.snapshot(seed=7)
    assert validate_snapshot(snapshot) == []
    restored = TelemetrySnapshot.from_json(snapshot.to_json(indent=2))
    assert restored.to_dict() == snapshot.to_dict()
    assert restored.histograms["transport.S0.rtt_us"] == {"1500.0": 2}


def test_snapshot_rejects_unknown_schema_version():
    doc = TelemetrySnapshot().to_dict()
    doc["schema_version"] = SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema_version"):
        TelemetrySnapshot.from_dict(doc)


def test_validate_snapshot_flags_malformed_keys():
    bad = TelemetrySnapshot(
        counters={"notakey": 1.0},
        gauges={"mac.S0.ok": 2.0, "mac.S0.bad": "nan"},  # type: ignore[dict-item]
        histograms={"x.y": {1.5: 2}},  # type: ignore[dict-item]
    )
    problems = validate_snapshot(bad)
    assert any("notakey" in p for p in problems)
    assert any("mac.S0.bad" in p for p in problems)
    assert any("x.y" in p for p in problems)


_key = st.from_regex(r"[a-z]{1,6}\.[A-Z][0-9]\.[a-z_]{1,10}", fullmatch=True)


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["inc", "gauge", "observe"]),
            _key,
            st.floats(
                min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False
            ),
        ),
        max_size=60,
    )
)
def test_registry_write_count_and_snapshot_validity(ops):
    """Every mutation is counted, and any well-formed key set validates."""
    registry = MetricsRegistry()
    for op, key, value in ops:
        getattr(registry, op)(key, value)
    assert registry.writes == len(ops)
    snapshot = registry.snapshot()
    assert validate_snapshot(snapshot) == []
    assert TelemetrySnapshot.from_json(snapshot.to_json()).to_dict() == (
        snapshot.to_dict()
    )


# ------------------------------------------------------------------ CLI smoke --


def test_cli_metrics_smoke(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "metrics.json"
    code = main(
        [
            "metrics",
            "fig1_nav_udp",
            "--duration",
            "0.05",
            "--format",
            "json",
            "-o",
            str(out),
        ]
    )
    assert code == 0
    doc = json.loads(out.read_text())
    snapshot = TelemetrySnapshot.from_dict(doc)
    assert validate_snapshot(snapshot) == []
    assert snapshot.gauges["sim.engine.events_processed"] > 0


def test_cli_metrics_rejects_unknown_target(capsys):
    from repro.cli import main

    assert main(["metrics", "no_such_thing"]) == 2
    assert "perf scenario" in capsys.readouterr().err


# ---------------------------------------------------- fleet aggregation -----


def _snap(counters=None, gauges=None, histograms=None):
    return TelemetrySnapshot(
        counters=dict(counters or {}),
        gauges=dict(gauges or {}),
        histograms={k: dict(v) for k, v in (histograms or {}).items()},
    )


def test_merge_snapshots_sums_every_section():
    from repro.obs import merge_snapshots

    merged = merge_snapshots(
        [
            _snap(
                counters={"mac.S0.tx_data": 3.0},
                gauges={"sim.engine.events_processed": 10.0},
                histograms={"transport.S0.rtt_us": {"1500.0": 2}},
            ),
            _snap(
                counters={"mac.S0.tx_data": 2.0, "mac.S1.tx_data": 7.0},
                gauges={"sim.engine.events_processed": 5.0},
                histograms={"transport.S0.rtt_us": {"1500.0": 1, "2000.0": 4}},
            ),
        ]
    )
    assert merged.counters == {"mac.S0.tx_data": 5.0, "mac.S1.tx_data": 7.0}
    assert merged.gauges == {"sim.engine.events_processed": 15.0}
    assert merged.histograms == {
        "transport.S0.rtt_us": {"1500.0": 3, "2000.0": 4}
    }
    assert merged.meta == {"merged_from": 2}
    assert validate_snapshot(merged) == []


def test_merge_snapshots_is_order_independent():
    from repro.obs import merge_snapshots

    parts = [
        _snap(counters={"mac.S0.tx_data": 1.0}),
        _snap(counters={"mac.S0.tx_data": 4.0}, gauges={"sim.e.x": 2.0}),
        _snap(histograms={"transport.S0.rtt_us": {"100.0": 1}}),
    ]
    forward = merge_snapshots(parts)
    backward = merge_snapshots(list(reversed(parts)))
    assert forward.to_dict() == backward.to_dict()


def test_merge_snapshots_refuses_empty_and_mixed_schema():
    from repro.obs import merge_snapshots

    with pytest.raises(ValueError, match="zero"):
        merge_snapshots([])
    drifted = _snap(counters={"mac.S0.tx_data": 1.0})
    drifted.schema_version = SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema_version"):
        merge_snapshots([_snap(), drifted])
