"""Crash/restart convergence tests for the journaled fleet service.

Three escalation levels, all asserting the same invariant: every job the
service *accepted* (journal fsync'd before the 202) finishes exactly once,
and its merged ``results.csv`` is byte-identical to a single-host
``run_campaign`` of the same spec — no matter how the service died.

1. graceful shutdown (the SIGTERM path, in-thread via ``ServiceThread``):
   running jobs are journaled ``interrupted``, shard subprocesses killed,
   and a restarted service resumes them;
2. simulated crash (``ServiceThread.stop()`` journals nothing — replay
   must infer ``running -> interrupted`` on its own);
3. the real thing: a ``repro fleet serve`` OS process fed by concurrent
   submitters with mixed priorities, SIGKILLed mid-flight, restarted on
   the same root and port.  Also pins that SIGTERM exits 0.

The subprocess executor is used for in-thread restarts (LocalExecutor
shard threads cannot be interrupted and would race the restarted service
over the same shard directories); the SIGKILL test uses the local executor
because the kill takes the in-process shard work down with the service —
a genuine torn-mid-write crash.
"""

from __future__ import annotations

import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

pytest.importorskip("tomllib", reason="TOML campaign specs need Python 3.11+")

from repro.campaign import run_campaign
from repro.campaign.spec import spec_from_dict
from repro.fleet import (
    FleetClientError,
    ServiceThread,
    fetch_results,
    get_json,
    submit_job,
    wait_for_job,
)

#: Quick spec: finishes fast, supplies the "first job done" kill trigger.
QUICK_DOC = {
    "campaign": {
        "name": "rst_quick",
        "builder": "nav_pairs",
        "seeds": [1, 2],
        "duration_s": 0.15,
    },
    "params": {"transport": "udp"},
    "sweep": {"n_greedy": [0, 1]},
}

#: Heavier spec: still running when the quick one completes, so the kill
#: reliably catches jobs mid-flight.
SLOW_DOC = {
    "campaign": {
        "name": "rst_slow",
        "builder": "nav_pairs",
        "seeds": [1, 2, 3, 4],
        "duration_s": 2.0,
    },
    "params": {"transport": "udp"},
    "sweep": {"n_greedy": [0, 1]},
}


def _single_host_bytes(tmp_path: Path, doc: dict) -> bytes:
    out = tmp_path / f"single-{doc['campaign']['name']}"
    if not (out / "results.csv").exists():
        run_campaign(spec_from_dict(doc), out_dir=out)
    return (out / "results.csv").read_bytes()


def _wait_status(url: str, job: str, states: set[str], timeout_s: float = 60.0) -> str:
    deadline = time.monotonic() + timeout_s
    while True:
        status = get_json(url, f"/jobs/{job}")["status"]
        if status in states:
            return status
        if time.monotonic() >= deadline:
            raise AssertionError(f"job {job} stuck in {status!r}, wanted {states}")
        time.sleep(0.05)


def test_graceful_shutdown_then_restart_converges(tmp_path):
    root = tmp_path / "root"
    reference = _single_host_bytes(tmp_path, SLOW_DOC)

    thread = ServiceThread(root, executor="subprocess").start()
    url = f"http://127.0.0.1:{thread.port}"
    job = submit_job(url, {"spec": SLOW_DOC, "n_shards": 2})
    observed = _wait_status(url, job, {"running", "done"})
    # Drain while the job is (almost certainly) mid-flight: journals
    # `interrupted`, kills the shard worker subprocesses, exits cleanly.
    thread.shutdown()

    restarted = ServiceThread(root, executor="subprocess").start()
    url = f"http://127.0.0.1:{restarted.port}"
    try:
        recovered = get_json(url, "/status")["recovered"]
        if observed == "running":
            assert recovered == {"restored": 0, "requeued": 1, "failed": 0}
        status = wait_for_job(url, job, timeout_s=240)
        assert status["status"] == "done"
        assert fetch_results(url, job).encode() == reference
    finally:
        restarted.stop()


def test_crash_stop_recovers_running_job_as_interrupted(tmp_path):
    root = tmp_path / "root"
    reference = _single_host_bytes(tmp_path, SLOW_DOC)

    thread = ServiceThread(root, executor="subprocess").start()
    url = f"http://127.0.0.1:{thread.port}"
    job = submit_job(url, {"spec": SLOW_DOC, "n_shards": 2})
    observed = _wait_status(url, job, {"running", "done"})
    # Simulated crash: tasks cancelled, nothing journaled — replay must
    # read the dangling `running` event as an interruption.
    thread.stop()

    restarted = ServiceThread(root, executor="subprocess").start()
    url = f"http://127.0.0.1:{restarted.port}"
    try:
        recovered = get_json(url, "/status")["recovered"]
        if observed == "running":
            assert recovered["requeued"] == 1
        status = wait_for_job(url, job, timeout_s=240)
        assert status["status"] == "done"
        assert fetch_results(url, job).encode() == reference
    finally:
        restarted.stop()


# --------------------------------------------------------------- SIGKILL ----


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _serve(root: Path, port: int) -> subprocess.Popen:
    repo = Path(__file__).resolve().parent.parent
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "fleet", "serve",
            "--root", str(root), "--port", str(port),
            "--executor", "local", "--max-running", "2",
        ],
        cwd=repo,
        env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_healthy(url: str, proc: subprocess.Popen, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while True:
        if proc.poll() is not None:
            raise AssertionError(f"fleet serve exited early with {proc.returncode}")
        try:
            assert get_json(url, "/healthz", retry=None) == {"ok": True}
            return
        except FleetClientError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.1)


@pytest.mark.slow
def test_sigkill_midflight_every_accepted_job_completes_exactly_once(tmp_path):
    """The ISSUE's load test: N concurrent submitters, one SIGKILL, restart.

    Four submitter threads race mixed-priority submissions in, the service
    is SIGKILLed as soon as the first job reports done (the rest are
    running or queued), and a restarted service on the same root and port
    must finish every accepted job with single-host-identical bytes.
    """
    root = tmp_path / "root"
    port = _free_port()
    url = f"http://127.0.0.1:{port}"
    references = {
        doc["campaign"]["name"]: _single_host_bytes(tmp_path, doc)
        for doc in (QUICK_DOC, SLOW_DOC)
    }

    proc = _serve(root, port)
    try:
        _wait_healthy(url, proc)

        accepted: list[str] = []
        lock = threading.Lock()
        errors: list[Exception] = []

        def submitter(doc: dict, priority: int) -> None:
            try:
                # DEFAULT_RETRY rides out 429s; refused connections retry too.
                job = submit_job(
                    url, {"spec": doc, "n_shards": 2, "priority": priority}
                )
                with lock:
                    accepted.append(job)
            except Exception as exc:  # noqa: BLE001 - reported by the main thread
                errors.append(exc)

        workload = [
            (QUICK_DOC, 10),  # high priority: finishes first, arms the kill
            (SLOW_DOC, 0),
            (SLOW_DOC, -5),
            (QUICK_DOC, 0),
        ]
        threads = [
            threading.Thread(target=submitter, args=spec) for spec in workload
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, f"submitters failed: {errors}"
        assert len(accepted) == len(workload)
        assert len(set(accepted)) == len(accepted)

        deadline = time.monotonic() + 120
        while True:
            doc = get_json(url, "/status")
            if doc["jobs"].get("done", 0) >= 1:
                break
            assert time.monotonic() < deadline, f"no job finished: {doc}"
            time.sleep(0.05)

        # Mid-flight SIGKILL: in-process (local executor) shard work dies
        # with the service — the closest thing to pulling the power cord.
        proc.kill()
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    proc = _serve(root, port)
    try:
        _wait_healthy(url, proc)
        for job in accepted:
            status = wait_for_job(url, job, timeout_s=300)
            assert status["status"] == "done", (job, status)

        # Exactly once: the restarted index holds exactly the accepted jobs.
        index = get_json(url, "/jobs")
        assert index["total"] == len(accepted)
        assert {entry["job"] for entry in index["jobs"]} == set(accepted)

        # Byte-identical to an uninterrupted single-host run, per spec.
        for job in accepted:
            name = job.split("-", 1)[1]
            assert fetch_results(url, job).encode() == references[name], job

        # Satellite: SIGTERM drains gracefully and exits 0.
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
