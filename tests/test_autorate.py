"""Unit and integration tests for ARF rate adaptation (the extension)."""

import pytest

from repro.mac.autorate import ArfRateController, DOT11A_RATES, DOT11B_RATES
from repro.net.scenario import Scenario


def test_rates_must_be_ascending_and_nonempty():
    with pytest.raises(ValueError):
        ArfRateController(rates=())
    with pytest.raises(ValueError):
        ArfRateController(rates=(11.0, 5.5))
    with pytest.raises(ValueError):
        ArfRateController(success_threshold=0)
    with pytest.raises(ValueError):
        ArfRateController(initial_index=7)


def test_starts_at_top_rate_by_default():
    arf = ArfRateController()
    assert arf.rate_for("x") == DOT11B_RATES[-1]


def test_configurable_initial_rate():
    arf = ArfRateController(initial_index=0)
    assert arf.rate_for("x") == DOT11B_RATES[0]


def test_steps_down_after_consecutive_failures():
    arf = ArfRateController(failure_threshold=2)
    arf.on_failure("x")
    assert arf.rate_for("x") == 11.0  # one failure is not enough
    arf.on_failure("x")
    assert arf.rate_for("x") == 5.5
    assert arf.step_downs == 1


def test_success_resets_failure_streak():
    arf = ArfRateController(failure_threshold=2)
    arf.on_failure("x")
    arf.on_success("x")
    arf.on_failure("x")
    assert arf.rate_for("x") == 11.0


def test_steps_up_after_success_streak():
    arf = ArfRateController(initial_index=0, success_threshold=10)
    for _ in range(9):
        arf.on_success("x")
    assert arf.rate_for("x") == 1.0
    arf.on_success("x")
    assert arf.rate_for("x") == 2.0
    assert arf.step_ups == 1


def test_probe_failure_falls_straight_back():
    arf = ArfRateController(initial_index=0, success_threshold=2, failure_threshold=5)
    arf.on_success("x")
    arf.on_success("x")  # step up to 2.0, probing
    assert arf.rate_for("x") == 2.0
    arf.on_failure("x")  # probe failed: immediate fallback despite threshold 5
    assert arf.rate_for("x") == 1.0


def test_never_leaves_rate_ladder():
    arf = ArfRateController(failure_threshold=1)
    for _ in range(20):
        arf.on_failure("x")
    assert arf.rate_for("x") == DOT11B_RATES[0]
    arf2 = ArfRateController(initial_index=len(DOT11B_RATES) - 1, success_threshold=1)
    for _ in range(20):
        arf2.on_success("x")
    assert arf2.rate_for("x") == DOT11B_RATES[-1]


def test_per_destination_state_is_independent():
    arf = ArfRateController(failure_threshold=1)
    arf.on_failure("a")
    assert arf.rate_for("a") == 5.5
    assert arf.rate_for("b") == 11.0


def test_arf_converges_to_sustainable_rate_in_simulation():
    s = Scenario(seed=3, rts_enabled=False)
    s.add_wireless_node("S")
    s.add_wireless_node("R")
    # 11 Mbps is hopeless, 5.5 marginal, 2 and below clean.
    s.error_model.set_rate_profile(
        "S", "R", {1.0: 0.0, 2.0: 0.0, 5.5: 2e-4, 11.0: 5e-3}
    )
    s.enable_autorate(["S"])
    src, sink = s.udp_flow("S", "R")
    src.start()
    s.run(3.0)
    final = s.macs["S"].rate_controller.rate_for("R")
    assert final in (2.0, 5.5)  # backed off from the hopeless 11 Mbps
    assert sink.packets_received > 200


def test_scenario_uses_phy_matching_ladder():
    from repro.phy.params import dot11a

    s = Scenario(phy=dot11a(6.0))
    s.add_wireless_node("S")
    s.enable_autorate(["S"])
    assert s.macs["S"].rate_controller.rates == DOT11A_RATES


def test_fixed_rate_macs_send_at_phy_rate():
    s = Scenario(seed=1)
    s.add_wireless_node("S")
    s.add_wireless_node("R")
    assert s.macs["S"].rate_controller is None
    src, sink = s.udp_flow("S", "R")
    src.start()
    s.run(0.2)
    assert sink.packets_received > 0
