"""Unit tests for the discrete-event engine."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30.0, fired.append, "c")
    sim.schedule(10.0, fired.append, "a")
    sim.schedule(20.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_fifo_tie_break_at_equal_times():
    sim = Simulator()
    fired = []
    for tag in ("first", "second", "third"):
        sim.schedule(5.0, fired.append, tag)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(42.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42.0]
    assert sim.now == 42.0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, "early")
    sim.schedule(100.0, fired.append, "late")
    sim.run(until=50.0)
    assert fired == ["early"]
    assert sim.now == 50.0  # clock advanced to the bound
    sim.run(until=200.0)
    assert fired == ["early", "late"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10.0, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []
    assert not event.pending


def test_cancel_none_is_noop():
    sim = Simulator()
    sim.cancel(None)  # must not raise


def test_schedule_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_at(sim.now - 5.0, lambda: None)


def test_schedule_rejects_nan_and_inf():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule_at(math.nan, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_at(math.inf, lambda: None)


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_reentrant_run_rejected():
    sim = Simulator()

    def evil():
        sim.run()

    sim.schedule(1.0, evil)
    with pytest.raises(RuntimeError):
        sim.run()


def test_pending_events_counts_only_live_events():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.cancel(e1)
    assert sim.pending_events == 1


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


@given(st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=1, max_size=50))
def test_property_fire_order_is_sorted(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=1e6), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_cancelled_never_fire(specs):
    sim = Simulator()
    fired = []
    events = []
    for delay, cancel in specs:
        events.append((sim.schedule(delay, fired.append, delay), cancel))
    for event, cancel in events:
        if cancel:
            sim.cancel(event)
    sim.run()
    expected = sorted(d for (d, c) in specs if not c)
    assert sorted(fired) == expected


# ---------------------------------------------------- fast-path additions --


def test_cancelled_timer_rearmed_same_tick_never_fires():
    """Regression for the O(1)-cancellation rework: a timer cancelled and
    re-armed for the *same instant* within one tick must fire exactly once —
    under the old lazy-scan scheduler the stale heap entry and the fresh one
    were distinct objects, and the generation-counter design must preserve
    that (the testbed emulation re-arms NAV timers this way on nearly every
    overheard frame)."""
    sim = Simulator()
    fired = []
    state = {}

    def rearm():
        sim.cancel(state["event"])
        state["event"] = sim.schedule_at(10.0, fired.append, "new")

    state["event"] = sim.schedule_at(10.0, fired.append, "old")
    sim.schedule(5.0, rearm)
    sim.run()
    assert fired == ["new"]


def test_cancel_rearm_storm_fires_only_last():
    sim = Simulator()
    fired = []
    event = sim.schedule(100.0, fired.append, 0)
    for i in range(1, 500):
        sim.cancel(event)
        event = sim.schedule(100.0, fired.append, i)
    sim.run()
    assert fired == [499]
    assert sim.pending_events == 0


def test_pending_events_is_exact_through_cancel_storms():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(200)]
    for event in events[::2]:
        sim.cancel(event)
    assert sim.pending_events == 100
    for event in events[::2]:
        sim.cancel(event)  # double-cancel must not double-count
    assert sim.pending_events == 100
    sim.run()
    assert sim.pending_events == 0
    assert sim.events_processed == 100


def test_call_after_orders_with_schedule_fifo():
    """Fire-and-forget and cancellable events share one (time, seq) order."""
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "a")
    sim.call_after(5.0, fired.append, "b")
    sim.schedule(5.0, fired.append, "c")
    sim.call_at(5.0, fired.append, "d")
    sim.run()
    assert fired == ["a", "b", "c", "d"]


def test_call_after_validates_like_schedule():
    import math

    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_after(-1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.call_at(sim.now - 5.0, lambda: None)
    with pytest.raises(ValueError):
        sim.call_at(math.nan, lambda: None)
    with pytest.raises(ValueError):
        sim.call_after(math.inf, lambda: None)


def test_call_after_counts_in_pending_and_processed():
    sim = Simulator()
    sim.call_after(1.0, lambda: None)
    sim.call_after(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0
    assert sim.events_processed == 2


def test_run_until_boundary_event_fires_next_run():
    """An event beyond ``until`` survives the bounded run intact."""
    sim = Simulator()
    fired = []
    sim.call_after(10.0, fired.append, "x")
    sim.schedule(30.0, fired.append, "y")
    sim.run(until=20.0)
    assert fired == ["x"]
    assert sim.pending_events == 1
    sim.run()
    assert fired == ["x", "y"]


def test_compaction_preserves_order_and_counts():
    """Heavy cancellation triggers heap compaction; survivors still fire in
    exact (time, FIFO) order and the counters stay consistent."""
    sim = Simulator()
    fired = []
    keep = []
    for i in range(2000):
        event = sim.schedule(float(i), fired.append, i)
        if i % 10 == 0:
            keep.append(i)
        else:
            sim.cancel(event)
    assert sim.pending_events == len(keep)
    sim.run()
    assert fired == keep
    assert sim.events_processed == len(keep)


def test_cancel_inside_callback_prevents_same_time_event():
    """A callback can cancel an event scheduled for the same instant."""
    sim = Simulator()
    fired = []
    victim = sim.schedule(10.0, fired.append, "victim")

    def killer():
        sim.cancel(victim)

    # Same fire time, scheduled earlier -> FIFO runs killer first.
    sim.schedule_at(10.0, killer)  # note: scheduled after victim
    sim.run()
    # victim was scheduled first so it fires before killer can act.
    assert fired == ["victim"]

    sim2 = Simulator()
    fired2 = []
    state = {}

    def killer2():
        sim2.cancel(state["victim"])

    sim2.schedule_at(10.0, killer2)
    state["victim"] = sim2.schedule_at(10.0, fired2.append, "victim")
    sim2.run()
    assert fired2 == []


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e6),
            st.sampled_from(["keep", "cancel", "forget"]),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_property_mixed_payloads_fire_in_order(specs):
    """schedule/call_after mixes preserve the global (time, seq) order and
    the live-event accounting, under arbitrary cancellation."""
    sim = Simulator()
    fired = []
    events = []
    for delay, action in specs:
        if action == "forget":
            sim.call_after(delay, fired.append, delay)
        else:
            events.append((sim.schedule(delay, fired.append, delay), action))
    for event, action in events:
        if action == "cancel":
            sim.cancel(event)
    expected = sorted(d for d, a in specs if a != "cancel")
    assert sim.pending_events == len(expected)
    sim.run()
    assert fired == expected
    assert sim.pending_events == 0
