"""Unit tests for the discrete-event engine."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30.0, fired.append, "c")
    sim.schedule(10.0, fired.append, "a")
    sim.schedule(20.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_fifo_tie_break_at_equal_times():
    sim = Simulator()
    fired = []
    for tag in ("first", "second", "third"):
        sim.schedule(5.0, fired.append, tag)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(42.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42.0]
    assert sim.now == 42.0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, "early")
    sim.schedule(100.0, fired.append, "late")
    sim.run(until=50.0)
    assert fired == ["early"]
    assert sim.now == 50.0  # clock advanced to the bound
    sim.run(until=200.0)
    assert fired == ["early", "late"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10.0, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []
    assert not event.pending


def test_cancel_none_is_noop():
    sim = Simulator()
    sim.cancel(None)  # must not raise


def test_schedule_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_at(sim.now - 5.0, lambda: None)


def test_schedule_rejects_nan_and_inf():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule_at(math.nan, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_at(math.inf, lambda: None)


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_reentrant_run_rejected():
    sim = Simulator()

    def evil():
        sim.run()

    sim.schedule(1.0, evil)
    with pytest.raises(RuntimeError):
        sim.run()


def test_pending_events_counts_only_live_events():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.cancel(e1)
    assert sim.pending_events == 1


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


@given(st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=1, max_size=50))
def test_property_fire_order_is_sorted(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=1e6), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_cancelled_never_fire(specs):
    sim = Simulator()
    fired = []
    events = []
    for delay, cancel in specs:
        events.append((sim.schedule(delay, fired.append, delay), cancel))
    for event, cancel in events:
        if cancel:
            sim.cancel(event)
    sim.run()
    expected = sorted(d for (d, c) in specs if not c)
    assert sorted(fired) == expected
